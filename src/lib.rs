//! # orcgc-suite
//!
//! Umbrella crate of the Rust reproduction of *"OrcGC: Automatic
//! Lock-Free Memory Reclamation"* (Correia, Ramalhete, Felber — PPoPP
//! 2021). It re-exports the workspace's public surface:
//!
//! * [`orcgc`] — the automatic scheme (the paper's contribution):
//!   [`orcgc::make_orc`], [`orcgc::OrcAtomic`], [`orcgc::OrcPtr`].
//! * [`reclaim`] — the manual schemes: the paper's pass-the-pointer plus
//!   the HP / PTB / HE / EBR baselines, all behind one [`reclaim::Smr`]
//!   trait.
//! * [`structures`] — the eleven lock-free data structures of the
//!   evaluation, in manual-generic and OrcGC-annotated variants.
//! * [`workloads`] — the benchmark harness that regenerates the paper's
//!   figures and tables.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use orc_util;
pub use orcgc;
pub use reclaim;
pub use structures;
pub use workloads;

/// Convenience prelude: the types most programs need.
///
/// For sweeping schemes or structures, prefer the registry surface
/// ([`SchemeKind`] / [`AnySmr`] / [`MatrixFilter`]) over naming concrete
/// scheme types — code written against the registry picks up new schemes
/// and structures automatically.
pub mod prelude {
    pub use orcgc::{make_orc, OrcAtomic, OrcPtr};
    pub use reclaim::{AnySmr, SchemeKind, Smr};
    pub use structures::registry::{MatrixFilter, SchemeAxis};
    pub use structures::{ConcurrentQueue, ConcurrentSet};
}
