//! A concurrent key-value index on the Natarajan-Mittal tree with a mixed
//! workload and live statistics — the Figures 7-8 scenario as an
//! application.
//!
//! Run: `cargo run --release --example kv_index`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use structures::tree::NmTreeOrc;

fn main() {
    let index = Arc::new(NmTreeOrc::new());
    let keys = 50_000u64;
    // Warm the index to half capacity (shuffled order: an external BST
    // degenerates under sorted insertion).
    workloads::throughput::prefill_set(&*index, keys);
    println!("index: prefilled {} keys", index.len());

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let index = index.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            let writes = writes.clone();
            std::thread::spawn(move || {
                let mut rng = orc_util::rng::XorShift64::for_thread(t, 2026);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.next_bounded(keys);
                    match rng.next_bounded(10) {
                        0 => {
                            index.add(k);
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                        1 => {
                            index.remove(&k);
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            index.contains(&k);
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();

    let start = Instant::now();
    for second in 1..=3 {
        std::thread::sleep(Duration::from_millis(500));
        let snap = orc_util::track::global().snapshot();
        println!(
            "t={:.1}s  reads={}  writes={}  live-objects={}  unreclaimed={}",
            start.elapsed().as_secs_f64(),
            reads.load(Ordering::Relaxed),
            writes.load(Ordering::Relaxed),
            snap.live_objects,
            snap.unreclaimed,
        );
        let _ = second;
    }
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().unwrap();
    }
    let total = reads.load(Ordering::Relaxed) + writes.load(Ordering::Relaxed);
    println!(
        "index: {total} ops in {:.2}s ({:.2} Mops/s), final size {}",
        start.elapsed().as_secs_f64(),
        total as f64 / start.elapsed().as_secs_f64() / 1e6,
        index.len()
    );
}
