//! Reclamation lab: watch the Table-1 bounds emerge live.
//!
//! Readers grab protections and stall; a writer retires objects as fast
//! as it can. Each scheme's retired-but-unreclaimed backlog is printed —
//! EBR's grows without bound, HP/PTB plateau at their scan thresholds,
//! and PTP/OrcGC stay linear in threads.
//!
//! Sweeps the registry scheme axis ([`SchemeAxis::ALL`]), so a scheme
//! added to the enum shows up here without an edit.
//!
//! Run: `cargo run --release --example reclamation_lab`

use orcgc_suite::prelude::*;
use workloads::bound::stalled_reader_bound_axis;

fn report(name: &str, max_unreclaimed: u64, ops: u64) {
    let bar = "#".repeat(((max_unreclaimed as f64 + 1.0).log2() * 3.0) as usize);
    println!("{name:<8} max backlog {max_unreclaimed:>8}  ({ops} writer ops)  {bar}");
}

fn main() {
    let readers = 3;
    let ops = 30_000;
    println!("stalled-reader adversary: {readers} readers, {ops} retirements\n");
    for axis in SchemeAxis::ALL {
        // The leaky baseline has no bound story — nothing is ever
        // reclaimed, so its "backlog" is just the op count.
        if axis.manual().is_some_and(|kind| !kind.reclaims()) {
            continue;
        }
        let r = stalled_reader_bound_axis(axis, readers, reclaim::MAX_HPS, ops);
        report(axis.name(), r.max_unreclaimed, r.writer_ops);
    }
    println!("\nEBR is blocked by one stalled reader (unbounded, Table 1: ∞).");
    println!("PTP/OrcGC never build retired lists: O(H*t), the paper's contribution.");
}
