//! orctrace: produce and validate a Perfetto trace of a reclamation run.
//!
//! Churns a Michael list under HP and under OrcGC from a couple of
//! threads, then exports the merged orc-trace rings as Chrome
//! trace-event JSON — loadable at <https://ui.perfetto.dev> — and
//! self-validates the artifact:
//!
//! * the JSON parses (hand-rolled validator; the workspace has no serde),
//! * every thread that registered with the tid registry contributed at
//!   least one event,
//! * the merged snapshot is timestamp-ordered.
//!
//! Exits nonzero on any violation, so CI can use this binary as the
//! orc-trace smoke test. The output path is `$ORC_TRACE_OUT`, default
//! `orctrace.json`. `ORC_TRACE=0` turns recording off (the example then
//! reports the kill switch and writes an empty-but-valid trace);
//! `ORC_TRACE_CAP` resizes the per-thread rings.
//!
//! Run: `cargo run --release --example orctrace`

use orc_util::{registry, trace};
use orcgc_suite::prelude::*;
use std::sync::Arc;
use structures::list::{MichaelList, MichaelListOrc};
use structures::ConcurrentSet;

const KEYS: u64 = 64;
const OPS: u64 = 4_000;
const THREADS: usize = 2;

/// A short insert/remove storm; every removal is a retire → (eventually)
/// a reclaim, so the rings fill with the full event taxonomy.
fn churn<S: ConcurrentSet<u64> + Send + Sync + 'static>(set: Arc<S>) {
    let mut workers = Vec::new();
    for t in 0..THREADS as u64 {
        let set = Arc::clone(&set);
        workers.push(std::thread::spawn(move || {
            for i in 0..OPS {
                let k = (i * 7 + t * 13) % KEYS;
                set.add(k);
                set.remove(&k);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
}

fn main() {
    trace::install_flight_recorder();
    let out = std::path::PathBuf::from(
        std::env::var("ORC_TRACE_OUT").unwrap_or_else(|_| "orctrace.json".to_string()),
    );

    let smr = SchemeKind::Hp.build();
    churn(Arc::new(MichaelList::<u64, AnySmr>::new(smr.clone())));
    smr.flush();
    churn(Arc::new(MichaelListOrc::<u64>::new()));
    orcgc::flush_thread();

    if let Err(e) = trace::export_chrome(&out) {
        eprintln!("orctrace: export failed: {e}");
        std::process::exit(2);
    }
    let json = std::fs::read_to_string(&out).expect("just wrote it");
    if !trace::json_wellformed(&json) {
        eprintln!("orctrace: {} is not well-formed JSON", out.display());
        std::process::exit(1);
    }

    if !trace::enabled() {
        println!(
            "orctrace: ORC_TRACE=0 — recording off, wrote empty trace to {}",
            out.display()
        );
        return;
    }

    // Coverage: every registered tid must have contributed ≥ 1 event.
    // The churn threads above have exited, but their ring contents (and
    // the registry watermark) survive them.
    let events = trace::snapshot();
    let watermark = registry::registered_watermark();
    let mut per_tid = vec![0u64; watermark];
    for e in &events {
        if let Some(n) = per_tid.get_mut(e.tid as usize) {
            *n += 1;
        }
    }
    let silent: Vec<usize> = (0..watermark).filter(|&t| per_tid[t] == 0).collect();
    if !silent.is_empty() {
        eprintln!(
            "orctrace: registered tids {silent:?} recorded no events \
             (watermark {watermark}, {} events total)",
            events.len()
        );
        std::process::exit(1);
    }
    if !events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns) {
        eprintln!("orctrace: merged snapshot is not timestamp-ordered");
        std::process::exit(1);
    }

    println!(
        "orctrace: wrote {} ({} bytes) — {} events from {} threads, {} overwritten",
        out.display(),
        json.len(),
        events.len(),
        watermark,
        trace::events_dropped()
    );
    println!("orctrace: open it at https://ui.perfetto.dev (or chrome://tracing)");
}
