//! orcstat: side-by-side reclamation telemetry for every scheme.
//!
//! Runs the same short Michael-list churn (the Figs. 3–4 write-heavy
//! workload, scaled down) under each SMR scheme in the workspace
//! ([`SchemeKind::ALL`] — a scheme added to the enum gets a row for
//! free) plus OrcGC, then prints one row of orc-stats per scheme: how
//! much was retired, how much came back, how each scheme gets its
//! reclamation done (scan avalanches vs. one-object handover dribbles),
//! and the peak backlog the paper's Table 1 bounds. The table layout is
//! [`StatsSnapshot::table_row`], shared with the torture driver.
//!
//! Respects the bench knobs (`ORC_BENCH_SECONDS`, `ORC_BENCH_THREADS` —
//! first entry — and `ORC_BENCH_JSON` for a JSON-lines dump) and the
//! `ORC_STATS=0` kill switch (rows go to zero, throughput stays). A
//! `--json <path>` flag dumps the same JSON lines to an explicit file,
//! taking precedence over the env var.
//!
//! Run: `cargo run --release --example orcstat [-- --json orcstat.json]`

use orcgc_suite::prelude::*;
use reclaim::StatsSnapshot;
use std::sync::Arc;
use structures::list::{MichaelList, MichaelListOrc};
use workloads::config::BenchConfig;
use workloads::record::{maybe_dump_json_to, Measurement};
use workloads::throughput::{prefill_set, set_mix, Mix};

const KEYS: u64 = 128;

fn run_scheme(cfg: &BenchConfig, threads: usize, kind: SchemeKind) -> (Measurement, StatsSnapshot) {
    let smr = kind.build();
    let set = Arc::new(MichaelList::<u64, AnySmr>::new(smr.clone()));
    prefill_set(&*set, KEYS);
    let m = set_mix(
        "orcstat",
        kind.name(),
        set.clone(),
        threads,
        KEYS,
        Mix::WRITE_HEAVY,
        cfg.seconds_per_point,
    );
    // Quiesce before snapshotting so retires − reclaims matches the
    // scheme's live gauge (nodes still linked in the set stay retired-free).
    smr.flush();
    let s = smr.stats();
    (
        m.with_stats(s)
            .with_trace(&s, orc_util::trace::events_dropped()),
        s,
    )
}

fn run_orc(cfg: &BenchConfig, threads: usize) -> (Measurement, StatsSnapshot) {
    // The OrcGC domain is process-global, so report the delta over this
    // run (prefill included) rather than process-lifetime totals.
    let base = orcgc::domain_stats();
    let set = Arc::new(MichaelListOrc::<u64>::new());
    prefill_set(&*set, KEYS);
    let m = set_mix(
        "orcstat",
        "OrcGC",
        set,
        threads,
        KEYS,
        Mix::WRITE_HEAVY,
        cfg.seconds_per_point,
    );
    orcgc::flush_thread();
    let s = orcgc::domain_stats().since(&base);
    (
        m.with_stats(s)
            .with_trace(&s, orc_util::trace::events_dropped()),
        s,
    )
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("orcstat: --json requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("orcstat: unknown argument {other:?} (usage: orcstat [--json <path>])");
                std::process::exit(2);
            }
        }
    }
    let cfg = BenchConfig::from_env();
    let threads = cfg.threads.first().copied().unwrap_or(2);
    println!(
        "orcstat: MichaelList 50i-50r, {KEYS} keys, {threads} threads, {:.2}s/scheme",
        cfg.seconds_per_point.as_secs_f64()
    );
    println!("{}", StatsSnapshot::table_header("scheme"));

    let mut ms = Vec::new();
    for kind in SchemeKind::ALL {
        let (m, s) = run_scheme(&cfg, threads, kind);
        println!("{}", s.table_row(kind.name(), Some(m.mops)));
        ms.push(m);
    }
    let (m, s) = run_orc(&cfg, threads);
    println!("{}", s.table_row("OrcGC", Some(m.mops)));
    ms.push(m);

    // Flag beats env: an explicit --json path wins over ORC_BENCH_JSON.
    maybe_dump_json_to(json_path.as_deref(), &ms);

    println!();
    println!("outst = retires - reclaims (None never reclaims; its nodes are");
    println!("freed only at teardown). PTP/OrcGC reclaim through handovers in");
    println!("batches of ~1; HP/HE/EBR amortize into larger scan batches.");
    println!("rd-p50/p99/max = retire→reclaim latency quantiles (orc-trace);");
    println!("'-' when a scheme freed nothing during the window.");
}
