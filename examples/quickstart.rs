//! Quickstart: the paper's Algorithm-1 experience in Rust.
//!
//! Build your own lock-free structure with three annotations — `make_orc`
//! instead of `Box::new`, `OrcAtomic` instead of `AtomicPtr`, `OrcPtr`
//! guards for loaded references — and memory reclamation is automatic,
//! lock-free, and bounded.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;
use structures::list::MichaelListOrc;
use structures::queue::MsQueueOrc;

fn main() {
    // A Michael-Scott queue with automatic reclamation (paper Alg. 1).
    let queue = Arc::new(MsQueueOrc::new());
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let queue = queue.clone();
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    queue.enqueue(p * 10_000 + i);
                }
            })
        })
        .collect();
    let consumer = {
        let queue = queue.clone();
        std::thread::spawn(move || {
            let mut got = 0u64;
            while got < 20_000 {
                if queue.dequeue().is_some() {
                    got += 1;
                }
            }
            got
        })
    };
    for p in producers {
        p.join().unwrap();
    }
    let consumed = consumer.join().unwrap();
    println!("queue: consumed {consumed} items, none leaked, no retire() anywhere");

    // An ordered set with the same annotations.
    let set = Arc::new(MichaelListOrc::new());
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                for k in 0..500u64 {
                    set.add(t * 500 + k);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    println!("set: {} keys inserted concurrently", set.len());
    for k in 0..2_000u64 {
        assert!(set.contains(&k));
    }
    println!("set: all lookups hit; dropping the set cascades reclamation");

    // Everything allocated is returned once the structures drop.
    drop(queue);
    drop(set);
    orcgc::flush_thread();
    let stats = orc_util::track::global().snapshot();
    println!(
        "tracker: {} allocations, {} frees, {} live tracked objects",
        stats.total_allocs, stats.total_frees, stats.live_objects
    );
}
