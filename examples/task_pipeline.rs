//! A multi-stage task pipeline on wait-free queues — the workload class
//! that motivates the paper's queue evaluation (Figures 1-2).
//!
//! Stage 1 produces work items; stage 2 transforms them; stage 3
//! aggregates. Stages are connected by different queue algorithms to show
//! they are interchangeable behind `ConcurrentQueue`, and every node,
//! ring segment and helping descriptor is reclaimed by OrcGC while the
//! pipeline runs.
//!
//! Run: `cargo run --release --example task_pipeline`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use structures::queue::{KpQueueOrc, LcrqOrc};

const ITEMS: u64 = 50_000;

fn main() {
    let stage1: Arc<LcrqOrc> = Arc::new(LcrqOrc::new()); // fast ring queue
    let stage2: Arc<KpQueueOrc<u64>> = Arc::new(KpQueueOrc::new()); // wait-free

    let done_producing = Arc::new(AtomicBool::new(false));
    let done_transforming = Arc::new(AtomicBool::new(false));
    let checksum = Arc::new(AtomicU64::new(0));

    let producer = {
        let q = stage1.clone();
        let done = done_producing.clone();
        std::thread::spawn(move || {
            for i in 0..ITEMS {
                q.enqueue(i);
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let transformers: Vec<_> = (0..2)
        .map(|_| {
            let q_in = stage1.clone();
            let q_out = stage2.clone();
            let done_in = done_producing.clone();
            std::thread::spawn(move || loop {
                match q_in.dequeue() {
                    Some(v) => q_out.enqueue(v * 2 + 1),
                    None if done_in.load(Ordering::SeqCst) => break,
                    None => std::hint::spin_loop(),
                }
            })
        })
        .collect();

    let aggregator = {
        let q = stage2.clone();
        let done_in = done_transforming.clone();
        let checksum = checksum.clone();
        std::thread::spawn(move || {
            let mut count = 0u64;
            loop {
                match q.dequeue() {
                    Some(v) => {
                        checksum.fetch_add(v, Ordering::Relaxed);
                        count += 1;
                    }
                    None if done_in.load(Ordering::SeqCst) => break,
                    None => std::hint::spin_loop(),
                }
            }
            count
        })
    };

    producer.join().unwrap();
    for t in transformers {
        t.join().unwrap();
    }
    done_transforming.store(true, Ordering::SeqCst);
    let count = aggregator.join().unwrap();

    let expected: u64 = (0..ITEMS).map(|i| i * 2 + 1).sum();
    assert_eq!(count, ITEMS);
    assert_eq!(checksum.load(Ordering::SeqCst), expected);
    println!("pipeline: {ITEMS} items through LCRQ -> KP queue, checksum OK");
    println!("          ring segments + helping descriptors reclaimed by OrcGC");
}
