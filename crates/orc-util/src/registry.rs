//! Process-wide thread registry.
//!
//! Every lock-free reclamation scheme in this workspace keeps per-thread
//! state (hazard-pointer slots, handover slots, retired lists, era
//! reservations) in flat arrays indexed by a dense *thread id*. This module
//! assigns those ids: the first time a thread calls [`tid`] it claims the
//! lowest free slot of a fixed-capacity bitmap, and a `thread_local`
//! destructor releases the slot when the thread exits.
//!
//! Schemes register per-thread cleanup work through [`defer_at_exit`]; the
//! callbacks run *before* the tid is released, so a scheme can drain the
//! exiting thread's handover/retired state while its slots are still owned
//! exclusively. A new thread that later reuses the same tid therefore always
//! observes clean per-thread state.

use crate::atomics::{AtomicBool, AtomicUsize, Ordering};
use std::cell::RefCell;

/// Maximum number of concurrently *registered* threads.
///
/// The paper's arrays are `[maxThreads][maxHPs]`; we fix the same capacity at
/// compile time. Threads beyond this limit panic at registration with a
/// clear message. 128 comfortably covers the paper's largest evaluation
/// (64 hardware threads on the AMD machine) plus test-harness threads.
pub const MAX_THREADS: usize = 128;

static USED: [AtomicBool; MAX_THREADS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const FREE: AtomicBool = AtomicBool::new(false);
    [FREE; MAX_THREADS]
};

/// High-water mark of tids ever handed out; lets scanners iterate
/// `0..registered_watermark()` instead of the full capacity.
static WATERMARK: AtomicUsize = AtomicUsize::new(0);

struct TidGuard {
    tid: usize,
    cleanups: Vec<Box<dyn FnOnce()>>,
}

impl Drop for TidGuard {
    fn drop(&mut self) {
        for f in self.cleanups.drain(..) {
            f();
        }
        USED[self.tid].store(false, Ordering::Release);
    }
}

thread_local! {
    static GUARD: RefCell<Option<TidGuard>> = const { RefCell::new(None) };
}

fn register() -> TidGuard {
    for (tid, slot) in USED.iter().enumerate() {
        if !slot.load(Ordering::Relaxed)
            && slot
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            WATERMARK.fetch_max(tid + 1, Ordering::AcqRel);
            return TidGuard {
                tid,
                cleanups: Vec::new(),
            };
        }
    }
    panic!(
        "orc-util: thread registry exhausted ({MAX_THREADS} threads); \
         raise orc_util::registry::MAX_THREADS"
    );
}

/// Returns the dense thread id of the calling thread, registering it on
/// first use. The id is released (and [`defer_at_exit`] callbacks run) when
/// the thread exits.
#[inline]
pub fn tid() -> usize {
    GUARD.with(|g| {
        let mut g = g.borrow_mut();
        if let Some(ref guard) = *g {
            guard.tid
        } else {
            let guard = register();
            let tid = guard.tid;
            *g = Some(guard);
            tid
        }
    })
}

/// Registers a callback that runs when the calling thread exits, before its
/// tid is released. Callbacks run in registration order.
///
/// Reclamation schemes use this to drain per-thread retired lists and
/// handover slots so that objects are not stranded when a worker thread
/// terminates.
pub fn defer_at_exit(f: impl FnOnce() + 'static) {
    GUARD.with(|g| {
        let mut g = g.borrow_mut();
        if g.is_none() {
            *g = Some(register());
        }
        g.as_mut().unwrap().cleanups.push(Box::new(f));
    });
}

/// Releases the calling thread's tid *now*, running its [`defer_at_exit`]
/// callbacks, instead of waiting for thread exit. A later [`tid`] call on
/// the same thread re-registers.
///
/// The orc-check model checker calls this at the end of every model
/// thread's body so scheme exit-cleanups (handover drains, retired-list
/// flushes) execute inside the checked, scheduled region rather than in an
/// unscheduled TLS destructor.
pub fn retire_thread() {
    let guard = GUARD.try_with(|g| g.borrow_mut().take()).ok().flatten();
    drop(guard);
}

/// Fixed registry capacity (the paper's `maxThreads`).
#[inline]
pub const fn max_threads() -> usize {
    MAX_THREADS
}

/// Upper bound on tids that have ever been handed out. Scanners iterate
/// `0..registered_watermark()`.
#[inline]
pub fn registered_watermark() -> usize {
    WATERMARK.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn tid_is_stable_within_a_thread() {
        let a = tid();
        let b = tid();
        assert_eq!(a, b);
    }

    #[test]
    fn tids_are_distinct_across_live_threads() {
        let mine = tid();
        let other = std::thread::spawn(tid).join().unwrap();
        assert_ne!(mine, other);
    }

    #[test]
    fn tid_below_capacity() {
        assert!(tid() < MAX_THREADS);
        assert!(registered_watermark() <= MAX_THREADS);
        assert!(registered_watermark() > tid());
    }

    #[test]
    fn exit_callbacks_run_before_release() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r1 = ran.clone();
        let r2 = ran.clone();
        std::thread::spawn(move || {
            defer_at_exit(move || {
                r1.fetch_add(1, Ordering::SeqCst);
            });
            defer_at_exit(move || {
                r2.fetch_add(10, Ordering::SeqCst);
            });
        })
        .join()
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn retire_thread_releases_early_and_runs_cleanups() {
        std::thread::spawn(|| {
            let ran = Arc::new(AtomicUsize::new(0));
            let r = ran.clone();
            let first = tid();
            defer_at_exit(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
            retire_thread();
            assert_eq!(ran.load(Ordering::SeqCst), 1, "cleanup must run at retire");
            // Re-registration hands out a (possibly identical) fresh tid.
            let second = tid();
            assert!(second < MAX_THREADS);
            let _ = first;
            retire_thread();
            retire_thread(); // idempotent
        })
        .join()
        .unwrap();
    }

    #[test]
    fn tids_are_reused_after_exit() {
        // A freshly spawned thread's tid becomes free again on join; a
        // subsequent thread should be able to claim a slot at or below the
        // current watermark rather than growing it unboundedly.
        let before = registered_watermark();
        for _ in 0..MAX_THREADS * 2 {
            std::thread::spawn(tid).join().unwrap();
        }
        let after = registered_watermark();
        // Sequential spawn/join must not consume more than a couple of
        // extra slots (other tests may run concurrently).
        assert!(
            after.saturating_sub(before) < MAX_THREADS / 2,
            "watermark grew from {before} to {after}: tids are not reused"
        );
    }

    #[test]
    fn many_concurrent_threads_get_unique_tids() {
        let n = 32;
        let mut handles = Vec::new();
        let barrier = Arc::new(std::sync::Barrier::new(n));
        for _ in 0..n {
            let b = barrier.clone();
            handles.push(std::thread::spawn(move || {
                b.wait();
                let t = tid();
                // Hold the tid until every thread has registered; otherwise a
                // finished thread's slot could be legitimately reused.
                b.wait();
                t
            }));
        }
        let mut tids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), n, "duplicate tids handed out concurrently");
    }
}
