//! Stalled-reader fault injection for reclamation torture tests.
//!
//! The central claim of the OrcGC paper is a *bound*: PTP/OrcGC keep the
//! number of retired-but-unfreed objects at `O(H·t)` even when a reader
//! stalls mid-protection, while EBR's unreclaimed set grows without bound
//! (Table 1). Exercising that claim requires parking a thread at the most
//! adversarial instant — *after* it has published a protection (hazard
//! slot, era reservation, or epoch pin) but *before* it releases it — while
//! other threads churn retire traffic.
//!
//! This module provides the injection machinery. Reclamation schemes call
//! [`hit`] at their injection points (inside `protect`, after the
//! publish-and-validate loop settles, and inside `begin_op` after the
//! epoch pin). A test arms a one-shot [`Gate`] on the victim thread with
//! [`arm`]; the next time that thread passes a matching injection point it
//! parks on the gate until the test calls [`Gate::release`].
//!
//! The fast path costs a single relaxed load of a global counter: when no
//! thread is armed anywhere in the process, `hit` is a compare-and-branch.
//! Production binaries that never call [`arm`] pay nothing else.

use crate::atomics::{AtomicUsize, Ordering};
use crate::chk_hooks;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Where in the protection protocol the stall fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPoint {
    /// Inside `protect`, after the protection has been published and
    /// validated (the pointer-based schemes' adversarial instant).
    Protect,
    /// Inside `begin_op`, after the epoch/era pin has been published
    /// (EBR's adversarial instant).
    BeginOp,
}

/// Number of armed threads process-wide; the `hit` fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// One-shot rendezvous between the torture driver and the victim thread.
///
/// States: armed → parked (victim reached the injection point and blocked)
/// → released (driver let it continue).
///
/// Under an orc-check exploration the gate switches to `model_word`: the
/// victim parks through the checker's scheduler (`chk_hooks::block_hint`),
/// so a parked model thread counts as "scheduled elsewhere" rather than
/// spinning the DFS into its step budget, and the release store is itself a
/// checked step that wakes it.
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    /// Model-run mirror of `state`: `M_ARMED`/`M_PARKED`/`M_RELEASED`.
    model_word: AtomicUsize,
}

const M_ARMED: usize = 0;
const M_PARKED: usize = 1;
const M_RELEASED: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateState {
    Armed,
    Parked,
    Released,
}

impl Gate {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(GateState::Armed),
            cv: Condvar::new(),
            model_word: AtomicUsize::new(M_ARMED),
        })
    }

    #[inline]
    fn model_addr(&self) -> usize {
        self.model_word.as_ptr() as usize
    }

    /// Blocks the calling (victim) thread until [`Gate::release`].
    fn park(&self) {
        if chk_hooks::in_model() {
            self.model_word.store(M_PARKED, Ordering::SeqCst);
            while self.model_word.load(Ordering::SeqCst) != M_RELEASED {
                if chk_hooks::aborting() {
                    return;
                }
                chk_hooks::block_hint(self.model_addr());
            }
            return;
        }
        let mut st = self.state.lock().unwrap();
        *st = GateState::Parked;
        self.cv.notify_all();
        while *st != GateState::Released {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Waits until the victim has parked (or the timeout elapses).
    /// Returns `true` if the victim is parked.
    ///
    /// Under a model run the timeout is ignored (runs are deterministic:
    /// either the victim parks, or the checker reports the deadlock).
    pub fn wait_until_parked(&self, timeout: Duration) -> bool {
        if chk_hooks::in_model() {
            loop {
                match self.model_word.load(Ordering::SeqCst) {
                    M_ARMED => {
                        if chk_hooks::aborting() {
                            return false;
                        }
                        chk_hooks::block_hint(self.model_addr());
                    }
                    w => return w == M_PARKED,
                }
            }
        }
        let st = self.state.lock().unwrap();
        let (st, res) = self
            .cv
            .wait_timeout_while(st, timeout, |s| *s == GateState::Armed)
            .unwrap();
        !res.timed_out() && *st == GateState::Parked
    }

    /// Unblocks the victim. Idempotent; safe to call even if the victim
    /// never reached the injection point (disarm with [`disarm`] first to
    /// avoid a stale thread-local arming a later operation).
    pub fn release(&self) {
        // The facade store doubles as the model-run wakeup (it is a checked
        // write to the address the victim is blocked on); outside a model
        // run it is a plain relaxed-cost store nobody reads.
        self.model_word.store(M_RELEASED, Ordering::SeqCst);
        let mut st = self.state.lock().unwrap();
        *st = GateState::Released;
        self.cv.notify_all();
    }
}

thread_local! {
    static PENDING: RefCell<Option<(StallPoint, Arc<Gate>)>> = const { RefCell::new(None) };
}

/// Arms a one-shot stall on the **calling** thread: the next time this
/// thread passes a matching injection point it parks on `gate`.
pub fn arm(point: StallPoint, gate: Arc<Gate>) {
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        if p.replace((point, gate)).is_none() {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    });
}

/// Removes a pending arming on the calling thread, if any. Returns whether
/// something was disarmed.
pub fn disarm() -> bool {
    PENDING.with(|p| {
        let was = p.borrow_mut().take().is_some();
        if was {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
        was
    })
}

/// Injection point. Called by reclamation schemes inside `protect` /
/// `begin_op`; parks the calling thread iff it armed a matching stall.
#[inline]
pub fn hit(point: StallPoint) {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return;
    }
    hit_slow(point);
}

#[cold]
fn hit_slow(point: StallPoint) {
    let gate = PENDING.with(|p| {
        let mut p = p.borrow_mut();
        match &*p {
            Some((armed_point, _)) if *armed_point == point => {
                ARMED.fetch_sub(1, Ordering::SeqCst);
                p.take().map(|(_, g)| g)
            }
            _ => None,
        }
    });
    if let Some(gate) = gate {
        gate.park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hit_is_a_noop() {
        hit(StallPoint::Protect);
        hit(StallPoint::BeginOp);
    }

    #[test]
    fn arm_parks_victim_until_release() {
        let gate = Gate::new();
        let g2 = gate.clone();
        let t = std::thread::spawn(move || {
            arm(StallPoint::Protect, g2);
            hit(StallPoint::BeginOp); // wrong point: must not park
            hit(StallPoint::Protect); // parks here
            42
        });
        assert!(gate.wait_until_parked(Duration::from_secs(5)));
        gate.release();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn stall_is_one_shot() {
        let gate = Gate::new();
        let g2 = gate.clone();
        let t = std::thread::spawn(move || {
            arm(StallPoint::Protect, g2);
            hit(StallPoint::Protect); // parks once
            hit(StallPoint::Protect); // second pass sails through
        });
        assert!(gate.wait_until_parked(Duration::from_secs(5)));
        gate.release();
        t.join().unwrap();
    }

    #[test]
    fn disarm_cancels_pending_stall() {
        let gate = Gate::new();
        arm(StallPoint::Protect, gate);
        assert!(disarm());
        assert!(!disarm());
        hit(StallPoint::Protect); // must not park
    }
}
