//! Double-word (128-bit) atomic compare-and-swap.
//!
//! Pass-the-buck (Herlihy et al. 2002) publishes *(pointer, version)* pairs
//! with a DWCAS, and LCRQ (Morrison–Afek 2013) updates *(index, value)* ring
//! slots the same way. Stable Rust exposes no `AtomicU128`, so on x86_64 we
//! emit `lock cmpxchg16b` through inline assembly (with the usual `rbx`
//! save/restore dance, since LLVM reserves `rbx`). On other architectures a
//! documented sharded-spinlock fallback keeps the code *correct* but not
//! lock-free; the benchmark harness prints a warning in that configuration.
//!
//! Loads are performed as a `cmpxchg16b` with identical old/new values — the
//! standard trick; it requires the target to be writable, which always holds
//! for the slots we use.

use std::cell::UnsafeCell;

/// A 16-byte-aligned 128-bit atomic word with sequentially consistent
/// compare-exchange, load and store.
#[repr(C, align(16))]
pub struct AtomicU128 {
    cell: UnsafeCell<u128>,
}

// SAFETY: the cell is only ever accessed through `cas128`/the spinlock
// fallback, both of which are atomic read-modify-writes; no mixed-size or
// non-atomic access exists, so sharing across threads is sound.
unsafe impl Send for AtomicU128 {}
// SAFETY: see the `Send` impl above — every access is a full-word atomic.
unsafe impl Sync for AtomicU128 {}

impl AtomicU128 {
    pub const fn new(v: u128) -> Self {
        Self {
            cell: UnsafeCell::new(v),
        }
    }

    /// Atomically compares the current value with `old`; if equal, writes
    /// `new`. Returns `(previous_value, success)`.
    #[inline]
    pub fn compare_exchange(&self, old: u128, new: u128) -> (u128, bool) {
        #[cfg(feature = "orc_check")]
        crate::chk::shim_access(self.cell.get() as usize, crate::chk::Acc::Rmw, "dwcas");
        // SAFETY: `self.cell` is a live, 16-byte-aligned allocation owned by
        // this `AtomicU128` (guaranteed by `repr(align(16))`).
        unsafe { cas128(self.cell.get(), old, new) }
    }

    /// Atomic sequentially consistent load.
    #[inline]
    pub fn load(&self) -> u128 {
        #[cfg(feature = "orc_check")]
        crate::chk::shim_access(self.cell.get() as usize, crate::chk::Acc::Load, "dwload");
        // cmpxchg16b with old == new == 0: if the slot is 0 it rewrites 0
        // (harmless); otherwise it fails and returns the current value.
        // SAFETY: `self.cell` is a live, 16-byte-aligned allocation owned by
        // this `AtomicU128`, and the slot is always writable (module docs).
        unsafe { cas128(self.cell.get(), 0, 0).0 }
    }

    /// Atomic store, implemented as a CAS loop.
    #[inline]
    pub fn store(&self, v: u128) {
        let mut cur = self.load();
        loop {
            let (prev, ok) = self.compare_exchange(cur, v);
            if ok {
                return;
            }
            cur = prev;
        }
    }

    /// Atomic exchange; returns the previous value.
    #[inline]
    pub fn swap(&self, v: u128) -> u128 {
        let mut cur = self.load();
        loop {
            let (prev, ok) = self.compare_exchange(cur, v);
            if ok {
                return cur;
            }
            cur = prev;
        }
    }
}

impl Default for AtomicU128 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Packs a `(lo, hi)` pair of 64-bit words into a 128-bit value.
#[inline(always)]
pub const fn pack(lo: u64, hi: u64) -> u128 {
    (lo as u128) | ((hi as u128) << 64)
}

/// Splits a 128-bit value into its `(lo, hi)` 64-bit halves.
#[inline(always)]
pub const fn unpack(v: u128) -> (u64, u64) {
    (v as u64, (v >> 64) as u64)
}

/// Whether the current build uses genuinely lock-free DWCAS.
#[inline]
pub const fn is_lock_free() -> bool {
    cfg!(target_arch = "x86_64")
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn cas128(dst: *mut u128, old: u128, new: u128) -> (u128, bool) {
    debug_assert_eq!(dst as usize % 16, 0, "cmpxchg16b needs 16-byte alignment");
    let (old_lo, old_hi) = unpack(old);
    let (new_lo, new_hi) = unpack(new);
    let out_lo: u64;
    let out_hi: u64;
    // Every register cmpxchg16b touches is pinned explicitly — in
    // particular `dst` (rdi here): with a generic `reg` class the
    // allocator may choose rbx, which the instruction's implicit rbx
    // operand (staged via the xchg pair) would clobber. `nl` may itself
    // land on rbx; both xchgs then degenerate to no-ops and the discard
    // output still tells LLVM the register is clobbered. Success is
    // derived from the output value (RDX:RAX returns the previous
    // content; it equals `old` iff the exchange happened), avoiding a
    // flag-consuming `sete` whose byte register could alias rbx.
    core::arch::asm!(
        "xchg {nl}, rbx",
        "lock cmpxchg16b [rdi]",
        "xchg {nl}, rbx",
        nl = inout(reg) new_lo => _,
        in("rdi") dst,
        inout("rax") old_lo => out_lo,
        inout("rdx") old_hi => out_hi,
        in("rcx") new_hi,
        options(nostack),
    );
    let prev = pack(out_lo, out_hi);
    (prev, prev == old)
}

#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    use std::sync::atomic::{AtomicBool, Ordering};

    const SHARDS: usize = 64;
    static LOCKS: [AtomicBool; SHARDS] = {
        #[allow(clippy::declare_interior_mutable_const)]
        const L: AtomicBool = AtomicBool::new(false);
        [L; SHARDS]
    };

    pub(super) unsafe fn cas128(dst: *mut u128, old: u128, new: u128) -> (u128, bool) {
        let lock = &LOCKS[(dst as usize >> 4) % SHARDS];
        while lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let cur = *dst;
        let ok = cur == old;
        if ok {
            *dst = new;
        }
        lock.store(false, Ordering::Release);
        (cur, ok)
    }
}

#[cfg(not(target_arch = "x86_64"))]
use fallback::cas128;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = pack(0xdead_beef, 0xcafe_babe);
        assert_eq!(unpack(v), (0xdead_beef, 0xcafe_babe));
    }

    #[test]
    fn cas_succeeds_on_match() {
        let a = AtomicU128::new(pack(1, 2));
        let (prev, ok) = a.compare_exchange(pack(1, 2), pack(3, 4));
        assert!(ok);
        assert_eq!(prev, pack(1, 2));
        assert_eq!(a.load(), pack(3, 4));
    }

    #[test]
    fn cas_fails_on_mismatch() {
        let a = AtomicU128::new(pack(1, 2));
        let (prev, ok) = a.compare_exchange(pack(9, 9), pack(3, 4));
        assert!(!ok);
        assert_eq!(prev, pack(1, 2));
        assert_eq!(a.load(), pack(1, 2));
    }

    #[test]
    fn store_and_swap() {
        let a = AtomicU128::new(0);
        a.store(42);
        assert_eq!(a.load(), 42);
        assert_eq!(a.swap(7), 42);
        assert_eq!(a.load(), 7);
    }

    #[test]
    fn load_of_zero_slot() {
        let a = AtomicU128::new(0);
        assert_eq!(a.load(), 0);
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        // Use the high half as a version and the low half as a counter; every
        // successful CAS must bump both consistently.
        let a = Arc::new(AtomicU128::new(0));
        let threads = 4;
        let per = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        loop {
                            let cur = a.load();
                            let (lo, hi) = unpack(cur);
                            if a.compare_exchange(cur, pack(lo + 1, hi + 1)).1 {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (lo, hi) = unpack(a.load());
        assert_eq!(lo, (threads * per) as u64);
        assert_eq!(hi, (threads * per) as u64);
    }
}
