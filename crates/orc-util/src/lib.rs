//! Shared low-level utilities for the OrcGC reproduction.
//!
//! This crate hosts the substrate pieces every reclamation scheme and data
//! structure in the workspace relies on:
//!
//! * [`registry`] — a process-wide, lock-free thread registry that hands out
//!   dense thread ids (`tid`s) so schemes can index per-thread hazard arrays,
//!   and runs per-thread cleanup callbacks when a thread exits.
//! * [`marked`] — Harris-style marked-pointer helpers (tag bits in the low
//!   bits of aligned pointers).
//! * [`dwcas`] — a double-word (128-bit) atomic built on `cmpxchg16b`, needed
//!   by pass-the-buck and LCRQ.
//! * [`track`] — global allocation accounting used by the leak tests and the
//!   memory-usage experiments.
//! * [`rng`] — a tiny xorshift generator for hot paths (skip-list levels,
//!   workload key streams) where seeding a full `rand` generator would be
//!   overkill.

pub mod dwcas;
pub mod marked;
pub mod registry;
pub mod rng;
pub mod track;

pub use crossbeam_utils::Backoff;
pub use crossbeam_utils::CachePadded;
