//! Shared low-level utilities for the OrcGC reproduction.
//!
//! This crate hosts the substrate pieces every reclamation scheme and data
//! structure in the workspace relies on:
//!
//! * [`registry`] — a process-wide, lock-free thread registry that hands out
//!   dense thread ids (`tid`s) so schemes can index per-thread hazard arrays,
//!   and runs per-thread cleanup callbacks when a thread exits.
//! * [`marked`] — Harris-style marked-pointer helpers (tag bits in the low
//!   bits of aligned pointers).
//! * [`dwcas`] — a double-word (128-bit) atomic built on `cmpxchg16b`, needed
//!   by pass-the-buck and LCRQ.
//! * [`track`] — global allocation accounting used by the leak tests and the
//!   memory-usage experiments.
//! * [`rng`] — a tiny xorshift generator for hot paths (skip-list levels,
//!   workload key streams) and for the workspace's randomized tests.
//! * [`sync`] — in-tree [`CachePadded`] and [`Backoff`] (the workspace
//!   builds with zero external dependencies; see README "Building offline
//!   & CI").
//! * [`stall`] — stalled-reader fault injection used by the torture
//!   harness to validate the paper's unreclaimed-memory bounds.
//! * [`stats`] — orc-stats: per-thread sharded reclamation telemetry
//!   (retires, reclaims, scans, protect retries, handovers, batch-size
//!   histograms, retire→reclaim delay histograms) behind an `ORC_STATS=0`
//!   kill-switch.
//! * [`trace`] — orc-trace: per-tid lock-free ring-buffer event tracer
//!   ([`trace_event!`]), flight recorder (panic-hook post-mortems) and
//!   Chrome trace-event/Perfetto exporter, behind an `ORC_TRACE=0`
//!   kill-switch.
//! * [`atomics`] — the workspace atomics facade: plain `std::sync::atomic`
//!   re-exports by default, instrumented orc-check shims under the
//!   `orc_check` feature. All scheme/structure code imports atomics from
//!   here (CI-enforced for crates/{core,reclaim}).
//! * [`chk`] (feature `orc_check`) — the orc-check bounded model checker:
//!   cooperative scheduler, DFS interleaving explorer with preemption
//!   bounding + sleep sets, and the shadow-heap reclamation oracles.
//! * [`chk_hooks`] — always-present hook layer the reclamation crates call
//!   on alloc/retire/reclaim; no-ops unless an exploration is running.

pub mod atomics;
#[cfg(feature = "orc_check")]
pub mod chk;
pub mod chk_hooks;
pub mod dwcas;
pub mod marked;
pub mod registry;
pub mod rng;
pub mod stall;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod track;

pub use sync::Backoff;
pub use sync::CachePadded;
