//! Harris-style marked pointers.
//!
//! Lock-free lists, trees and skip lists steal the low bits of aligned node
//! pointers to encode logical-deletion marks (Harris 2001) and edge flags
//! (Natarajan–Mittal 2014). All tracked nodes in this workspace are at least
//! 8-byte aligned, so the low three bits are available; we use up to two.
//!
//! Everything here operates on `usize` words so the same helpers serve raw
//! `AtomicUsize` links in the manual-scheme structures and the `OrcAtomic`
//! words in the OrcGC-annotated structures.

/// Logical-deletion mark (Harris lists, skip lists; NM-tree "flag").
pub const MARK: usize = 0b01;
/// Secondary tag (NM-tree "tag").
pub const TAG: usize = 0b10;
/// All tag bits that may be set on a link word.
pub const TAG_MASK: usize = 0b11;

/// Strips all tag bits, yielding the raw pointer value.
#[inline(always)]
pub const fn unmark(word: usize) -> usize {
    word & !TAG_MASK
}

/// Sets the deletion mark.
#[inline(always)]
pub const fn mark(word: usize) -> usize {
    word | MARK
}

/// True if the deletion mark is set.
#[inline(always)]
pub const fn is_marked(word: usize) -> bool {
    word & MARK != 0
}

/// Sets the secondary tag bit.
#[inline(always)]
pub const fn tag(word: usize) -> usize {
    word | TAG
}

/// True if the secondary tag bit is set.
#[inline(always)]
pub const fn is_tagged(word: usize) -> bool {
    word & TAG != 0
}

/// Returns just the tag bits of a word.
#[inline(always)]
pub const fn tag_bits(word: usize) -> usize {
    word & TAG_MASK
}

/// Re-applies `bits` (a combination of [`MARK`]/[`TAG`]) to a clean word.
#[inline(always)]
pub const fn with_tag(word: usize, bits: usize) -> usize {
    (word & !TAG_MASK) | (bits & TAG_MASK)
}

/// Converts a typed pointer to a clean link word.
#[inline(always)]
pub fn to_word<T>(ptr: *mut T) -> usize {
    debug_assert_eq!(ptr as usize & TAG_MASK, 0, "pointer is not 4-byte aligned");
    ptr as usize
}

/// Converts a (possibly marked) link word back to a typed pointer,
/// stripping tag bits.
#[inline(always)]
pub const fn to_ptr<T>(word: usize) -> *mut T {
    unmark(word) as *mut T
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_roundtrip() {
        let p = 0xdead_beef_usize & !TAG_MASK;
        assert!(!is_marked(p));
        assert!(is_marked(mark(p)));
        assert_eq!(unmark(mark(p)), p);
        assert_eq!(unmark(p), p);
    }

    #[test]
    fn tag_roundtrip() {
        let p = 0x1000_usize;
        assert!(!is_tagged(p));
        assert!(is_tagged(tag(p)));
        assert!(!is_marked(tag(p)));
        assert_eq!(unmark(tag(mark(p))), p);
        assert_eq!(tag_bits(tag(mark(p))), MARK | TAG);
    }

    #[test]
    fn with_tag_replaces_bits() {
        let p = 0x2000_usize;
        assert_eq!(with_tag(mark(p), TAG), p | TAG);
        assert_eq!(with_tag(p, 0), p);
    }

    #[test]
    fn typed_roundtrip() {
        let b = Box::into_raw(Box::new(42u64));
        let w = mark(to_word(b));
        let back: *mut u64 = to_ptr(w);
        assert_eq!(back, b);
        // SAFETY: `b` came from `Box::into_raw` above; freed exactly once.
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn null_is_unmarked() {
        assert!(!is_marked(to_word::<u8>(std::ptr::null_mut())));
        assert!(to_ptr::<u8>(0).is_null());
        // A marked null is still "null" after unmarking — lists mark the
        // next pointer of tail candidates that point at null.
        assert!(to_ptr::<u8>(mark(0)).is_null());
        assert!(is_marked(mark(0)));
    }
}
