//! Minimal xorshift64* generator for hot paths.
//!
//! Skip-list level selection and benchmark key streams sit on the critical
//! path of every operation; a three-shift xorshift with a multiplicative
//! finalizer is statistically adequate for both and costs a handful of
//! cycles. Workload *configuration* (zipf tables, shuffled key sets) uses
//! the full `rand` crate instead.

/// xorshift64* PRNG. Deterministic for a given seed; not cryptographic.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed odd constant
    /// (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Seeds from the thread id and a stream index so concurrent workers
    /// draw independent streams.
    pub fn for_thread(tid: usize, stream: u64) -> Self {
        Self::new((tid as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F) ^ stream)
    }

    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via the widening-multiply trick
    /// (Lemire); avoids the modulo bias and the division.
    #[inline(always)]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Bernoulli trial with probability `permille/1000`.
    #[inline(always)]
    pub fn chance_permille(&mut self, permille: u64) -> bool {
        self.next_bounded(1000) < permille
    }

    /// Geometric skip-list level in `[0, max_level)`: number of consecutive
    /// coin-flip successes (p = 1/2 per level), capped.
    #[inline(always)]
    pub fn level_p50(&mut self, max_level: usize) -> usize {
        (self.next_u64().trailing_ones() as usize).min(max_level - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = XorShift64::new(42);
        for _ in 0..10_000 {
            assert!(r.next_bounded(17) < 17);
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = XorShift64::new(9);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_bounded(8) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n / 8;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < expected as u64 / 5,
                "bucket count {b} too far from {expected}"
            );
        }
    }

    #[test]
    fn levels_are_geometric() {
        let mut r = XorShift64::new(3);
        let n = 100_000;
        let mut level0 = 0;
        let mut over = 0;
        for _ in 0..n {
            let l = r.level_p50(16);
            assert!(l < 16);
            if l == 0 {
                level0 += 1;
            }
            if l >= 8 {
                over += 1;
            }
        }
        // ~50% at level 0, ~0.4% at level >= 8.
        assert!((level0 as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((over as f64 / n as f64) < 0.01);
    }

    #[test]
    fn thread_streams_are_independent() {
        let mut a = XorShift64::for_thread(0, 0);
        let mut b = XorShift64::for_thread(1, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
