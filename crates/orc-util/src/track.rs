//! Global allocation accounting.
//!
//! The paper's evaluation makes two memory claims we reproduce directly:
//! the *bound on unreclaimed objects* (Table 1) and the *memory footprint*
//! of HS-skip vs CRF-skip (§5, 19 GB vs <1 GB). Rather than inferring these
//! from process RSS, every reclamation scheme in this workspace reports its
//! allocations and frees here, so tests and benches can read exact live
//! object/byte counts.
//!
//! Counters are relaxed atomics — they are statistics, not synchronization —
//! and their cost is noise next to the allocator call they accompany.

// Deliberately NOT the `crate::atomics` facade: these counters are global
// statistics, not synchronization, and every scheme touches them on every
// alloc/retire. Routing them through the orc-check shims would make each
// bump a scheduling point on a globally-shared address, exploding the model
// checker's branch space with interleavings no protocol property depends on.
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A set of allocation counters. The process-wide instance is [`global`];
/// tests that need isolation can carry their own.
#[derive(Debug, Default)]
pub struct AllocStats {
    live_objects: AtomicI64,
    live_bytes: AtomicI64,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    /// Objects currently retired but not yet freed (maintained by schemes).
    unreclaimed: AtomicI64,
    /// High-water mark of `unreclaimed`.
    max_unreclaimed: AtomicI64,
}

impl AllocStats {
    pub const fn new() -> Self {
        Self {
            live_objects: AtomicI64::new(0),
            live_bytes: AtomicI64::new(0),
            total_allocs: AtomicU64::new(0),
            total_frees: AtomicU64::new(0),
            unreclaimed: AtomicI64::new(0),
            max_unreclaimed: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn on_alloc(&self, bytes: usize) {
        self.live_objects.fetch_add(1, Ordering::Relaxed);
        self.live_bytes.fetch_add(bytes as i64, Ordering::Relaxed);
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn on_free(&self, bytes: usize) {
        self.live_objects.fetch_sub(1, Ordering::Relaxed);
        self.live_bytes.fetch_sub(bytes as i64, Ordering::Relaxed);
        self.total_frees.fetch_add(1, Ordering::Relaxed);
    }

    /// A scheme reports that an object entered its retired-but-unfreed set.
    #[inline]
    pub fn on_retire(&self) {
        let now = self.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_unreclaimed.fetch_max(now, Ordering::Relaxed);
    }

    /// A scheme reports that a retired object was finally freed (or handed
    /// back to the structure, for OrcGC re-insertions).
    #[inline]
    pub fn on_reclaim(&self) {
        self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn live_objects(&self) -> i64 {
        self.live_objects.load(Ordering::Relaxed)
    }

    pub fn live_bytes(&self) -> i64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    pub fn total_allocs(&self) -> u64 {
        self.total_allocs.load(Ordering::Relaxed)
    }

    pub fn total_frees(&self) -> u64 {
        self.total_frees.load(Ordering::Relaxed)
    }

    pub fn unreclaimed(&self) -> i64 {
        self.unreclaimed.load(Ordering::Relaxed)
    }

    pub fn max_unreclaimed(&self) -> i64 {
        self.max_unreclaimed.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark (between benchmark phases).
    pub fn reset_max_unreclaimed(&self) {
        self.max_unreclaimed
            .store(self.unreclaimed.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Snapshot of all counters, for the bench harness.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            live_objects: self.live_objects(),
            live_bytes: self.live_bytes(),
            total_allocs: self.total_allocs(),
            total_frees: self.total_frees(),
            unreclaimed: self.unreclaimed(),
            max_unreclaimed: self.max_unreclaimed(),
        }
    }
}

/// Point-in-time copy of [`AllocStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub live_objects: i64,
    pub live_bytes: i64,
    pub total_allocs: u64,
    pub total_frees: u64,
    pub unreclaimed: i64,
    pub max_unreclaimed: i64,
}

static GLOBAL: AllocStats = AllocStats::new();

/// The process-wide allocation counters fed by every scheme in the
/// workspace.
#[inline]
pub fn global() -> &'static AllocStats {
    &GLOBAL
}

/// Serializes [`Ledger`] sections so their deltas are attributable.
static LEDGER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A scoped view over the [`global`] counters: snapshot at `open`, diff at
/// any point later. Used by the leak tests ("allocations == frees after
/// `flush()` + drop") of the torture harness.
///
/// Opening a ledger takes a process-wide lock so concurrent ledgered
/// sections (e.g. parallel `cargo test` threads) cannot pollute each
/// other's deltas — allocation traffic from *non*-ledgered code still
/// shows up, so keep unrelated scheme activity out of ledgered scopes.
pub struct Ledger {
    base: Snapshot,
    _guard: std::sync::MutexGuard<'static, ()>,
}

/// Difference between two [`AllocStats`] snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerDelta {
    pub allocs: u64,
    pub frees: u64,
    pub live_objects: i64,
    pub live_bytes: i64,
    pub unreclaimed: i64,
}

impl LedgerDelta {
    /// Every allocation in the section was freed within the section.
    pub fn is_balanced(&self) -> bool {
        self.allocs == self.frees && self.live_objects == 0 && self.live_bytes == 0
    }
}

impl Ledger {
    /// Opens a ledgered section (blocking until any other section closes).
    pub fn open() -> Self {
        let guard = LEDGER_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Self {
            base: global().snapshot(),
            _guard: guard,
        }
    }

    /// Counter movement since `open`.
    pub fn delta(&self) -> LedgerDelta {
        let now = global().snapshot();
        LedgerDelta {
            allocs: now.total_allocs - self.base.total_allocs,
            frees: now.total_frees - self.base.total_frees,
            live_objects: now.live_objects - self.base.live_objects,
            live_bytes: now.live_bytes - self.base.live_bytes,
            unreclaimed: now.unreclaimed - self.base.unreclaimed,
        }
    }

    /// Panics with a diagnostic if the section leaked (or double-freed).
    pub fn assert_balanced(&self, label: &str) {
        let d = self.delta();
        assert!(
            d.is_balanced(),
            "{label}: leak ledger unbalanced — {} allocs vs {} frees \
             ({:+} live objects, {:+} live bytes, {:+} unreclaimed)",
            d.allocs,
            d.frees,
            d.live_objects,
            d.live_bytes,
            d.unreclaimed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let s = AllocStats::new();
        s.on_alloc(64);
        s.on_alloc(32);
        assert_eq!(s.live_objects(), 2);
        assert_eq!(s.live_bytes(), 96);
        s.on_free(64);
        assert_eq!(s.live_objects(), 1);
        assert_eq!(s.live_bytes(), 32);
        s.on_free(32);
        assert_eq!(s.live_objects(), 0);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.total_allocs(), 2);
        assert_eq!(s.total_frees(), 2);
    }

    #[test]
    fn unreclaimed_high_water_mark() {
        let s = AllocStats::new();
        for _ in 0..5 {
            s.on_retire();
        }
        for _ in 0..3 {
            s.on_reclaim();
        }
        assert_eq!(s.unreclaimed(), 2);
        assert_eq!(s.max_unreclaimed(), 5);
        s.reset_max_unreclaimed();
        assert_eq!(s.max_unreclaimed(), 2);
    }

    #[test]
    fn snapshot_is_consistent() {
        let s = AllocStats::new();
        s.on_alloc(8);
        s.on_retire();
        let snap = s.snapshot();
        assert_eq!(snap.live_objects, 1);
        assert_eq!(snap.unreclaimed, 1);
        assert_eq!(snap.max_unreclaimed, 1);
    }

    #[test]
    fn ledger_balances_and_detects_leaks() {
        {
            let ledger = Ledger::open();
            global().on_alloc(64);
            global().on_retire();
            let d = ledger.delta();
            assert!(!d.is_balanced());
            assert_eq!(d.allocs, 1);
            assert_eq!(d.unreclaimed, 1);
            global().on_reclaim();
            global().on_free(64);
            ledger.assert_balanced("balanced section");
        }
        // Sections serialize: a second open must not deadlock.
        let ledger = Ledger::open();
        assert!(ledger.delta().is_balanced());
    }

    #[test]
    fn counters_survive_concurrency() {
        let s = std::sync::Arc::new(AllocStats::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.on_alloc(16);
                        s.on_retire();
                        s.on_reclaim();
                        s.on_free(16);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.live_objects(), 0);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.unreclaimed(), 0);
        assert_eq!(s.total_allocs(), 40_000);
    }
}
