//! The workspace atomics facade.
//!
//! Every crate in the workspace that participates in a reclamation protocol
//! (`reclaim`, `orcgc`, `structures`, and the substrate modules of this
//! crate) imports its atomic types from here instead of from
//! `std::sync::atomic`. A CI grep enforces this for `crates/core` and
//! `crates/reclaim` (see DESIGN.md §9).
//!
//! * **Default build** (no `orc_check` feature): the items below are plain
//!   re-exports of `std::sync::atomic` — the facade is name-resolution only
//!   and provably costs nothing.
//! * **`orc_check` build**: the types become `#[repr(transparent)]` shims
//!   that trap every load/store/RMW/CAS into the [`crate::chk`] cooperative
//!   scheduler before executing the real operation, which is how the
//!   orc-check model checker observes and serializes every shared-memory
//!   step of a protocol under test. Outside an active exploration the shims
//!   fall through to the real operation after one relaxed load of a global
//!   counter.
//!
//! [`spin_hint`] wraps `std::hint::spin_loop` and additionally acts as a
//! voluntary yield under the checker (switching away from a spinning thread
//! is not charged against the preemption bound).

#[cfg(not(feature = "orc_check"))]
mod passthrough {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    /// Emits a machine spin-wait hint (`std::hint::spin_loop`).
    #[inline(always)]
    pub fn spin_hint() {
        std::hint::spin_loop();
    }
}

#[cfg(not(feature = "orc_check"))]
pub use passthrough::*;

#[cfg(feature = "orc_check")]
mod shim {
    pub use std::sync::atomic::Ordering;

    use crate::chk;

    macro_rules! arith_shim {
        ($name:ident, $prim:ty) => {
            impl $name {
                #[inline]
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_add");
                    self.inner.fetch_add(val, order)
                }

                #[inline]
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_sub");
                    self.inner.fetch_sub(val, order)
                }

                #[inline]
                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_max");
                    self.inner.fetch_max(val, order)
                }

                #[inline]
                pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_min");
                    self.inner.fetch_min(val, order)
                }
            }
        };
    }

    macro_rules! int_shim {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Instrumented drop-in for the `std::sync::atomic` type of the
            /// same name; every operation is a scheduling point of the
            /// orc-check model checker when an exploration is active.
            #[repr(transparent)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                #[inline]
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                #[inline]
                fn addr(&self) -> usize {
                    self as *const Self as usize
                }

                #[inline]
                pub fn load(&self, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Load, "load");
                    self.inner.load(order)
                }

                #[inline]
                pub fn store(&self, val: $prim, order: Ordering) {
                    chk::shim_access(self.addr(), chk::Acc::Store, "store");
                    self.inner.store(val, order)
                }

                #[inline]
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "swap");
                    self.inner.swap(val, order)
                }

                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "cas");
                    self.inner.compare_exchange(current, new, success, failure)
                }

                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "casw");
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                #[inline]
                pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_and");
                    self.inner.fetch_and(val, order)
                }

                #[inline]
                pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                    chk::shim_access(self.addr(), chk::Acc::Rmw, "fetch_or");
                    self.inner.fetch_or(val, order)
                }

                #[inline]
                pub fn get_mut(&mut self) -> &mut $prim {
                    // Exclusive access: not a concurrency event.
                    self.inner.get_mut()
                }

                #[inline]
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                #[inline]
                pub fn as_ptr(&self) -> *mut $prim {
                    self.inner.as_ptr()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl From<$prim> for $name {
                fn from(v: $prim) -> Self {
                    Self::new(v)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    std::fmt::Debug::fmt(&self.inner, f)
                }
            }
        };
    }

    int_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_shim!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    int_shim!(AtomicI64, std::sync::atomic::AtomicI64, i64);
    int_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    arith_shim!(AtomicUsize, usize);
    arith_shim!(AtomicU64, u64);
    arith_shim!(AtomicU8, u8);
    arith_shim!(AtomicI64, i64);

    /// Instrumented drop-in for `std::sync::atomic::AtomicPtr<T>`.
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        #[inline]
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            chk::shim_access(self.addr(), chk::Acc::Load, "load");
            self.inner.load(order)
        }

        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            chk::shim_access(self.addr(), chk::Acc::Store, "store");
            self.inner.store(p, order)
        }

        #[inline]
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            chk::shim_access(self.addr(), chk::Acc::Rmw, "swap");
            self.inner.swap(p, order)
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            chk::shim_access(self.addr(), chk::Acc::Rmw, "cas");
            self.inner.compare_exchange(current, new, success, failure)
        }

        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            chk::shim_access(self.addr(), chk::Acc::Rmw, "casw");
            self.inner
                .compare_exchange_weak(current, new, success, failure)
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// Instrumented memory fence: a scheduling point with no address.
    #[inline]
    pub fn fence(order: Ordering) {
        chk::shim_access(0, chk::Acc::Fence, "fence");
        std::sync::atomic::fence(order)
    }

    /// Spin-wait hint; under the checker this is a voluntary yield (the
    /// scheduler prefers switching away, free of preemption-bound charge).
    #[inline]
    pub fn spin_hint() {
        chk::shim_access(0, chk::Acc::SpinHint, "spin");
        std::hint::spin_loop();
    }
}

#[cfg(feature = "orc_check")]
pub use shim::*;

#[cfg(test)]
mod tests {
    use super::*;

    // Facade equivalence smoke: this module compiles and behaves identically
    // whether or not `orc_check` is enabled (crates/check runs the same
    // assertions with the feature on; `cargo test -p orc-util` runs them
    // with it off).
    #[test]
    fn single_threaded_op_sequence_matches_std() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.swap(9, Ordering::SeqCst), 7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
        assert_eq!(a.fetch_sub(2, Ordering::SeqCst), 10);
        assert_eq!(a.fetch_max(100, Ordering::SeqCst), 8);
        assert_eq!(
            a.compare_exchange(100, 3, Ordering::SeqCst, Ordering::SeqCst),
            Ok(100)
        );
        assert_eq!(
            a.compare_exchange(100, 4, Ordering::SeqCst, Ordering::SeqCst),
            Err(3)
        );
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        let p = AtomicPtr::new(std::ptr::null_mut::<u32>());
        assert!(p.load(Ordering::SeqCst).is_null());
        fence(Ordering::SeqCst);
        spin_hint();
        let mut c = AtomicI64::new(-1);
        *c.get_mut() += 1;
        assert_eq!(c.into_inner(), 0);
    }

    #[test]
    fn atomic_ptr_word_cast_is_sound() {
        // The schemes view `AtomicPtr<T>` as `AtomicUsize` (see
        // `reclaim::as_word`); both facade variants must keep the types
        // transparent over the std representation.
        assert_eq!(
            std::mem::size_of::<AtomicPtr<u64>>(),
            std::mem::size_of::<AtomicUsize>()
        );
        assert_eq!(
            std::mem::align_of::<AtomicPtr<u64>>(),
            std::mem::align_of::<AtomicUsize>()
        );
        let x = 0xBEEFusize as *mut u64;
        let p = AtomicPtr::new(x);
        // SAFETY: the layout assertions above establish identical size and
        // alignment; both types are a single atomic word.
        let w: &AtomicUsize = unsafe { &*(&p as *const AtomicPtr<u64> as *const AtomicUsize) };
        assert_eq!(w.load(Ordering::SeqCst), x as usize);
    }
}
