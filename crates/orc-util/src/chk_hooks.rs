//! Reclamation-oracle hooks for the orc-check model checker.
//!
//! The allocation/retire/reclaim funnels in `crates/reclaim` and
//! `crates/core` call these unconditionally. Without the `orc_check`
//! feature every function is an inlineable no-op (and [`on_reclaim`] always
//! answers [`ReclaimAction::Free`]), so production builds pay nothing. With
//! the feature they forward to [`crate::chk`], which records the event in
//! the shadow heap when — and only when — the calling thread belongs to a
//! live exploration.

#[cfg(feature = "orc_check")]
pub use crate::chk::ReclaimAction;

/// What a reclaim funnel must do with the memory it is about to free.
#[cfg(not(feature = "orc_check"))]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimAction {
    /// Deallocate for real.
    Free,
    /// Run the destructor in place but leak the allocation (model runs
    /// only; never returned without the `orc_check` feature).
    Quarantine,
}

/// True when the calling thread is a model thread of a live exploration.
#[inline]
pub fn in_model() -> bool {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::in_model()
    }
    #[cfg(not(feature = "orc_check"))]
    {
        false
    }
}

/// True once the current execution is being torn down; unbounded wait
/// loops must break out. Always false outside a model run.
#[inline]
pub fn aborting() -> bool {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::aborting()
    }
    #[cfg(not(feature = "orc_check"))]
    {
        false
    }
}

/// Model-aware blocking on `addr` (see `chk::block_hint`); plain
/// `yield_now` otherwise.
#[inline]
pub fn block_hint(addr: usize) {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::block_hint(addr);
    }
    #[cfg(not(feature = "orc_check"))]
    {
        let _ = addr;
        std::thread::yield_now();
    }
}

/// Records a tracked allocation `[ptr, ptr + len)` in the shadow heap.
#[inline]
pub fn on_alloc(ptr: usize, len: usize) {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::hook_alloc(ptr, len);
    }
    #[cfg(not(feature = "orc_check"))]
    {
        let _ = (ptr, len);
    }
}

/// Marks a tracked allocation retired (double-retire is a checker failure).
#[inline]
pub fn on_retire(ptr: usize) {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::hook_retire(ptr);
    }
    #[cfg(not(feature = "orc_check"))]
    {
        let _ = ptr;
    }
}

/// Reverts a retire (OrcGC's `clear_bit_retired` legally relinquishes).
#[inline]
pub fn on_unretire(ptr: usize) {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::hook_unretire(ptr);
    }
    #[cfg(not(feature = "orc_check"))]
    {
        let _ = ptr;
    }
}

/// Marks a tracked allocation reclaimed and tells the caller whether to
/// free for real or quarantine (model runs quarantine everything so a
/// detected use-after-reclaim stays physically safe).
#[inline]
#[must_use]
pub fn on_reclaim(ptr: usize) -> ReclaimAction {
    #[cfg(feature = "orc_check")]
    {
        crate::chk::hook_reclaim(ptr)
    }
    #[cfg(not(feature = "orc_check"))]
    {
        let _ = ptr;
        ReclaimAction::Free
    }
}
