//! Reclamation telemetry (orc-stats).
//!
//! The paper's whole evaluation (§6, Figs. 1–8) is about *observed*
//! reclamation behavior — throughput, retired-but-unreclaimed counts,
//! memory footprint — yet a single `unreclaimed()` gauge cannot explain
//! *why* a scheme costs what it costs. This module provides the
//! dependency-free, lock-free counters every scheme in the workspace
//! feeds:
//!
//! * **per-thread sharded counters** — one cache-line-padded slot per
//!   registry tid (the same dense-tid layout the hazard arrays use), so
//!   the hot-path cost of an event is a single relaxed add with no
//!   cross-thread contention;
//! * **power-of-two histograms** of reclamation batch sizes — whether a
//!   scheme frees in dribbles (PTP: batch = 1) or avalanches (EBR: whole
//!   limbo bins) is exactly what separates their latency profiles;
//! * a **peak-unreclaimed watermark** (`fetch_max`), the number the
//!   paper's Table 1 bounds.
//!
//! Aggregation ([`SchemeStats::snapshot`]) sums the shards into a plain
//! [`StatsSnapshot`] — the uniform currency returned by `Smr::stats()`
//! and `orcgc::domain_stats()` and consumed by the torture harness, the
//! bench records and the `orcstat` example.
//!
//! # Kill switch
//!
//! Setting `ORC_STATS=0` (or `false`/`off`) in the environment disables
//! every recording call for the life of the process: the first event
//! latches the flag into a static, after which each call is a single
//! relaxed load and a predicted-not-taken branch — measured noise for
//! overhead-sensitive runs. Counting is **on** by default.
//!
//! # Exactness contract
//!
//! Schemes pair every `unreclaimed += 1` with [`Event::Retire`] and every
//! `unreclaimed -= 1` with [`Event::Reclaim`], so at quiescence (no
//! in-flight operations) the invariant
//! `retires − reclaims == unreclaimed()` holds exactly, and
//! `reclaims ≤ retires` holds at all times. The torture harness asserts
//! both across the whole battery.

use crate::atomics::{AtomicU64, AtomicU8, Ordering};
use crate::registry;
use crate::CachePadded;

/// Number of power-of-two buckets in the batch-size histogram; bucket `i`
/// counts batches of size `[2^i, 2^(i+1))`, with the last bucket open.
pub const BATCH_BUCKETS: usize = 32;

/// Buckets in the retire→reclaim delay histogram. HDR-style layout: 4
/// linear sub-buckets per power-of-two octave (relative error ≤ 25%),
/// covering 0 ns to ~2^42 ns (≈ 73 minutes); longer delays land in the
/// last (open) bucket. See [`delay_bucket_of`].
pub const DELAY_BUCKETS: usize = 168;

/// One countable reclamation event.
///
/// The variants cover every scheme in the workspace; schemes simply never
/// bump the events that do not apply to them (EBR has no handovers, PTP
/// has no flush-driven scans beyond its matrix walks, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// An object entered the scheme's retired-but-unfreed set.
    Retire = 0,
    /// An object left the retired set (freed, or for OrcGC the rare
    /// unretire transition when the counter moved after the claim).
    Reclaim = 1,
    /// One scan / liberate / collect / handover-matrix pass.
    Scan = 2,
    /// One explicit `flush()` call.
    Flush = 3,
    /// One failed validation iteration inside a protect loop (the
    /// published word changed under the reader and the loop retried).
    ProtectRetry = 4,
    /// One object parked into (or displaced through) a handover /
    /// handoff slot (PTP, PTB, OrcGC).
    Handover = 5,
}

const EVENTS: usize = 6;

/// Per-tid shard: event counters plus the batch-size histogram. Padded so
/// adjacent tids never share a cache line.
struct Shard {
    counters: [AtomicU64; EVENTS],
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    delay_hist: [AtomicU64; DELAY_BUCKETS],
}

impl Shard {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            delay_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Sharded telemetry counters for one scheme instance (or the OrcGC
/// domain). See the module docs for layout and cost.
pub struct SchemeStats {
    shards: Box<[CachePadded<Shard>]>,
    /// Process-wide high-water mark of the owner's `unreclaimed` gauge.
    peak_unreclaimed: AtomicU64,
    /// Longest retire→reclaim delay observed, exactly (the histogram only
    /// bounds it to a sub-bucket).
    max_delay_ns: AtomicU64,
}

impl SchemeStats {
    pub fn new() -> Self {
        Self {
            shards: (0..registry::max_threads())
                .map(|_| CachePadded::new(Shard::new()))
                .collect(),
            peak_unreclaimed: AtomicU64::new(0),
            max_delay_ns: AtomicU64::new(0),
        }
    }

    /// Records one `ev` on the calling thread's shard (`tid` must be the
    /// caller's registry tid — every scheme hot path already has it).
    #[inline]
    pub fn bump(&self, tid: usize, ev: Event) {
        if enabled() {
            self.shards[tid].counters[ev as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `n` occurrences of `ev` at once (scan loops count locally
    /// and publish a single add).
    #[inline]
    pub fn add(&self, tid: usize, ev: Event, n: u64) {
        if n != 0 && enabled() {
            self.shards[tid].counters[ev as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one reclamation batch of `n` objects freed together.
    #[inline]
    pub fn batch(&self, tid: usize, n: u64) {
        if n != 0 && enabled() {
            self.shards[tid].batch_hist[bucket_of(n)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds the owner's current `unreclaimed` gauge into the peak
    /// watermark.
    #[inline]
    pub fn note_unreclaimed(&self, now: u64) {
        if enabled() {
            self.peak_unreclaimed.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Records one retire→reclaim delay of `ns` nanoseconds (the time an
    /// object spent in the retired set before its memory came back).
    #[inline]
    pub fn reclaim_delay(&self, tid: usize, ns: u64) {
        if enabled() {
            self.shards[tid].delay_hist[delay_bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
            self.max_delay_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Sums every shard into a point-in-time [`StatsSnapshot`].
    ///
    /// Counters are relaxed, so a snapshot taken during churn is
    /// approximate (each individual counter is exact-eventually); at
    /// quiescence it is exact.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for shard in self.shards.iter() {
            s.retires += shard.counters[Event::Retire as usize].load(Ordering::Relaxed);
            s.reclaims += shard.counters[Event::Reclaim as usize].load(Ordering::Relaxed);
            s.scans += shard.counters[Event::Scan as usize].load(Ordering::Relaxed);
            s.flushes += shard.counters[Event::Flush as usize].load(Ordering::Relaxed);
            s.protect_retries +=
                shard.counters[Event::ProtectRetry as usize].load(Ordering::Relaxed);
            s.handovers += shard.counters[Event::Handover as usize].load(Ordering::Relaxed);
            for (acc, b) in s.batch_hist.iter_mut().zip(shard.batch_hist.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            for (acc, b) in s.delay_hist.iter_mut().zip(shard.delay_hist.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        s.peak_unreclaimed = self.peak_unreclaimed.load(Ordering::Relaxed);
        s.max_delay_ns = self.max_delay_ns.load(Ordering::Relaxed);
        s
    }
}

impl Default for SchemeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Histogram bucket for a batch of `n ≥ 1`: `floor(log2 n)`, capped.
#[inline]
fn bucket_of(n: u64) -> usize {
    ((63 - n.leading_zeros()) as usize).min(BATCH_BUCKETS - 1)
}

/// Delay-histogram bucket for `ns`: values 0–3 get exact buckets; above
/// that, each power-of-two octave splits into 4 linear sub-buckets
/// (HDR-histogram layout), capped at [`DELAY_BUCKETS`]` - 1`.
#[inline]
fn delay_bucket_of(ns: u64) -> usize {
    if ns < 4 {
        return ns as usize;
    }
    let oct = (63 - ns.leading_zeros()) as usize; // ≥ 2
    let sub = ((ns >> (oct - 2)) & 3) as usize;
    ((oct - 2) * 4 + 4 + sub).min(DELAY_BUCKETS - 1)
}

/// Representative value (midpoint) of delay bucket `idx` — the inverse
/// of [`delay_bucket_of`] used when reading quantiles back out.
fn delay_bucket_value(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let q = idx - 4;
    let oct = q / 4 + 2;
    let sub = (q % 4) as u64;
    let lo = (4 + sub) << (oct - 2);
    lo + (1u64 << (oct - 2)) / 2
}

/// Compact human formatting of a nanosecond duration for table cells
/// (`"850ns"`, `"12.4us"`, `"3.1ms"`, `"2.50s"`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

// Kill-switch state: 0 = unread, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry recording is on (`ORC_STATS` unset or not one of
/// `0`/`false`/`off`). Latched on first call; a relaxed load afterwards.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = parse_enabled(std::env::var("ORC_STATS").ok().as_deref());
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// `ORC_STATS` parsing: only explicit `0`, `false` or `off` disable.
fn parse_enabled(v: Option<&str>) -> bool {
    !matches!(
        v.map(str::trim),
        Some("0") | Some("false") | Some("off") | Some("FALSE") | Some("OFF")
    )
}

/// Aggregated, uniform view of one scheme's telemetry — the return type
/// of `Smr::stats()` and `orcgc::domain_stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Objects that entered the retired set.
    pub retires: u64,
    /// Objects that left the retired set (freed or unretired).
    pub reclaims: u64,
    /// Scan / liberate / collect / matrix-walk passes.
    pub scans: u64,
    /// Explicit `flush()` calls.
    pub flushes: u64,
    /// Failed protect-loop validation iterations.
    pub protect_retries: u64,
    /// Handover / handoff transfers (PTP, PTB, OrcGC).
    pub handovers: u64,
    /// High-water mark of the scheme's `unreclaimed` gauge.
    pub peak_unreclaimed: u64,
    /// Power-of-two reclamation batch sizes: `batch_hist[i]` counts
    /// batches of `[2^i, 2^(i+1))` objects freed in one pass.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Retire→reclaim delay histogram (HDR-style log-bucketed, see
    /// [`DELAY_BUCKETS`]); one count per object whose free was observed
    /// with a retire timestamp.
    pub delay_hist: [u64; DELAY_BUCKETS],
    /// Longest observed retire→reclaim delay, exact.
    pub max_delay_ns: u64,
}

impl Default for StatsSnapshot {
    fn default() -> Self {
        Self {
            retires: 0,
            reclaims: 0,
            scans: 0,
            flushes: 0,
            protect_retries: 0,
            handovers: 0,
            peak_unreclaimed: 0,
            batch_hist: [0; BATCH_BUCKETS],
            delay_hist: [0; DELAY_BUCKETS],
            max_delay_ns: 0,
        }
    }
}

impl StatsSnapshot {
    /// `retires − reclaims`: at quiescence, exactly the scheme's
    /// `unreclaimed()` gauge (saturating under mid-churn skew).
    pub fn outstanding(&self) -> u64 {
        self.retires.saturating_sub(self.reclaims)
    }

    /// Total reclamation batches recorded in the histogram.
    pub fn batches(&self) -> u64 {
        self.batch_hist.iter().sum()
    }

    /// Mean objects freed per batch (0.0 when no batches ran).
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.reclaims as f64 / b as f64
        }
    }

    /// Objects with a recorded retire→reclaim delay. Can trail
    /// `reclaims` (`ORC_STATS=0` at retire time records no stamp).
    pub fn delays(&self) -> u64 {
        self.delay_hist.iter().sum()
    }

    /// Retire→reclaim delay at quantile `q` ∈ (0, 1], in nanoseconds
    /// (bucket midpoint, ≤ 25% relative error, clamped to the observed
    /// maximum so quantiles never exceed `max_delay_ns`). 0 when none
    /// recorded.
    pub fn delay_quantile(&self, q: f64) -> u64 {
        let total = self.delays();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.delay_hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's midpoint can overshoot the true
                // maximum; the clamp keeps p50 ≤ p99 ≤ max invariant.
                return delay_bucket_value(i).min(self.max_delay_ns.max(1));
            }
        }
        self.max_delay_ns
    }

    /// Median retire→reclaim delay, ns (0 when none recorded).
    pub fn delay_p50(&self) -> u64 {
        self.delay_quantile(0.50)
    }

    /// 99th-percentile retire→reclaim delay, ns (0 when none recorded).
    pub fn delay_p99(&self) -> u64 {
        self.delay_quantile(0.99)
    }

    /// Counter movement since `base` (peak is carried, not differenced —
    /// it is a watermark, not a counter).
    pub fn since(&self, base: &StatsSnapshot) -> StatsSnapshot {
        let mut d = StatsSnapshot {
            retires: self.retires.saturating_sub(base.retires),
            reclaims: self.reclaims.saturating_sub(base.reclaims),
            scans: self.scans.saturating_sub(base.scans),
            flushes: self.flushes.saturating_sub(base.flushes),
            protect_retries: self.protect_retries.saturating_sub(base.protect_retries),
            handovers: self.handovers.saturating_sub(base.handovers),
            peak_unreclaimed: self.peak_unreclaimed,
            batch_hist: [0; BATCH_BUCKETS],
            delay_hist: [0; DELAY_BUCKETS],
            max_delay_ns: self.max_delay_ns,
        };
        for (i, b) in d.batch_hist.iter_mut().enumerate() {
            *b = self.batch_hist[i].saturating_sub(base.batch_hist[i]);
        }
        for (i, b) in d.delay_hist.iter_mut().enumerate() {
            *b = self.delay_hist[i].saturating_sub(base.delay_hist[i]);
        }
        d
    }

    /// True when every counter of `self` is ≥ the matching counter of
    /// `earlier` — snapshots of a live instance must be monotone.
    pub fn is_monotone_since(&self, earlier: &StatsSnapshot) -> bool {
        self.retires >= earlier.retires
            && self.reclaims >= earlier.reclaims
            && self.scans >= earlier.scans
            && self.flushes >= earlier.flushes
            && self.protect_retries >= earlier.protect_retries
            && self.handovers >= earlier.handovers
            && self.peak_unreclaimed >= earlier.peak_unreclaimed
            && self.max_delay_ns >= earlier.max_delay_ns
            && self
                .batch_hist
                .iter()
                .zip(earlier.batch_hist.iter())
                .all(|(a, b)| a >= b)
            && self
                .delay_hist
                .iter()
                .zip(earlier.delay_hist.iter())
                .all(|(a, b)| a >= b)
    }

    /// Width of the label column in [`table_header`](Self::table_header) /
    /// [`table_row`](Self::table_row) — sized for registry cell labels
    /// like `OrcGC/CRF-skip-OrcGC`.
    pub const TABLE_LABEL_WIDTH: usize = 22;

    /// Header line for the aligned telemetry table ([`table_row`]
    /// produces the matching rows). `label_col` titles the first column
    /// (`"scheme"` for orcstat, `"cell"` for the torture ledger battery).
    ///
    /// [`table_row`]: Self::table_row
    pub fn table_header(label_col: &str) -> String {
        format!(
            "{:<lw$} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6} {:>8} {:>8} {:>8}",
            label_col,
            "Mops/s",
            "retires",
            "reclaims",
            "outst",
            "peak",
            "scans",
            "flushes",
            "p-retry",
            "handover",
            "batches",
            "mean",
            "rd-p50",
            "rd-p99",
            "rd-max",
            lw = Self::TABLE_LABEL_WIDTH,
        )
    }

    /// One aligned table row for this snapshot, under
    /// [`table_header`](Self::table_header). `mops` fills the throughput
    /// column when the caller measured one (orcstat); `None` renders `-`
    /// (the torture batteries churn for correctness, not speed).
    pub fn table_row(&self, label: &str, mops: Option<f64>) -> String {
        let mops = match mops {
            Some(m) => format!("{m:>8.3}"),
            None => format!("{:>8}", "-"),
        };
        let (p50, p99, max) = if self.delays() == 0 {
            ("-".into(), "-".into(), "-".into())
        } else {
            (
                fmt_ns(self.delay_p50()),
                fmt_ns(self.delay_p99()),
                fmt_ns(self.max_delay_ns),
            )
        };
        format!(
            "{label:<lw$} {mops} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6.1} {p50:>8} {p99:>8} {max:>8}",
            self.retires,
            self.reclaims,
            self.outstanding(),
            self.peak_unreclaimed,
            self.scans,
            self.flushes,
            self.protect_retries,
            self.handovers,
            self.batches(),
            self.mean_batch(),
            lw = Self::TABLE_LABEL_WIDTH,
        )
    }

    /// Serializes the scalar counters as one JSON object (hand-rolled —
    /// the workspace has no serde). This is the nested `"stats"` object
    /// of `Measurement::json` in `workloads` and of the torture bin's
    /// `--json` lines: keep the key set append-only so committed
    /// `BENCH_*.json` baselines stay parseable.
    pub fn json(&self) -> String {
        let mean = self.mean_batch();
        format!(
            "{{\"retires\":{},\"reclaims\":{},\"scans\":{},\"flushes\":{},\
             \"protect_retries\":{},\"handovers\":{},\"peak_unreclaimed\":{},\
             \"batches\":{},\"mean_batch\":{}}}",
            self.retires,
            self.reclaims,
            self.scans,
            self.flushes,
            self.protect_retries,
            self.handovers,
            self.peak_unreclaimed,
            self.batches(),
            // 0-batch snapshots yield mean 0.0 (never NaN), but guard
            // anyway: `{}` on a non-finite f64 is invalid JSON.
            if mean.is_finite() {
                format!("{mean}")
            } else {
                "null".into()
            },
        )
    }

    /// One-line human summary for progress output.
    pub fn summary(&self) -> String {
        format!(
            "retires {} reclaims {} scans {} flushes {} retries {} handovers {} peak {} mean-batch {:.1} rd-p50 {} rd-p99 {} rd-max {}",
            self.retires,
            self.reclaims,
            self.scans,
            self.flushes,
            self.protect_retries,
            self.handovers,
            self.peak_unreclaimed,
            self.mean_batch(),
            fmt_ns(self.delay_p50()),
            fmt_ns(self.delay_p99()),
            fmt_ns(self.max_delay_ns),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_floor_log2() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(u64::MAX), BATCH_BUCKETS - 1);
    }

    #[test]
    fn delay_buckets_are_monotone_and_invertible() {
        // Exact low range.
        for ns in 0..4u64 {
            assert_eq!(delay_bucket_of(ns), ns as usize);
            assert_eq!(delay_bucket_value(ns as usize), ns);
        }
        // Buckets are non-decreasing in ns and the representative value
        // lands back in its own bucket.
        let mut prev = 0;
        for shift in 2..42 {
            for sub in 0..4u64 {
                let ns = (4 + sub) << (shift - 2);
                let b = delay_bucket_of(ns);
                assert!(b >= prev, "bucket regressed at ns={ns}");
                prev = b;
                assert_eq!(delay_bucket_of(delay_bucket_value(b)), b);
            }
        }
        assert_eq!(delay_bucket_of(u64::MAX), DELAY_BUCKETS - 1);
        // Relative error of the midpoint representative stays ≤ 25%.
        for ns in [5u64, 100, 1_000, 123_456, 10_000_000] {
            let v = delay_bucket_value(delay_bucket_of(ns)) as f64;
            let err = (v - ns as f64).abs() / ns as f64;
            assert!(err <= 0.25, "ns={ns} rep={v} err={err}");
        }
    }

    #[test]
    fn delay_quantiles_from_synthetic_hist() {
        let s = SchemeStats::new();
        let tid = registry::tid();
        // 99 fast frees at ~1 µs, one straggler at ~1 s.
        for _ in 0..99 {
            s.reclaim_delay(tid, 1_000);
        }
        s.reclaim_delay(tid, 1_000_000_000);
        let snap = s.snapshot();
        assert_eq!(snap.delays(), 100);
        assert_eq!(snap.max_delay_ns, 1_000_000_000);
        let p50 = snap.delay_p50();
        assert!((750..=1_250).contains(&p50), "p50={p50}");
        let p99 = snap.delay_p99();
        assert!(p99 <= 1_250, "p99 rank 99 is still a fast free, got {p99}");
        assert!(snap.delay_quantile(1.0) >= 750_000_000);
        assert_eq!(StatsSnapshot::default().delay_p50(), 0);
    }

    #[test]
    fn fmt_ns_is_compact() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_400), "12.4us");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
        for ns in [0, 999, 999_949, 999_949_999, 9_999_994_999_999] {
            assert!(fmt_ns(ns).len() <= 8, "{} too wide", fmt_ns(ns));
        }
    }

    #[test]
    fn parse_enabled_defaults_on() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("1")));
        assert!(parse_enabled(Some("yes")));
        assert!(!parse_enabled(Some("0")));
        assert!(!parse_enabled(Some(" 0 ")));
        assert!(!parse_enabled(Some("false")));
        assert!(!parse_enabled(Some("off")));
        assert!(!parse_enabled(Some("OFF")));
    }

    #[test]
    fn events_accumulate_into_snapshot() {
        let s = SchemeStats::new();
        let tid = registry::tid();
        for _ in 0..5 {
            s.bump(tid, Event::Retire);
        }
        s.add(tid, Event::Reclaim, 3);
        s.bump(tid, Event::Scan);
        s.bump(tid, Event::Flush);
        s.bump(tid, Event::ProtectRetry);
        s.bump(tid, Event::Handover);
        s.batch(tid, 3);
        s.note_unreclaimed(5);
        s.note_unreclaimed(2); // watermark must not regress
        let snap = s.snapshot();
        assert_eq!(snap.retires, 5);
        assert_eq!(snap.reclaims, 3);
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.protect_retries, 1);
        assert_eq!(snap.handovers, 1);
        assert_eq!(snap.outstanding(), 2);
        assert_eq!(snap.peak_unreclaimed, 5);
        assert_eq!(snap.batches(), 1);
        assert_eq!(snap.batch_hist[1], 1, "batch of 3 lands in [2,4)");
        assert!((snap.mean_batch() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shards_merge_across_threads() {
        let s = std::sync::Arc::new(SchemeStats::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let tid = registry::tid();
                    for _ in 0..1_000 {
                        s.bump(tid, Event::Retire);
                        s.bump(tid, Event::Reclaim);
                    }
                    s.batch(tid, 1_000);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.retires, 4_000);
        assert_eq!(snap.reclaims, 4_000);
        assert_eq!(snap.batches(), 4);
        assert_eq!(snap.outstanding(), 0);
    }

    #[test]
    fn since_and_monotone() {
        let s = SchemeStats::new();
        let tid = registry::tid();
        s.bump(tid, Event::Retire);
        let a = s.snapshot();
        s.bump(tid, Event::Retire);
        s.bump(tid, Event::Reclaim);
        s.batch(tid, 1);
        let b = s.snapshot();
        assert!(b.is_monotone_since(&a));
        assert!(!a.is_monotone_since(&b));
        let d = b.since(&a);
        assert_eq!(d.retires, 1);
        assert_eq!(d.reclaims, 1);
        assert_eq!(d.batches(), 1);
    }

    #[test]
    fn zero_counts_are_ignored() {
        let s = SchemeStats::new();
        let tid = registry::tid();
        s.add(tid, Event::Reclaim, 0);
        s.batch(tid, 0);
        let snap = s.snapshot();
        assert_eq!(snap.reclaims, 0);
        assert_eq!(snap.batches(), 0);
    }

    #[test]
    fn summary_is_one_line() {
        let snap = StatsSnapshot::default();
        let line = snap.summary();
        assert!(!line.contains('\n'));
        assert!(line.contains("retires 0"));
    }

    #[test]
    fn table_rows_align_with_header() {
        let header = StatsSnapshot::table_header("cell");
        let snap = StatsSnapshot::default();
        let with_mops = snap.table_row("HP/MichaelList", Some(1.234));
        let without = snap.table_row("OrcGC/CRF-skip-OrcGC", None);
        assert_eq!(header.len(), with_mops.len());
        assert_eq!(header.len(), without.len());
        assert!(with_mops.contains("1.234"));
        assert!(without.contains(" - "));
    }
}
