//! Cache-line padding and bounded spinning, implemented in-tree.
//!
//! The workspace builds with **zero external dependencies** so the tier-1
//! verify runs in network-isolated environments (see README "Building
//! offline & CI"). These two types replace the only pieces of
//! `crossbeam-utils` the codebase used: [`CachePadded`] for the per-thread
//! hazard/handover rows and [`Backoff`] for contended CAS loops.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to twice the typical cache-line size, preventing
/// false sharing between adjacent per-thread rows.
///
/// 128 bytes covers the spatial-prefetcher pairing on modern x86_64
/// (adjacent-line prefetch) and the 128-byte lines of apple-silicon
/// aarch64; on other targets it is merely conservative.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// Exponential backoff for contended retry loops: spin with doubling
/// intensity, then start yielding the thread once spinning stops paying.
/// The step advances through `&self` (interior mutability) so loops can
/// hold an immutable binding.
pub struct Backoff {
    step: Cell<u32>,
}

/// Spin limit: `2^6 = 64` pause instructions per round.
const SPIN_LIMIT: u32 = 6;
/// Beyond this, [`Backoff::is_completed`] suggests parking.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    pub const fn new() -> Self {
        Self { step: Cell::new(0) }
    }

    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off without ever yielding (for short critical retries).
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get();
        for _ in 0..1u32 << step.min(SPIN_LIMIT) {
            crate::atomics::spin_hint();
        }
        if step <= SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Backs off, escalating from spinning to `yield_now` under persistent
    /// contention.
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                crate::atomics::spin_hint();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once the backoff has escalated past yielding — callers may
    /// switch to parking instead.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_big_and_aligned() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn cache_padded_deref_mut() {
        let mut p = CachePadded::new(vec![1, 2]);
        p.push(3);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn backoff_escalates_then_completes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
