//! orc-check: a deterministic, cooperative-scheduling bounded model checker
//! for the workspace's reclamation protocols.
//!
//! # How it works
//!
//! [`explore`] re-runs a closure under every schedule a DFS with *iterative
//! preemption bounding* (CHESS-style) generates. Model threads are real OS
//! threads, but a Mutex/Condvar baton guarantees **exactly one** runs at a
//! time, and it may only advance to its next shared-memory operation when
//! the scheduler picks it — so an execution is a deterministic sequence of
//! sequentially-consistent steps. The facade shims in [`crate::atomics`]
//! are the yield points: each shim *declares* the upcoming operation
//! (address + kind), parks until granted, then performs the real operation
//! exclusively.
//!
//! Exploration branches only at steps whose address is touched by two or
//! more threads with at least one write (classified from the parent run's
//! own trace: private operations commute, so preempting before them cannot
//! change the outcome), plus forced/voluntary switches, which cost nothing
//! against the preemption bound. Sleep sets (Godefroid) prune sibling
//! branches that would only commute. `CheckMode::Random` replaces the DFS
//! with seeded Bernoulli switching for configurations too big to exhaust.
//! No wall-clock or entropy API is consulted anywhere, so runs are
//! bit-reproducible.
//!
//! # Reclamation oracles
//!
//! A per-execution *shadow heap* tracks every tracked allocation through
//! the [`crate::chk_hooks`] funnels (`alloc` → `retire` → `reclaim`). The
//! oracles report: use-after-reclaim (any shim access inside a reclaimed
//! block, checked *before* the real operation runs), double-retire,
//! retire-after-reclaim, double-free, and leak-at-quiescence (a tracked
//! block not reclaimed by path end). Under a model run reclaimed blocks are
//! *quarantined* — their destructor runs in place but the memory is leaked
//! — so the real operation behind a detected use-after-reclaim is still
//! physically safe and the execution can finish and print its trace.
//!
//! # Determinism caveat
//!
//! Schedules are replayed as step-indexed deviation lists, so replay never
//! compares addresses across runs. Sleep-set entries do carry addresses
//! across parent→child runs; tracked objects use allocation serials (stable
//! by construction) and statics are stable, but untracked heap addresses
//! rely on the allocator reproducing the same layout for the replayed
//! prefix (it does in practice: the sequence of allocations is identical).
//! `ORC_CHECK_SLEEP=0` disables sleep sets entirely if that ever misfires.

use crate::rng::XorShift64;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel thread id ("no thread").
const NONE: usize = usize::MAX;

/// Operation kind declared at a yield point or recorded in the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acc {
    Load,
    Store,
    Rmw,
    Fence,
    SpinHint,
    /// Pseudo-op: a thread's first scheduling grant.
    Start,
    /// Pseudo-op: re-grant after unblocking (gate release / join target exit).
    Resume,
    /// Trace-only events (not scheduling steps).
    Spawn,
    Exit,
    Block,
    Alloc,
    Retire,
    Unretire,
    Reclaim,
}

impl Acc {
    #[inline]
    fn is_write(self) -> bool {
        matches!(self, Acc::Store | Acc::Rmw)
    }
    #[inline]
    fn is_mem(self) -> bool {
        matches!(self, Acc::Load | Acc::Store | Acc::Rmw)
    }
}

/// How [`explore`] walks the schedule space.
#[derive(Clone, Copy, Debug)]
pub enum CheckMode {
    /// DFS over schedules with iterative preemption bounding + sleep sets.
    Exhaustive,
    /// Seeded random scheduling: `schedules` independent runs. Failures are
    /// still replayable (the generated deviation list is reported).
    Random { schedules: usize, seed: u64 },
}

/// Exploration knobs. `Config::default()` is the per-push CI setting;
/// [`Config::from_env`] applies the `ORC_CHECK_*` overrides documented in
/// the README.
#[derive(Clone, Debug)]
pub struct Config {
    pub mode: CheckMode,
    /// Maximum preemptive context switches per schedule (forced and
    /// voluntary switches are free), exhaustive mode only.
    pub preemption_bound: usize,
    /// Per-schedule step budget; exceeding it reports a livelock.
    pub max_steps: usize,
    /// Global schedule budget; exceeding it sets `Report::truncated`.
    pub max_schedules: usize,
    /// Check leak-at-quiescence at the end of every clean path.
    pub check_leaks: bool,
    /// Sleep-set pruning (exhaustive mode).
    pub sleep_sets: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            mode: CheckMode::Exhaustive,
            preemption_bound: 2,
            max_steps: 20_000,
            max_schedules: 20_000,
            check_leaks: true,
            sleep_sets: true,
        }
    }
}

impl Config {
    /// `Config::default()` with `ORC_CHECK_{PREEMPTIONS,MAX_STEPS,SCHEDULES,
    /// MODE,SEED,SLEEP,LEAKS}` applied on top.
    pub fn from_env() -> Self {
        fn num(k: &str) -> Option<u64> {
            std::env::var(k).ok().and_then(|v| v.trim().parse().ok())
        }
        let mut c = Self::default();
        if let Some(v) = num("ORC_CHECK_PREEMPTIONS") {
            c.preemption_bound = v as usize;
        }
        if let Some(v) = num("ORC_CHECK_MAX_STEPS") {
            c.max_steps = v as usize;
        }
        if let Some(v) = num("ORC_CHECK_SCHEDULES") {
            c.max_schedules = v as usize;
        }
        if std::env::var("ORC_CHECK_MODE").as_deref() == Ok("random") {
            c.mode = CheckMode::Random {
                schedules: c.max_schedules,
                seed: num("ORC_CHECK_SEED").unwrap_or(0xC0FFEE),
            };
        }
        if std::env::var("ORC_CHECK_SLEEP").as_deref() == Ok("0") {
            c.sleep_sets = false;
        }
        if std::env::var("ORC_CHECK_LEAKS").as_deref() == Ok("0") {
            c.check_leaks = false;
        }
        c
    }
}

/// Summary of a completed (failure-free) exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Total scheduling steps across all schedules.
    pub steps: u64,
    /// Schedules whose replay prefix drifted from the parent trace
    /// (counted, not fatal; a handful is harmless, many means the body is
    /// nondeterministic).
    pub diverged: usize,
    /// True if `max_schedules` stopped the walk before exhaustion.
    pub truncated: bool,
    pub preemption_bound: usize,
}

/// One trace line: a scheduling step or an annotation event.
#[derive(Clone, Debug)]
pub struct TraceEv {
    pub step: u32,
    pub tid: u32,
    pub acc: Acc,
    pub name: &'static str,
    pub addr: usize,
    /// `(allocation serial, byte offset)` when `addr` falls inside a
    /// shadow-heap block.
    pub obj: Option<(u64, usize)>,
}

impl fmt::Display for TraceEv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = match self.acc {
            Acc::Spawn | Acc::Exit => format!("T{}", self.addr),
            Acc::Block if self.name == "join" => format!("T{}", self.addr),
            _ => match self.obj {
                Some((ser, off)) => format!("obj#{ser}+0x{off:x}"),
                None if self.addr == 0 => String::new(),
                None => format!("0x{:012x}", self.addr),
            },
        };
        write!(
            f,
            "#{:<5} T{} {:<9} {}",
            self.step, self.tid, self.name, target
        )
    }
}

/// A reported property violation, replayable from `schedule`.
#[derive(Clone, Debug)]
pub struct Failure {
    pub message: String,
    /// Step counter at detection time.
    pub step: usize,
    /// `(step, thread)` deviations from the default schedule that reproduce
    /// this execution.
    pub schedule: Vec<(usize, usize)>,
    pub trace: Vec<TraceEv>,
    pub schedules_explored: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "orc-check failure: {}", self.message)?;
        writeln!(
            f,
            "  detected at step {} after {} schedule(s)",
            self.step, self.schedules_explored
        )?;
        if !self.schedule.is_empty() {
            write!(f, "  schedule (step -> thread):")?;
            for (s, t) in &self.schedule {
                write!(f, " {s}->T{t}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  trace ({} events):", self.trace.len())?;
        let n = self.trace.len();
        if n > 200 {
            for ev in &self.trace[..40] {
                writeln!(f, "    {ev}")?;
            }
            writeln!(f, "    ... {} events elided ...", n - 160)?;
            for ev in &self.trace[n - 120..] {
                writeln!(f, "    {ev}")?;
            }
        } else {
            for ev in &self.trace {
                writeln!(f, "    {ev}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

// ---------------------------------------------------------------------------
// Shadow heap
// ---------------------------------------------------------------------------

/// Address identity stable enough to carry across parent→child runs:
/// tracked blocks are named by allocation serial (deterministic), anything
/// else by raw address (see module docs for the caveat).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AddrKey {
    Obj(u64, usize),
    Raw(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BState {
    Live,
    Retired,
    Reclaimed,
}

#[derive(Clone, Debug)]
struct Block {
    len: usize,
    serial: u64,
    state: BState,
    retired_step: Option<usize>,
    reclaimed_step: Option<usize>,
}

#[derive(Default)]
struct Shadow {
    blocks: BTreeMap<usize, Block>,
    next_serial: u64,
}

impl Shadow {
    fn block_of(&self, addr: usize) -> Option<(usize, &Block)> {
        self.blocks
            .range(..=addr)
            .next_back()
            .filter(|(s, b)| addr < *s + b.len)
            .map(|(s, b)| (*s, b))
    }

    fn block_mut(&mut self, addr: usize) -> Option<&mut Block> {
        self.blocks
            .range_mut(..=addr)
            .next_back()
            .filter(|(s, b)| addr < **s + b.len)
            .map(|(_, b)| b)
    }

    fn resolve(&self, addr: usize) -> Option<(u64, usize)> {
        self.block_of(addr).map(|(s, b)| (b.serial, addr - s))
    }

    fn key(&self, addr: usize) -> AddrKey {
        match self.resolve(addr) {
            Some((ser, off)) => AddrKey::Obj(ser, off),
            None => AddrKey::Raw(addr),
        }
    }

    fn insert(&mut self, start: usize, len: usize) -> u64 {
        let serial = self.next_serial;
        self.next_serial += 1;
        // A stale entry here would mean the allocator reused a quarantined
        // address, which quarantine prevents; tolerate it anyway.
        self.blocks.insert(
            start,
            Block {
                len,
                serial,
                state: BState::Live,
                retired_step: None,
                reclaimed_step: None,
            },
        );
        serial
    }

    /// Use-after-reclaim check, run before the access executes.
    fn check_access(&self, addr: usize) -> Option<String> {
        let (_, b) = self.block_of(addr)?;
        if b.state == BState::Reclaimed {
            Some(format!(
                "obj#{} (len {}) was reclaimed at step {:?} (retired at step {:?})",
                b.serial, b.len, b.reclaimed_step, b.retired_step
            ))
        } else {
            None
        }
    }

    fn retire(&mut self, addr: usize, step: usize) -> Result<Option<(u64, usize)>, String> {
        let Some(b) = self.block_mut(addr) else {
            return Ok(None);
        };
        match b.state {
            BState::Live => {
                b.state = BState::Retired;
                b.retired_step = Some(step);
                Ok(Some((b.serial, 0)))
            }
            BState::Retired => Err(format!(
                "double retire: obj#{} already retired at step {:?}",
                b.serial, b.retired_step
            )),
            BState::Reclaimed => Err(format!(
                "retire after reclaim: obj#{} reclaimed at step {:?}",
                b.serial, b.reclaimed_step
            )),
        }
    }

    fn unretire(&mut self, addr: usize) -> Option<(u64, usize)> {
        let b = self.block_mut(addr)?;
        if b.state == BState::Retired {
            b.state = BState::Live;
            b.retired_step = None;
        }
        Some((b.serial, 0))
    }

    fn reclaim(&mut self, addr: usize, step: usize) -> Result<Option<(u64, usize)>, String> {
        let Some(b) = self.block_mut(addr) else {
            return Ok(None);
        };
        match b.state {
            BState::Live | BState::Retired => {
                b.state = BState::Reclaimed;
                b.reclaimed_step = Some(step);
                Ok(Some((b.serial, 0)))
            }
            BState::Reclaimed => Err(format!(
                "double free: obj#{} already reclaimed at step {:?}",
                b.serial, b.reclaimed_step
            )),
        }
    }

    /// Path-end oracle: every tracked block must have been reclaimed
    /// (retired − reclaimed == live-at-quiescence == 0 after teardown).
    fn leak_report(&self) -> Option<String> {
        let leaked: Vec<&Block> = self
            .blocks
            .values()
            .filter(|b| b.state != BState::Reclaimed)
            .collect();
        if leaked.is_empty() {
            return None;
        }
        let mut msg = format!(
            "leak at quiescence: {} tracked object(s) not reclaimed at path end:",
            leaked.len()
        );
        for b in leaked.iter().take(8) {
            msg.push_str(&format!(" obj#{}({:?})", b.serial, b.state));
        }
        if leaked.len() > 8 {
            msg.push_str(" ...");
        }
        Some(msg)
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct DeclaredOp {
    addr: usize,
    acc: Acc,
    name: &'static str,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockTarget {
    Addr(usize),
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(BlockTarget),
    Finished,
}

struct ThreadSt {
    run: Run,
    declared: Option<DeclaredOp>,
    last_was_spin: bool,
}

impl ThreadSt {
    fn starting() -> Self {
        Self {
            run: Run::Runnable,
            declared: Some(DeclaredOp {
                addr: 0,
                acc: Acc::Start,
                name: "start",
            }),
            last_was_spin: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct SleepEntry {
    tid: usize,
    key: AddrKey,
    write: bool,
}

/// A point where the parent schedule is deviated from: at step `step`, run
/// `tid` instead of the default choice. `sleep` is the sleep set to install
/// when the deviation is applied (parent's set + already-explored siblings).
#[derive(Clone, Debug)]
struct Deviation {
    step: usize,
    tid: usize,
    sleep: Vec<SleepEntry>,
}

/// Per-committed-step record used by the explorer to generate children.
#[derive(Clone)]
struct Cand {
    tid: usize,
    addr: usize,
    key: AddrKey,
    write: bool,
    mem: bool,
    /// The thread's last committed op was a `spin_hint` and no write has
    /// been committed since: re-scheduling it would only replay an
    /// identical spin-loop iteration. The explorer never deviates *to* a
    /// spun thread — without this, every forced re-spin mints a fresh
    /// switch point two steps later and the DFS walks an unbounded chain
    /// of ever-longer schedules (CHESS's fair-scheduling reduction).
    spun: bool,
}

struct StepInfo {
    cands: Vec<Cand>,
    sleeping: Vec<SleepEntry>,
    chosen: usize,
    /// Switching away here is not charged as a preemption (previous thread
    /// blocked/finished, or voluntarily yielded via `spin_hint`).
    free: bool,
}

struct State {
    threads: Vec<ThreadSt>,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    active: usize,
    step: usize,
    deviations: Vec<Deviation>,
    next_dev: usize,
    /// Random-mode: switches taken, recorded for failure replay.
    recorded: Vec<Deviation>,
    trace: Vec<TraceEv>,
    steps: Vec<StepInfo>,
    sleep: Vec<SleepEntry>,
    shadow: Shadow,
    rng: Option<XorShift64>,
    failure: Option<Failure>,
    diverged: bool,
    abort: bool,
    done: bool,
    max_steps: usize,
}

struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(cfg: &Config, deviations: Vec<Deviation>, rng: Option<XorShift64>) -> Self {
        Self {
            state: Mutex::new(State {
                threads: Vec::new(),
                handles: Vec::new(),
                active: NONE,
                step: 0,
                deviations,
                next_dev: 0,
                recorded: Vec::new(),
                trace: Vec::new(),
                steps: Vec::new(),
                sleep: Vec::new(),
                shadow: Shadow::default(),
                rng,
                failure: None,
                diverged: false,
                abort: false,
                done: false,
                max_steps: cfg.max_steps,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    fn record_failure(&self, st: &mut State, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                message,
                step: st.step,
                schedule: Vec::new(),
                trace: Vec::new(),
                schedules_explored: 0,
            });
        }
    }

    fn push_event(&self, st: &mut State, tid: usize, acc: Acc, name: &'static str, addr: usize) {
        let obj = st.shadow.resolve(addr);
        st.trace.push(TraceEv {
            step: st.step as u32,
            tid: tid as u32,
            acc,
            name,
            addr,
            obj,
        });
    }

    /// Picks the thread that executes the next step. Returns `None` only on
    /// deadlock/abort (with `st.abort` set).
    fn decide(&self, st: &mut State) -> Option<usize> {
        if st.abort {
            return None;
        }
        let s = st.step;
        let raw: Vec<(usize, usize, Acc)> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match (&t.run, &t.declared) {
                (Run::Runnable, Some(d)) => Some((i, d.addr, d.acc)),
                _ => None,
            })
            .collect();
        let cands: Vec<Cand> = raw
            .iter()
            .map(|&(tid, addr, acc)| Cand {
                tid,
                addr,
                key: st.shadow.key(addr),
                write: acc.is_write(),
                mem: acc.is_mem(),
                spun: st.threads[tid].last_was_spin,
            })
            .collect();
        if cands.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.run {
                    Run::Blocked(b) => Some(format!("T{i}:{b:?}")),
                    _ => None,
                })
                .collect();
            self.record_failure(
                st,
                format!("deadlock: no runnable thread [{}]", blocked.join(", ")),
            );
            st.abort = true;
            self.cv.notify_all();
            return None;
        }
        let prev = st.active;
        let prev_cand = prev != NONE && cands.iter().any(|c| c.tid == prev);
        let prev_spun = prev_cand && st.threads[prev].last_was_spin;
        let free = !prev_cand || prev_spun;
        st.steps.push(StepInfo {
            cands: cands.clone(),
            sleeping: st.sleep.clone(),
            chosen: NONE,
            free,
        });
        // Replay: apply the pending deviation if it names this step.
        while let Some(d) = st.deviations.get(st.next_dev) {
            if d.step > s {
                break;
            }
            let d = d.clone();
            st.next_dev += 1;
            if d.step == s {
                st.sleep = d.sleep.clone();
                if cands.iter().any(|c| c.tid == d.tid) {
                    return Some(d.tid);
                }
            }
            // The named step was skipped or the named thread is not
            // runnable: the prefix drifted from the parent trace.
            st.diverged = true;
        }
        // Default policy: continue the previous thread; after a voluntary
        // spin_hint yield, round-robin to the next runnable thread.
        let default = if prev_cand && !prev_spun {
            prev
        } else if prev_cand {
            cands
                .iter()
                .map(|c| c.tid)
                .find(|&t| t != prev)
                .unwrap_or(prev)
        } else {
            cands[0].tid
        };
        if let Some(rng) = st.rng.as_mut() {
            let others: Vec<usize> = cands
                .iter()
                .filter(|c| c.tid != default && !c.spun)
                .map(|c| c.tid)
                .collect();
            if !others.is_empty() && rng.chance_permille(300) {
                let pick = others[rng.next_bounded(others.len() as u64) as usize];
                st.recorded.push(Deviation {
                    step: s,
                    tid: pick,
                    sleep: Vec::new(),
                });
                return Some(pick);
            }
        }
        Some(default)
    }

    /// Commits `chosen`'s declared op as the next step: trace, oracles,
    /// wakeups, sleep-set maintenance. The real operation runs right after,
    /// exclusively, on `chosen`'s OS thread.
    fn commit(&self, st: &mut State, chosen: usize) {
        let op = st.threads[chosen]
            .declared
            .take()
            .expect("chosen thread has a declared op");
        let s = st.step;
        st.step += 1;
        st.threads[chosen].last_was_spin = matches!(op.acc, Acc::SpinHint);
        if let Some(info) = st.steps.last_mut() {
            info.chosen = chosen;
        }
        let obj = st.shadow.resolve(op.addr);
        st.trace.push(TraceEv {
            step: s as u32,
            tid: chosen as u32,
            acc: op.acc,
            name: op.name,
            addr: op.addr,
            obj,
        });
        if op.acc.is_mem() {
            if let Some(msg) = st.shadow.check_access(op.addr) {
                self.record_failure(
                    st,
                    format!(
                        "use-after-reclaim: T{chosen} {} at step {s}: {msg}",
                        op.name
                    ),
                );
            }
        }
        if st.step >= st.max_steps && !st.abort {
            self.record_failure(
                st,
                format!(
                    "livelock: exceeded max_steps={} without quiescing",
                    st.max_steps
                ),
            );
            st.abort = true;
            self.cv.notify_all();
        }
        if op.acc.is_write() {
            for t in st.threads.iter_mut() {
                if t.run == Run::Blocked(BlockTarget::Addr(op.addr)) {
                    t.run = Run::Runnable;
                    t.declared = Some(DeclaredOp {
                        addr: 0,
                        acc: Acc::Resume,
                        name: "resume",
                    });
                }
                // A write may have changed whatever condition a spinner is
                // polling; its next iteration is meaningful again.
                t.last_was_spin = false;
            }
        }
        // Sleep-set maintenance: executing a thread removes it; a dependent
        // op (same location, at least one write) wakes sleepers.
        let key = st.shadow.key(op.addr);
        let w = op.acc.is_write();
        let mem = op.acc.is_mem();
        st.sleep
            .retain(|e| e.tid != chosen && !(mem && e.key == key && (e.write || w)));
    }

    /// Decide + commit exactly one step and grant the baton to the winner.
    fn schedule_next(&self, st: &mut State) {
        if let Some(chosen) = self.decide(st) {
            self.commit(st, chosen);
            st.active = chosen;
            self.cv.notify_all();
        }
    }

    /// A model thread declares its next shared-memory op and parks until the
    /// scheduler grants it the step.
    fn yield_op(&self, my: usize, op: DeclaredOp) {
        let mut st = self.lock();
        if st.abort {
            return;
        }
        st.threads[my].declared = Some(op);
        self.schedule_next(&mut st);
        while st.active != my && !st.abort {
            st = self.wait(st);
        }
    }

    /// Parks `my` until some thread writes `addr` (used by the stall gate:
    /// a parked model thread counts as "scheduled elsewhere" instead of
    /// spinning the DFS into its step budget).
    fn block_addr(&self, my: usize, addr: usize) {
        let mut st = self.lock();
        if st.abort {
            return;
        }
        st.threads[my].run = Run::Blocked(BlockTarget::Addr(addr));
        st.threads[my].declared = None;
        self.push_event(&mut st, my, Acc::Block, "block", addr);
        self.schedule_next(&mut st);
        while !st.abort {
            if st.active == my && st.threads[my].run == Run::Runnable {
                break;
            }
            st = self.wait(st);
        }
    }

    fn join_model(&self, my: usize, target: usize) {
        let mut st = self.lock();
        loop {
            if st.abort || st.threads[target].run == Run::Finished {
                return;
            }
            st.threads[my].run = Run::Blocked(BlockTarget::Join(target));
            st.threads[my].declared = None;
            self.push_event(&mut st, my, Acc::Block, "join", target);
            self.schedule_next(&mut st);
            while !st.abort {
                if st.active == my && st.threads[my].run == Run::Runnable {
                    break;
                }
                st = self.wait(st);
            }
        }
    }

    fn thread_finished(&self, my: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[my].run = Run::Finished;
        st.threads[my].declared = None;
        self.push_event(&mut st, my, Acc::Exit, "exit", my);
        if let Some(m) = panic_msg {
            self.record_failure(&mut st, format!("thread T{my} panicked: {m}"));
        }
        for t in st.threads.iter_mut() {
            if t.run == Run::Blocked(BlockTarget::Join(my)) {
                t.run = Run::Runnable;
                t.declared = Some(DeclaredOp {
                    addr: 0,
                    acc: Acc::Resume,
                    name: "resume",
                });
            }
        }
        if st.threads.iter().all(|t| t.run == Run::Finished) {
            st.done = true;
            self.cv.notify_all();
            return;
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.schedule_next(&mut st);
    }

    fn spawn_model(self: &Arc<Self>, f: Box<dyn FnOnce() + Send>) -> usize {
        let tid;
        {
            let mut st = self.lock();
            tid = st.threads.len();
            if st.abort {
                // Aborting: semantics no longer matter, but join handles
                // must resolve — run the body inline as a finished thread.
                let mut t = ThreadSt::starting();
                t.run = Run::Finished;
                t.declared = None;
                st.threads.push(t);
                st.handles.push(None);
                drop(st);
                let _ = catch_unwind(AssertUnwindSafe(f));
                return tid;
            }
            st.threads.push(ThreadSt::starting());
            st.handles.push(None);
            let me = st.active;
            self.push_event(
                &mut st,
                if me == NONE { 0 } else { me },
                Acc::Spawn,
                "spawn",
                tid,
            );
        }
        let s2 = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("orc-check-t{tid}"))
            .spawn(move || model_main(s2, tid, f))
            .expect("orc-check: OS thread spawn failed");
        self.lock().handles[tid] = Some(h);
        tid
    }
}

// ---------------------------------------------------------------------------
// Model-thread context + shim/hook entry points
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct ModelCtx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static MODEL: RefCell<Option<ModelCtx>> = const { RefCell::new(None) };
}

/// Explorations currently running (0 or 1: [`explore`] is serialized). The
/// shim fast path is a single relaxed load of this counter.
static EXPLORATIONS: StdAtomicUsize = StdAtomicUsize::new(0);
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

fn cur_ctx() -> Option<ModelCtx> {
    MODEL.try_with(|m| m.borrow().clone()).ok().flatten()
}

fn active_ctx() -> Option<ModelCtx> {
    if EXPLORATIONS.load(StdOrdering::Relaxed) == 0 {
        None
    } else {
        cur_ctx()
    }
}

/// Facade shim entry: declare the op and park until the scheduler grants
/// the step. No-op outside a model thread.
#[inline]
pub fn shim_access(addr: usize, acc: Acc, name: &'static str) {
    if EXPLORATIONS.load(StdOrdering::Relaxed) == 0 {
        return;
    }
    if let Some(ctx) = cur_ctx() {
        ctx.sched.yield_op(ctx.tid, DeclaredOp { addr, acc, name });
    }
}

/// True when the calling thread is a model thread of a live exploration.
pub fn in_model() -> bool {
    active_ctx().is_some()
}

/// True once the current execution is being torn down (deadlock/livelock
/// detected); unbounded wait loops must break out.
pub fn aborting() -> bool {
    match active_ctx() {
        Some(ctx) => ctx.sched.lock().abort,
        None => false,
    }
}

/// Model-aware blocking: parks the model thread until another thread writes
/// `addr`. Outside a model run this is just a scheduler yield.
pub fn block_hint(addr: usize) {
    match active_ctx() {
        Some(ctx) => ctx.sched.block_addr(ctx.tid, addr),
        None => std::thread::yield_now(),
    }
}

/// What the caller of a reclaim funnel must do with the memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimAction {
    /// Deallocate for real (no exploration running).
    Free,
    /// Run the destructor in place but leak the allocation: the shadow heap
    /// keeps the address poisoned so later accesses report use-after-reclaim
    /// instead of crashing or aliasing a reused block.
    Quarantine,
}

pub fn hook_alloc(ptr: usize, len: usize) {
    let Some(ctx) = active_ctx() else { return };
    let mut st = ctx.sched.lock();
    let serial = st.shadow.insert(ptr, len);
    let step = st.step as u32;
    st.trace.push(TraceEv {
        step,
        tid: ctx.tid as u32,
        acc: Acc::Alloc,
        name: "alloc",
        addr: ptr,
        obj: Some((serial, 0)),
    });
}

pub fn hook_retire(ptr: usize) {
    let Some(ctx) = active_ctx() else { return };
    let mut st = ctx.sched.lock();
    let step = st.step;
    match st.shadow.retire(ptr, step) {
        Ok(Some(_)) => ctx
            .sched
            .push_event(&mut st, ctx.tid, Acc::Retire, "retire", ptr),
        Ok(None) => {}
        Err(msg) => {
            ctx.sched
                .push_event(&mut st, ctx.tid, Acc::Retire, "retire", ptr);
            ctx.sched
                .record_failure(&mut st, format!("T{} retire: {msg}", ctx.tid));
        }
    }
}

pub fn hook_unretire(ptr: usize) {
    let Some(ctx) = active_ctx() else { return };
    let mut st = ctx.sched.lock();
    if st.shadow.unretire(ptr).is_some() {
        ctx.sched
            .push_event(&mut st, ctx.tid, Acc::Unretire, "unretire", ptr);
    }
}

pub fn hook_reclaim(ptr: usize) -> ReclaimAction {
    let Some(ctx) = active_ctx() else {
        return ReclaimAction::Free;
    };
    let mut st = ctx.sched.lock();
    let step = st.step;
    match st.shadow.reclaim(ptr, step) {
        Ok(Some(_)) => ctx
            .sched
            .push_event(&mut st, ctx.tid, Acc::Reclaim, "reclaim", ptr),
        Ok(None) => {}
        Err(msg) => {
            ctx.sched
                .push_event(&mut st, ctx.tid, Acc::Reclaim, "reclaim", ptr);
            ctx.sched
                .record_failure(&mut st, format!("T{} reclaim: {msg}", ctx.tid));
        }
    }
    // Never free for real inside an exploration: address reuse would mask
    // use-after-reclaim and make a detected one physically unsafe to ride
    // through.
    ReclaimAction::Quarantine
}

// ---------------------------------------------------------------------------
// Model threads: spawn/join
// ---------------------------------------------------------------------------

/// Handle to a model thread created with [`spawn`].
pub struct JoinHandle {
    sched: Arc<Sched>,
    tid: usize,
}

impl JoinHandle {
    /// Blocks the calling model thread until the target finishes. A panic in
    /// the target is already recorded as a checker failure, so this returns
    /// `()` rather than a `Result`.
    pub fn join(self) {
        let ctx = cur_ctx().expect("chk::JoinHandle::join called outside a model thread");
        self.sched.join_model(ctx.tid, self.tid);
    }

    /// Model thread id (T1, T2, ... in traces; T0 is the explore body).
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// Spawns a model thread. Must be called from inside an [`explore`] body;
/// threads spawned with `std::thread::spawn` would run unscheduled.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    let ctx = cur_ctx().expect("chk::spawn called outside an exploration body");
    let tid = ctx.sched.spawn_model(Box::new(f));
    JoinHandle {
        sched: ctx.sched,
        tid,
    }
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn model_main<F: FnOnce()>(sched: Arc<Sched>, tid: usize, f: F) {
    {
        let mut st = sched.lock();
        while st.active != tid && !st.abort {
            st = sched.wait(st);
        }
    }
    MODEL.with(|m| {
        *m.borrow_mut() = Some(ModelCtx {
            sched: Arc::clone(&sched),
            tid,
        })
    });
    let r = catch_unwind(AssertUnwindSafe(f));
    // Release this thread's registry tid *inside* the scheduled region so
    // scheme exit-cleanups (handover drains etc.) are themselves checked
    // steps, not an unscheduled TLS-destructor race.
    let r2 = catch_unwind(crate::registry::retire_thread);
    MODEL.with(|m| *m.borrow_mut() = None);
    let msg = r.err().or_else(|| r2.err()).map(panic_msg);
    sched.thread_finished(tid, msg);
}

// ---------------------------------------------------------------------------
// Controller + explorers
// ---------------------------------------------------------------------------

struct RunOutcome {
    failure: Option<Box<Failure>>,
    steps: Vec<StepInfo>,
    trace: Vec<TraceEv>,
    diverged: bool,
}

fn run_schedule<F>(
    cfg: &Config,
    body: &Arc<F>,
    deviations: Vec<Deviation>,
    rng: Option<XorShift64>,
) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Arc::new(Sched::new(cfg, deviations, rng));
    {
        let mut st = sched.lock();
        st.threads.push(ThreadSt::starting());
        st.handles.push(None);
    }
    let s2 = Arc::clone(&sched);
    let b2 = Arc::clone(body);
    let main = std::thread::Builder::new()
        .name("orc-check-t0".into())
        .spawn(move || model_main(s2, 0, move || b2()))
        .expect("orc-check: OS thread spawn failed");
    {
        // Kick: commit T0's Start pseudo-op, then wait for quiescence.
        let mut st = sched.lock();
        sched.schedule_next(&mut st);
        while !st.done && !st.abort {
            st = sched.wait(st);
        }
    }
    let _ = main.join();
    loop {
        // Under abort a model thread may still be mid-spawn; drain until
        // every handle has been joined.
        let handles: Vec<_> = sched
            .lock()
            .handles
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let mut st = sched.lock();
    if st.failure.is_none() && !st.abort && cfg.check_leaks {
        if let Some(msg) = st.shadow.leak_report() {
            let f = Failure {
                message: msg,
                step: st.step,
                schedule: Vec::new(),
                trace: Vec::new(),
                schedules_explored: 0,
            };
            st.failure = Some(f);
        }
    }
    let mut failure = st.failure.take().map(Box::new);
    if let Some(f) = failure.as_mut() {
        f.trace = std::mem::take(&mut st.trace);
        f.schedule = st
            .deviations
            .iter()
            .chain(st.recorded.iter())
            .map(|d| (d.step, d.tid))
            .collect();
        RunOutcome {
            failure,
            steps: std::mem::take(&mut st.steps),
            trace: Vec::new(),
            diverged: st.diverged,
        }
    } else {
        RunOutcome {
            failure: None,
            steps: std::mem::take(&mut st.steps),
            trace: std::mem::take(&mut st.trace),
            diverged: st.diverged,
        }
    }
}

/// Addresses accessed by ≥ 2 threads with ≥ 1 write in this trace: the only
/// places a preemption can change the outcome (private ops commute).
fn conflict_addrs(trace: &[TraceEv]) -> HashSet<usize> {
    let mut acc: HashMap<usize, (HashSet<u32>, bool)> = HashMap::new();
    for ev in trace {
        if ev.acc.is_mem() {
            let e = acc.entry(ev.addr).or_default();
            e.0.insert(ev.tid);
            e.1 |= ev.acc.is_write();
        }
    }
    acc.into_iter()
        .filter(|(_, (tids, w))| tids.len() >= 2 && *w)
        .map(|(a, _)| a)
        .collect()
}

struct Pending {
    devs: Vec<Deviation>,
    preemptions: usize,
}

fn explore_exhaustive<F>(cfg: &Config, body: &Arc<F>) -> Result<Report, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let bound = cfg.preemption_bound;
    let mut buckets: Vec<Vec<Pending>> = (0..=bound).map(|_| Vec::new()).collect();
    buckets[0].push(Pending {
        devs: Vec::new(),
        preemptions: 0,
    });
    let mut schedules = 0usize;
    let mut steps_total = 0u64;
    let mut diverged = 0usize;
    let mut truncated = false;
    'buckets: for p in 0..=bound {
        while let Some(cand) = buckets[p].pop() {
            if schedules >= cfg.max_schedules {
                truncated = true;
                break 'buckets;
            }
            schedules += 1;
            let out = run_schedule(cfg, body, cand.devs.clone(), None);
            steps_total += out.steps.len() as u64;
            let dbg_every = std::env::var("ORC_CHECK_DEBUG")
                .ok()
                .map(|v| v.parse::<usize>().unwrap_or(100));
            if dbg_every.is_some_and(|n| schedules % n.max(1) == 0) {
                let frontier: usize = buckets.iter().map(Vec::len).sum();
                eprintln!(
                    "[chk] sched={} steps_avg={} this_len={} devs={} frontier={} diverged={}",
                    schedules,
                    steps_total / schedules as u64,
                    out.steps.len(),
                    cand.devs.len(),
                    frontier,
                    diverged
                );
            }
            if out.diverged {
                diverged += 1;
            }
            if let Some(mut f) = out.failure {
                f.schedules_explored = schedules;
                return Err(f);
            }
            // Children: deviate at steps strictly past this schedule's last
            // deviation (earlier alternatives are this node's siblings,
            // generated by its parent).
            let start = cand.devs.last().map(|d| d.step + 1).unwrap_or(0);
            let conflicts = conflict_addrs(&out.trace);
            for (s, info) in out.steps.iter().enumerate().skip(start) {
                if info.cands.len() < 2 || info.chosen == NONE {
                    continue;
                }
                let Some(chosen) = info.cands.iter().find(|c| c.tid == info.chosen) else {
                    continue;
                };
                let eligible = info.free || (chosen.mem && conflicts.contains(&chosen.addr));
                if !eligible {
                    continue;
                }
                let cost = usize::from(!info.free);
                if cand.preemptions + cost > bound {
                    continue;
                }
                let mut sib_sleep = info.sleeping.clone();
                sib_sleep.push(SleepEntry {
                    tid: chosen.tid,
                    key: chosen.key,
                    write: chosen.write,
                });
                for alt in info.cands.iter().filter(|c| c.tid != info.chosen) {
                    let asleep = cfg.sleep_sets && info.sleeping.iter().any(|e| e.tid == alt.tid);
                    if !asleep && !alt.spun {
                        let mut devs = cand.devs.clone();
                        devs.push(Deviation {
                            step: s,
                            tid: alt.tid,
                            sleep: sib_sleep.clone(),
                        });
                        buckets[cand.preemptions + cost].push(Pending {
                            devs,
                            preemptions: cand.preemptions + cost,
                        });
                    }
                    sib_sleep.push(SleepEntry {
                        tid: alt.tid,
                        key: alt.key,
                        write: alt.write,
                    });
                }
            }
        }
    }
    Ok(Report {
        schedules,
        steps: steps_total,
        diverged,
        truncated,
        preemption_bound: bound,
    })
}

fn explore_random<F>(
    cfg: &Config,
    body: &Arc<F>,
    schedules: usize,
    seed: u64,
) -> Result<Report, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let mut steps_total = 0u64;
    let mut diverged = 0usize;
    for i in 0..schedules {
        let rng =
            XorShift64::new(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let out = run_schedule(cfg, body, Vec::new(), Some(rng));
        steps_total += out.steps.len() as u64;
        if out.diverged {
            diverged += 1;
        }
        if let Some(mut f) = out.failure {
            f.schedules_explored = i + 1;
            return Err(f);
        }
    }
    Ok(Report {
        schedules,
        steps: steps_total,
        diverged,
        truncated: false,
        preemption_bound: 0,
    })
}

/// Runs `body` under every schedule the configured mode generates. Returns
/// the exploration summary, or the first property violation with a
/// deterministic, replayable trace.
///
/// `body` is re-invoked once per schedule; it must be self-contained
/// (construct its own shared state, spawn model threads with [`spawn`],
/// join them) and deterministic apart from scheduling. Explorations are
/// serialized process-wide.
pub fn explore<F>(cfg: Config, body: F) -> Result<Report, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct ActiveGuard;
    impl Drop for ActiveGuard {
        fn drop(&mut self) {
            EXPLORATIONS.fetch_sub(1, StdOrdering::SeqCst);
        }
    }
    EXPLORATIONS.fetch_add(1, StdOrdering::SeqCst);
    let _active = ActiveGuard;
    let body = Arc::new(body);
    match cfg.mode {
        CheckMode::Exhaustive => explore_exhaustive(&cfg, &body),
        CheckMode::Random { schedules, seed } => explore_random(&cfg, &body, schedules, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::{AtomicUsize, Ordering};

    fn small(bound: usize) -> Config {
        Config {
            preemption_bound: bound,
            check_leaks: false,
            ..Config::default()
        }
    }

    #[test]
    fn finds_lost_update() {
        // Non-atomic increment (load; store) by two threads: some schedule
        // loses an update and the final assert panics.
        let err = explore(small(1), || {
            let x = Arc::new(AtomicUsize::new(0));
            let hs: Vec<JoinHandle> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    spawn(move || {
                        let v = x.load(Ordering::SeqCst);
                        x.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("exploration must find the lost update");
        assert!(err.message.contains("lost update"), "got: {}", err.message);
        assert!(!err.trace.is_empty());
    }

    #[test]
    fn atomic_rmw_has_no_lost_update() {
        let report = explore(small(2), || {
            let x = Arc::new(AtomicUsize::new(0));
            let hs: Vec<JoinHandle> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    spawn(move || {
                        x.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2);
        })
        .expect("fetch_add increments commute");
        assert!(report.schedules >= 2, "expected branching, got {report:?}");
        assert!(!report.truncated);
    }

    #[test]
    fn failing_schedule_is_deterministic() {
        let run = || {
            explore(small(1), || {
                let x = Arc::new(AtomicUsize::new(0));
                let x2 = Arc::clone(&x);
                let h = spawn(move || {
                    let v = x2.load(Ordering::SeqCst);
                    x2.store(v + 1, Ordering::SeqCst);
                });
                let v = x.load(Ordering::SeqCst);
                x.store(v + 1, Ordering::SeqCst);
                h.join();
                assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
            })
            .expect_err("must fail")
        };
        let a = run();
        let b = run();
        assert_eq!(a.schedule, b.schedule, "replay schedule must be stable");
        assert_eq!(a.schedules_explored, b.schedules_explored);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn shadow_heap_reports_use_after_reclaim() {
        let err = explore(small(0), || {
            let cell: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(7)));
            let addr = cell as *const AtomicUsize as usize;
            hook_alloc(addr, std::mem::size_of::<AtomicUsize>());
            assert_eq!(cell.load(Ordering::SeqCst), 7); // live: fine
            hook_retire(addr);
            assert_eq!(hook_reclaim(addr), ReclaimAction::Quarantine);
            cell.load(Ordering::SeqCst); // use-after-reclaim
        })
        .expect_err("UAF must be detected");
        assert!(
            err.message.contains("use-after-reclaim"),
            "got: {}",
            err.message
        );
    }

    #[test]
    fn shadow_heap_reports_double_retire_and_leak() {
        let err = explore(small(0), || {
            let cell: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));
            let addr = cell as *const AtomicUsize as usize;
            hook_alloc(addr, 8);
            hook_retire(addr);
            hook_retire(addr);
        })
        .expect_err("double retire must be detected");
        assert!(
            err.message.contains("double retire"),
            "got: {}",
            err.message
        );

        let cfg = Config {
            preemption_bound: 0,
            ..Config::default()
        };
        let err = explore(cfg, || {
            let cell: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));
            hook_alloc(cell as *const AtomicUsize as usize, 8);
            // never reclaimed -> leak at quiescence
        })
        .expect_err("leak must be detected");
        assert!(err.message.contains("leak"), "got: {}", err.message);
    }

    #[test]
    fn block_hint_parks_until_release_write() {
        let report = explore(small(1), || {
            let gate = Arc::new(AtomicUsize::new(0));
            let g2 = Arc::clone(&gate);
            let h = spawn(move || {
                while g2.load(Ordering::SeqCst) == 0 {
                    block_hint(g2.as_ptr() as usize);
                }
            });
            gate.store(1, Ordering::SeqCst);
            h.join();
        })
        .expect("gate handshake must quiesce under every schedule");
        assert!(report.schedules >= 1);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let err = explore(small(0), || {
            let gate = Arc::new(AtomicUsize::new(0));
            // Nobody will ever write the gate: the model thread blocks
            // forever and the scheduler must report a deadlock.
            let g2 = Arc::clone(&gate);
            let h = spawn(move || {
                while g2.load(Ordering::SeqCst) == 0 && !aborting() {
                    block_hint(g2.as_ptr() as usize);
                }
            });
            h.join();
        })
        .expect_err("deadlock must be detected");
        assert!(err.message.contains("deadlock"), "got: {}", err.message);
    }

    #[test]
    fn random_mode_is_reproducible() {
        let cfg = Config {
            mode: CheckMode::Random {
                schedules: 40,
                seed: 42,
            },
            check_leaks: false,
            ..Config::default()
        };
        let run = |cfg: Config| {
            explore(cfg, || {
                let x = Arc::new(AtomicUsize::new(0));
                let x2 = Arc::clone(&x);
                let h = spawn(move || {
                    let v = x2.load(Ordering::SeqCst);
                    x2.store(v + 1, Ordering::SeqCst);
                });
                let v = x.load(Ordering::SeqCst);
                x.store(v + 1, Ordering::SeqCst);
                h.join();
                assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
            })
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        match (a, b) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra.schedules, rb.schedules),
            (Err(fa), Err(fb)) => {
                assert_eq!(fa.schedule, fb.schedule);
                assert_eq!(fa.schedules_explored, fb.schedules_explored);
            }
            _ => panic!("random mode diverged between identical seeds"),
        }
    }
}
