//! orc-trace: lock-free reclamation event tracing, a flight recorder and
//! a Chrome-trace exporter.
//!
//! PR 2's orc-stats answers "how much" (counts, histograms); this module
//! answers "when" and "in what order". Every scheme and the OrcGC domain
//! record timestamped lifecycle events — [`EventKind::Retire`],
//! [`EventKind::ReclaimBatch`], scan brackets, protect retries, handovers,
//! epoch advances, OrcGC counter transitions — into **per-tid,
//! cache-line-padded ring buffers** with fixed-size slots and wrapping
//! overwrite, so a crashing torture battery can be reconstructed from the
//! last few thousand events per thread (the flight recorder) and a healthy
//! run can be opened as a per-tid timeline in Perfetto
//! ([`export_chrome`]).
//!
//! # Ring protocol (single writer, wait-free; torn-read-proof snapshots)
//!
//! Each registry tid owns one ring; only that thread writes it, so writes
//! need no RMW at all — the hot path is five relaxed stores plus one
//! release store and a monotonic-clock read. Readers ([`snapshot`]) may
//! run concurrently from any thread: each slot carries a seqlock-style
//! stamp (`u64::MAX` while the writer is mid-slot, else `event index + 1`)
//! written around the payload with release/acquire fences, so a reader
//! either observes a fully-written event or rejects the slot — never a
//! torn mix of two events.
//!
//! # Timestamps
//!
//! All events are stamped with nanoseconds since the first trace call in
//! the process (a latched `Instant` epoch — monotonic and cross-thread
//! comparable, unlike `SystemTime`). [`now_ns`] never returns 0, so a 0
//! retire-stamp in a header always means "never stamped".
//!
//! # Overhead contract
//!
//! `ORC_TRACE=0` (or `false`/`off`) disables tracing for the life of the
//! process, latched exactly like orc-stats' `ORC_STATS`: after the first
//! call, every [`trace_event!`] site is one relaxed load and a
//! predicted-not-taken branch, and the ring buffers are **never
//! allocated** ([`is_materialized`] stays false). Tracing is on by
//! default; `ORC_TRACE_CAP` sizes each per-tid ring (rounded up to a
//! power of two, default 1024 slots).

// Deliberately NOT the `crate::atomics` facade — the same exemption as
// track.rs: trace slots are observation, not synchronization, and every
// reclamation hot path touches them. Routing them through the orc-check
// shims would make each recorded event several scheduling points on
// shared addresses, exploding the model checker's branch space with
// interleavings no protocol property depends on (and tracing must keep
// working, invisibly, while an exploration runs).
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry;
use crate::CachePadded;

/// Default per-tid ring capacity (slots) when `ORC_TRACE_CAP` is unset.
pub const DEFAULT_CAP: usize = 1024;
const MIN_CAP: usize = 8;
const MAX_CAP: usize = 1 << 20;

/// Stamp value marking a slot whose writer is mid-update.
const WRITING: u64 = u64::MAX;

/// How many merged events the flight recorder prints on panic.
pub const FLIGHT_TAIL: usize = 64;

/// One kind of traced reclamation lifecycle event. The payload words `a`
/// and `b` are kind-specific (documented per variant); unused words are 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A tracked object was allocated. `a` = object address, `b` = bytes.
    Alloc = 0,
    /// An object entered a scheme's retired set. `a` = object address,
    /// `b` = global retire sequence number ([`next_retire_seq`]).
    Retire = 1,
    /// One reclamation pass freed `a` objects together.
    ReclaimBatch = 2,
    /// A scan / liberate / collect / drain pass began.
    ScanBegin = 3,
    /// The matching pass ended; `a` = objects freed by it.
    ScanEnd = 4,
    /// A protect loop's validation failed and the loop retried.
    /// `a` = the address being protected.
    ProtectRetry = 5,
    /// An object was parked into (or displaced through) a handover /
    /// handoff slot (PTP, PTB, OrcGC). `a` = object address.
    Handover = 6,
    /// A global epoch / era advanced (EBR `try_advance`, HE era clock).
    /// `a` = the new epoch/era value.
    EpochAdvance = 7,
    /// An OrcGC `_orc` word was observed zero-and-unclaimed — the
    /// precondition for a retire claim. `a` = object address.
    OrcZero = 8,
    /// An OrcGC retire claim succeeded (BRETIRED set, object entered the
    /// domain's retired accounting). `a` = object address, `b` = global
    /// retire sequence number.
    BRetired = 9,
    /// An OrcGC retire claim was relinquished (the counter moved after
    /// the claim). `a` = object address.
    Unretire = 10,
}

const KINDS: u32 = 11;

impl EventKind {
    fn from_u32(v: u32) -> Option<Self> {
        if v >= KINDS {
            return None;
        }
        // SAFETY-free decode: match keeps the compiler honest about the
        // discriminants instead of a transmute.
        Some(match v {
            0 => Self::Alloc,
            1 => Self::Retire,
            2 => Self::ReclaimBatch,
            3 => Self::ScanBegin,
            4 => Self::ScanEnd,
            5 => Self::ProtectRetry,
            6 => Self::Handover,
            7 => Self::EpochAdvance,
            8 => Self::OrcZero,
            9 => Self::BRetired,
            _ => Self::Unretire,
        })
    }

    /// Short stable name (flight-recorder lines, Chrome event names).
    pub fn name(self) -> &'static str {
        match self {
            Self::Alloc => "alloc",
            Self::Retire => "retire",
            Self::ReclaimBatch => "reclaim_batch",
            Self::ScanBegin => "scan_begin",
            Self::ScanEnd => "scan_end",
            Self::ProtectRetry => "protect_retry",
            Self::Handover => "handover",
            Self::EpochAdvance => "epoch_advance",
            Self::OrcZero => "orc_zero",
            Self::BRetired => "b_retired",
            Self::Unretire => "unretire",
        }
    }
}

/// One decoded event, as returned by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (see module docs).
    pub t_ns: u64,
    /// Registry tid of the recording thread.
    pub tid: u32,
    /// Per-tid event index (0-based, monotone; gaps mean overwrite).
    pub seq: u64,
    /// Event kind.
    pub kind: EventKind,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

/// One ring slot. `stamp` is the seqlock word: `WRITING` while the owner
/// is mid-update, else `event index + 1` (0 = never written). The payload
/// words are themselves atomics so concurrent readers are race-free in
/// the language-semantics sense; the stamp protocol rejects torn reads.
struct Slot {
    stamp: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            stamp: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One tid's ring. Only the owning thread advances `head` or writes
/// slots; any thread may read.
struct Ring {
    /// Events ever recorded by this tid (not capped by the ring size).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }
}

struct TraceBuf {
    rings: Box<[CachePadded<Ring>]>,
    mask: usize,
}

static BUF: OnceLock<TraceBuf> = OnceLock::new();

fn buf() -> &'static TraceBuf {
    BUF.get_or_init(|| {
        let cap = capacity();
        TraceBuf {
            rings: (0..registry::max_threads())
                .map(|_| CachePadded::new(Ring::new(cap)))
                .collect(),
            mask: cap - 1,
        }
    })
}

/// Per-tid ring capacity in slots: `ORC_TRACE_CAP` rounded up to a power
/// of two and clamped to `[8, 2^20]`; 1024 when unset or unparsable.
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let raw = std::env::var("ORC_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP);
        raw.clamp(MIN_CAP, MAX_CAP).next_power_of_two()
    })
}

/// True once any event has been recorded (the rings exist). Stays false
/// for the whole process under `ORC_TRACE=0` — the structural form of the
/// "tracing off is free" contract, testable without timing.
pub fn is_materialized() -> bool {
    BUF.get().is_some()
}

// Kill-switch state: 0 = unread, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is on (`ORC_TRACE` unset or not one of
/// `0`/`false`/`off`). Latched on first call; a relaxed load afterwards.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = parse_enabled(std::env::var("ORC_TRACE").ok().as_deref());
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// `ORC_TRACE` parsing: only explicit `0`, `false` or `off` disable —
/// same grammar as `ORC_STATS`.
fn parse_enabled(v: Option<&str>) -> bool {
    !matches!(
        v.map(str::trim),
        Some("0") | Some("false") | Some("off") | Some("FALSE") | Some("OFF")
    )
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (first call). Monotonic,
/// cross-thread comparable, never 0.
#[inline]
pub fn now_ns() -> u64 {
    (EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64).max(1)
}

static RETIRE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Next value of the process-wide retire sequence — the key that ties a
/// `Retire{addr,seq}` event to the reclaim that later frees the object.
#[inline]
pub fn next_retire_seq() -> u64 {
    RETIRE_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Records one event on the calling thread's ring (resolves the registry
/// tid itself; hot paths that already hold a tid use [`record_at`]).
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    if enabled() {
        record_at(registry::tid(), kind, a, b);
    }
}

/// Records one event on `tid`'s ring. `tid` must be the **calling
/// thread's** registry tid — the single-writer ring protocol depends on
/// it (a wrong tid can tear another thread's in-flight slot, though it
/// cannot corrupt anything beyond the trace itself).
#[inline]
pub fn record_at(tid: usize, kind: EventKind, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let buf = buf();
    let Some(ring) = buf.rings.get(tid) else {
        return;
    };
    let i = ring.head.load(Ordering::Relaxed);
    let slot = &ring.slots[(i as usize) & buf.mask];
    // Seqlock write: mark the slot torn, fence, write the payload, then
    // publish the new stamp. Readers pair the fence with an acquire fence
    // after their payload loads, so payload-visible implies torn-visible.
    slot.stamp.store(WRITING, Ordering::Relaxed);
    fence(Ordering::Release);
    slot.t_ns.store(now_ns(), Ordering::Relaxed);
    slot.kind.store(kind as u32 as u64, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.stamp.store(i + 1, Ordering::Release);
    ring.head.store(i + 1, Ordering::Release);
}

/// Total events ever recorded, across all tids.
pub fn events_recorded() -> u64 {
    let Some(buf) = BUF.get() else { return 0 };
    buf.rings
        .iter()
        .map(|r| r.head.load(Ordering::Relaxed))
        .sum()
}

/// Events lost to ring overwrite (per-tid `recorded − capacity`, summed).
/// Surfaced in `Measurement::json()` so a truncated trace is visible.
pub fn events_dropped() -> u64 {
    let Some(buf) = BUF.get() else { return 0 };
    let cap = (buf.mask + 1) as u64;
    buf.rings
        .iter()
        .map(|r| r.head.load(Ordering::Relaxed).saturating_sub(cap))
        .sum()
}

/// Merges every per-tid ring into one globally timestamp-ordered event
/// list (ties broken by tid, then per-tid seq).
///
/// Safe to call while writers are running: slots a writer is touching (or
/// overwrites mid-read) are skipped, so a live snapshot is the *consistent
/// subset* of the newest ≤ capacity events per tid.
pub fn snapshot() -> Vec<TraceEvent> {
    let Some(buf) = BUF.get() else {
        return Vec::new();
    };
    let cap = (buf.mask + 1) as u64;
    let mut out = Vec::new();
    for (tid, ring) in buf.rings.iter().enumerate() {
        let head = ring.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(cap);
        for i in lo..head {
            let slot = &ring.slots[(i as usize) & buf.mask];
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 != i + 1 {
                // Mid-write, or already overwritten by a newer event
                // (which lies outside the head we latched) — skip.
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != s1 {
                continue; // torn: the writer lapped us mid-read
            }
            let Some(kind) = EventKind::from_u32(kind as u32) else {
                continue;
            };
            out.push(TraceEvent {
                t_ns,
                tid: tid as u32,
                seq: i,
                kind,
                a,
                b,
            });
        }
    }
    out.sort_by_key(|e| (e.t_ns, e.tid, e.seq));
    out
}

/// The last `n` events of [`snapshot`] (the merged, ordered tail).
pub fn snapshot_tail(n: usize) -> Vec<TraceEvent> {
    let mut evs = snapshot();
    if evs.len() > n {
        evs.drain(..evs.len() - n);
    }
    evs
}

/// Human-readable flight-recorder tail: the last `n` merged events, one
/// line each, plus a header with totals. Empty string when nothing was
/// recorded (or tracing is off).
pub fn format_tail(n: usize) -> String {
    let evs = snapshot_tail(n);
    if evs.is_empty() {
        return String::new();
    }
    let mut s = format!(
        "== orc-trace flight recorder: last {} of {} events ({} overwritten) ==\n",
        evs.len(),
        events_recorded(),
        events_dropped(),
    );
    for e in &evs {
        s.push_str(&format!(
            "  [{:>14.6}ms tid {:>3}] {:<13} a=0x{:x} b={}\n",
            e.t_ns as f64 / 1e6,
            e.tid,
            e.kind.name(),
            e.a,
            e.b,
        ));
    }
    s
}

// Flight-recorder state. DUMPING makes the dump single-shot per panic
// cascade: a second panic raised *while* dumping (e.g. from a destructor
// in a reclaim callback) sees the flag and skips straight to the chained
// hook instead of re-entering the recorder.
static HOOK: OnceLock<()> = OnceLock::new();
static DUMPING: AtomicBool = AtomicBool::new(false);
static DUMPS: AtomicU64 = AtomicU64::new(0);

/// Number of flight-recorder dumps performed (testing / post-mortems).
pub fn flight_dump_count() -> u64 {
    DUMPS.load(Ordering::Relaxed)
}

/// Installs the flight-recorder panic hook: on panic, the merged tail of
/// all rings ([`FLIGHT_TAIL`] events) is printed to stderr before the
/// previously-installed hook runs.
///
/// Idempotent — the hook is registered exactly once per process no matter
/// how many batteries/tests call this — and re-entrancy safe: a panic
/// raised inside the dump itself (or inside a reclaim callback while
/// dumping) cannot deadlock or double-dump.
pub fn install_flight_recorder() {
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !DUMPING.swap(true, Ordering::SeqCst) {
                let tail = format_tail(FLIGHT_TAIL);
                if !tail.is_empty() {
                    eprint!("{tail}");
                }
                DUMPS.fetch_add(1, Ordering::Relaxed);
                DUMPING.store(false, Ordering::SeqCst);
            }
            prev(info);
        }));
    });
}

/// Writes the merged trace as Chrome trace-event JSON (the format
/// Perfetto and `chrome://tracing` load) to `path`. See README for the
/// open-in-Perfetto quick-start.
pub fn export_chrome(path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(chrome_json().as_bytes())?;
    w.flush()
}

/// The Chrome trace-event JSON document for the current [`snapshot`].
///
/// Scan passes become `B`/`E` duration events on the recording tid's
/// track; everything else becomes a thread-scoped instant (`ph:"i"`).
/// Hand-rolled JSON — the workspace builds with zero dependencies.
pub fn chrome_json() -> String {
    let evs = snapshot();
    let mut tids: Vec<u32> = evs.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &mut String, item: String| {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
        s.push_str(&item);
    };
    push(
        &mut s,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"orc-trace\"}}"
            .to_string(),
    );
    for tid in &tids {
        push(
            &mut s,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"tid {tid}\"}}}}"
            ),
        );
    }
    for e in &evs {
        let ts = e.t_ns as f64 / 1e3; // trace-event ts unit is µs
        let item = match e.kind {
            EventKind::ScanBegin => format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"name\":\"scan\"}}",
                e.tid
            ),
            EventKind::ScanEnd => format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"name\":\"scan\",\
                 \"args\":{{\"freed\":{}}}}}",
                e.tid, e.a
            ),
            _ => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\
                 \"name\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                e.tid,
                e.kind.name(),
                e.a,
                e.b
            ),
        };
        push(&mut s, item);
    }
    s.push_str("]}");
    s
}

/// Minimal JSON well-formedness check (full grammar: objects, arrays,
/// strings with escapes, numbers, literals). The workspace has no JSON
/// dependency, so CI smoke tests and the `orctrace` example use this to
/// validate exporter output before shipping it to Perfetto.
pub fn json_wellformed(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if b.get(*i) != Some(&b'"') {
            return false;
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'u') => {
                            if *i + 4 >= b.len()
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            *i += 5;
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        _ => return false,
                    }
                }
                0x00..=0x1f => return false,
                _ => *i += 1,
            }
        }
        false
    }
    fn number(b: &[u8], i: &mut usize) -> bool {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
            *i > s
        };
        if !digits(b, i) {
            *i = start;
            return false;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if !digits(b, i) {
                return false;
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            if !digits(b, i) {
                return false;
            }
        }
        true
    }
    fn value(b: &[u8], i: &mut usize, depth: usize) -> bool {
        if depth > 64 {
            return false;
        }
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return true;
                }
                loop {
                    ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i, depth + 1) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i, depth + 1) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => {
                if b[*i..].starts_with(b"true") {
                    *i += 4;
                    true
                } else {
                    false
                }
            }
            Some(b'f') => {
                if b[*i..].starts_with(b"false") {
                    *i += 5;
                    true
                } else {
                    false
                }
            }
            Some(b'n') => {
                if b[*i..].starts_with(b"null") {
                    *i += 4;
                    true
                } else {
                    false
                }
            }
            _ => number(b, i),
        }
    }
    if !value(b, &mut i, 0) {
        return false;
    }
    ws(b, &mut i);
    i == b.len()
}

/// Records one trace event from the calling thread (tid resolved
/// internally). Compiles to a latched-flag check first: with `ORC_TRACE=0`
/// the arguments are never evaluated and the rings are never touched.
///
/// ```
/// use orc_util::{trace, trace_event};
/// trace_event!(trace::EventKind::EpochAdvance, 42u64);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($kind:expr) => {
        $crate::trace_event!($kind, 0u64, 0u64)
    };
    ($kind:expr, $a:expr) => {
        $crate::trace_event!($kind, $a, 0u64)
    };
    ($kind:expr, $a:expr, $b:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::record($kind, $a as u64, $b as u64);
        }
    };
}

/// [`trace_event!`] for hot paths that already hold the caller's registry
/// tid (skips the thread-local lookup).
#[macro_export]
macro_rules! trace_event_at {
    ($tid:expr, $kind:expr) => {
        $crate::trace_event_at!($tid, $kind, 0u64, 0u64)
    };
    ($tid:expr, $kind:expr, $a:expr) => {
        $crate::trace_event_at!($tid, $kind, $a, 0u64)
    };
    ($tid:expr, $kind:expr, $a:expr, $b:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::record_at($tid, $kind, $a as u64, $b as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_enabled_defaults_on() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("1")));
        assert!(parse_enabled(Some("yes")));
        assert!(!parse_enabled(Some("0")));
        assert!(!parse_enabled(Some(" 0 ")));
        assert!(!parse_enabled(Some("false")));
        assert!(!parse_enabled(Some("OFF")));
    }

    #[test]
    fn kind_roundtrip() {
        for v in 0..KINDS {
            let k = EventKind::from_u32(v).unwrap();
            assert_eq!(k as u32, v);
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u32(KINDS), None);
    }

    #[test]
    fn retire_seq_is_monotone() {
        let a = next_retire_seq();
        let b = next_retire_seq();
        assert!(b > a);
    }

    #[test]
    fn now_ns_is_monotone_and_nonzero() {
        let a = now_ns();
        let b = now_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(json_wellformed("{}"));
        assert!(json_wellformed(
            "[1,2.5,-3e2,\"a\\n\\u00ff\",true,false,null]"
        ));
        assert!(json_wellformed("{\"a\":[{\"b\":1}]} "));
        assert!(!json_wellformed(""));
        assert!(!json_wellformed("{"));
        assert!(!json_wellformed("[1,]"));
        assert!(!json_wellformed("{\"a\":}"));
        assert!(!json_wellformed("{} {}"));
        assert!(!json_wellformed("\"unterminated"));
        assert!(!json_wellformed("nul"));
        assert!(!json_wellformed("01x"));
    }
}
