//! The `ORC_TRACE=0` overhead guard (its own process: the switch latches
//! on first use, so it must be set before anything records).
//!
//! The guard is *structural*, not timing-based — this CI box has one
//! core, so microbenchmark assertions would flake. With the switch off,
//! a disabled `trace_event!` must (a) never materialize the ring
//! buffers (no allocation ever happens), (b) never evaluate its
//! argument expressions, and (c) leave every counter at zero. That is
//! exactly the "one latched branch, nothing else" fast path the macro
//! promises on hot paths.

use orc_util::trace::{self, EventKind};
use orc_util::{trace_event, trace_event_at};

#[test]
fn orc_trace_0_short_circuits_structurally() {
    std::env::set_var("ORC_TRACE", "0");
    assert!(!trace::enabled());

    let mut evaluations = 0u64;
    for i in 0..10_000u64 {
        trace_event!(EventKind::Retire, i, {
            evaluations += 1;
            i
        });
        trace_event_at!(3, EventKind::ScanBegin, {
            evaluations += 1;
            i
        });
        trace::record(EventKind::Alloc, i, 0);
        trace::record_at(5, EventKind::ScanEnd, i, 0);
    }

    assert_eq!(
        evaluations, 0,
        "disabled trace_event! must not evaluate its arguments"
    );
    assert!(
        !trace::is_materialized(),
        "disabled tracing must never allocate the rings"
    );
    assert_eq!(trace::events_recorded(), 0);
    assert_eq!(trace::events_dropped(), 0);
    assert!(trace::snapshot().is_empty());
    // The exporter still produces valid (empty) JSON so `ORC_TRACE_OUT`
    // pipelines do not break when tracing is switched off.
    assert!(trace::json_wellformed(&trace::chrome_json()));
}
