//! Integration tests for the orc-trace ring buffers.
//!
//! The rings are process-global and their capacity latches on first use,
//! so every test goes through [`setup`]: it pins `ORC_TRACE_CAP` before
//! the rings materialize and serializes the tests (the harness runs them
//! on concurrent threads, and several assert on the merged snapshot).
//! Each test writes through its own private tid (via `record_at`) and
//! filters the snapshot down to those tids, so the assertions stay
//! independent even though the rings are shared.

use orc_util::trace::{self, EventKind};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Ring capacity for this whole test process (must be a power of two).
const CAP: u64 = 32;

fn setup() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    // Latched on first record; a no-op afterwards. Setting it every time
    // keeps each test order-independent.
    std::env::set_var("ORC_TRACE_CAP", CAP.to_string());
    std::env::remove_var("ORC_TRACE");
    guard
}

fn tid_events(tid: u32) -> Vec<trace::TraceEvent> {
    trace::snapshot()
        .into_iter()
        .filter(|e| e.tid == tid)
        .collect()
}

#[test]
fn wraparound_keeps_the_newest_cap_events() {
    let _g = setup();
    const TID: usize = 100;
    let total = CAP + 10;
    let dropped_before = trace::events_dropped();
    for i in 0..total {
        trace::record_at(TID, EventKind::Alloc, i, 0);
    }
    let evs = tid_events(TID as u32);
    assert_eq!(
        evs.len() as u64,
        CAP,
        "a full ring yields exactly CAP events"
    );
    let mut payloads: Vec<u64> = evs.iter().map(|e| e.a).collect();
    payloads.sort_unstable();
    let expect: Vec<u64> = (total - CAP..total).collect();
    assert_eq!(
        payloads, expect,
        "overwrite discards the oldest, keeps newest"
    );
    assert_eq!(
        trace::events_dropped() - dropped_before,
        total - CAP,
        "every overwritten slot is counted as dropped"
    );
}

#[test]
fn concurrent_writers_never_tear_a_slot() {
    let _g = setup();
    // Four writer threads, each with a private ring; payloads carry the
    // invariant b == !a, which a torn read (a from one event, b from
    // another) would break. Snapshots run concurrently with the writers.
    const TIDS: [usize; 4] = [101, 102, 103, 104];
    const PER: u64 = 2_000;
    let writers: Vec<_> = TIDS
        .iter()
        .map(|&tid| {
            std::thread::spawn(move || {
                for i in 0..PER {
                    let a = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tid as u64;
                    trace::record_at(tid, EventKind::Retire, a, !a);
                }
            })
        })
        .collect();
    // Reader races the writers (bounded, not a spin loop — this box has
    // one core, so each snapshot mostly interleaves between quanta).
    for _ in 0..16 {
        for e in trace::snapshot() {
            if TIDS.contains(&(e.tid as usize)) {
                assert_eq!(e.b, !e.a, "torn slot: a={:#x} b={:#x}", e.a, e.b);
            }
        }
        std::thread::yield_now();
    }
    for w in writers {
        w.join().unwrap();
    }
    let mut seen = 0;
    for e in trace::snapshot() {
        if TIDS.contains(&(e.tid as usize)) {
            assert_eq!(e.b, !e.a, "torn slot after quiescence");
            seen += 1;
        }
    }
    assert_eq!(seen as u64, CAP * TIDS.len() as u64, "all rings full");
}

#[test]
fn merged_snapshot_is_timestamp_ordered() {
    let _g = setup();
    for i in 0..CAP {
        // Interleave two rings so the merge actually has to reorder.
        trace::record_at(110, EventKind::ScanBegin, i, 0);
        trace::record_at(111, EventKind::ScanEnd, i, 0);
    }
    let evs = trace::snapshot();
    assert!(!evs.is_empty());
    assert!(
        evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
        "snapshot must be sorted by timestamp"
    );
}

#[test]
fn chrome_export_is_wellformed_json() {
    let _g = setup();
    trace::record_at(120, EventKind::ScanBegin, 0, 0);
    trace::record_at(120, EventKind::ReclaimBatch, 3, 0);
    trace::record_at(120, EventKind::ScanEnd, 3, 0);
    trace::record_at(120, EventKind::Handover, 0xdead_beef, 0);
    let json = trace::chrome_json();
    assert!(trace::json_wellformed(&json), "exporter output: {json}");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"scan\""), "ScanBegin/End become B/E pairs");
}

#[test]
fn format_tail_mentions_loss_and_events() {
    let _g = setup();
    trace::record_at(121, EventKind::EpochAdvance, 7, 0);
    let tail = trace::format_tail(8);
    assert!(tail.contains("orc-trace flight recorder"), "{tail}");
    assert!(tail.contains("epoch_advance"), "{tail}");
}
