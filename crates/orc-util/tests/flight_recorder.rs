//! Flight-recorder panic-hook tests (their own process: the hook is
//! global state, and these tests panic on purpose).
//!
//! Covers the PR's hook-registration bugfix contract:
//! * `install_flight_recorder` is idempotent — N calls, one hook;
//! * it *chains* to the previously installed hook rather than replacing
//!   it (a prior user hook still runs);
//! * a panic inside the dump cannot recurse (the `DUMPING` guard), and
//!   every caught panic produces exactly one dump.

use orc_util::trace::{self, EventKind};
use std::panic;
use std::sync::atomic::{AtomicU64, Ordering};

static PREV_HOOK_RUNS: AtomicU64 = AtomicU64::new(0);

#[test]
fn hook_installs_once_chains_and_counts_dumps() {
    // A user hook installed *before* the flight recorder must keep
    // firing after it.
    let default = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        PREV_HOOK_RUNS.fetch_add(1, Ordering::SeqCst);
        default(info);
    }));

    trace::install_flight_recorder();
    trace::install_flight_recorder();
    trace::install_flight_recorder();
    assert_eq!(trace::flight_dump_count(), 0, "installing never dumps");

    trace::record_at(9, EventKind::Retire, 0xabc, 1);

    let r = panic::catch_unwind(|| panic!("first injected failure"));
    assert!(r.is_err());
    assert_eq!(
        trace::flight_dump_count(),
        1,
        "triple-install must still dump exactly once per panic"
    );
    assert_eq!(
        PREV_HOOK_RUNS.load(Ordering::SeqCst),
        1,
        "the recorder must chain to the previously installed hook"
    );

    let r = panic::catch_unwind(|| panic!("second injected failure"));
    assert!(r.is_err());
    assert_eq!(trace::flight_dump_count(), 2);
    assert_eq!(PREV_HOOK_RUNS.load(Ordering::SeqCst), 2);
}
