//! orc-check: the checked-protocol entry point.
//!
//! This crate is a thin veneer: it turns on the `orc_check` feature of
//! `orc-util` (so the whole workspace compiles against the instrumented
//! atomics facade — Cargo feature unification takes care of `reclaim`,
//! `orcgc` and `structures`) and re-exports the model checker's API. The
//! actual checked protocol suite lives in `tests/`; see DESIGN.md §9 for
//! the architecture and the `ORC_CHECK_*` environment knobs.
//!
//! Run it with `cargo test -p check`. The default configuration is the
//! per-push CI setting (exhaustive, preemption bound 2); CI's nightly soak
//! raises the bound and adds randomized schedules on top.

pub use orc_util::chk::{
    explore, spawn, Acc, CheckMode, Config, Failure, JoinHandle, Report, TraceEv,
};

/// Silences the orc-stats telemetry for the current process.
///
/// Telemetry counters are sharded per thread, but the `enabled()`
/// kill-switch latch and the peak-unreclaimed watermark are shared words;
/// with recording on, every scheme operation would drag extra
/// shared-memory steps into each trace. Checked tests call this first so
/// traces stay protocol-only. Latches [`orc_util::stats::enabled`], so it
/// must run before the first scheme operation of the process.
pub fn quiet_stats() {
    std::env::set_var("ORC_STATS", "0");
    // Latch the kill-switch now, outside any exploration, so the latch
    // store itself never appears inside a model trace.
    let _ = orc_util::stats::enabled();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_explore_is_usable() {
        quiet_stats();
        let report = explore(Config::default(), || {
            let a = orc_util::atomics::AtomicUsize::new(0);
            a.store(1, orc_util::atomics::Ordering::SeqCst);
            assert_eq!(a.load(orc_util::atomics::Ordering::SeqCst), 1);
        })
        .expect("single-threaded body has no failing schedule");
        assert_eq!(report.schedules, 1);
    }
}
