//! Facade equivalence: with the `orc_check` feature on (it is, for this
//! whole crate), the instrumented atomics must behave exactly like
//! `std::sync::atomic` both *outside* any exploration (passthrough: no
//! scheduler exists, ops hit the real atomics directly) and *inside* a
//! single-threaded model (every op becomes a scheduling step, but the
//! values must be unchanged).
//!
//! The "without the feature" half of the equivalence lives in
//! `orc_util::atomics`' own unit tests, which compile the passthrough
//! re-exports when the default feature set is used (`cargo test -p
//! orc-util`).

use check::{explore, quiet_stats, Config};
use orc_util::atomics::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// The value-level protocol both halves must agree on.
fn exercise() -> (usize, u64, bool, bool, usize) {
    let a = AtomicUsize::new(5);
    assert_eq!(a.fetch_add(3, Ordering::SeqCst), 5);
    assert_eq!(a.swap(40, Ordering::SeqCst), 8);
    assert!(a
        .compare_exchange(40, 41, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok());
    assert_eq!(
        a.compare_exchange(40, 99, Ordering::SeqCst, Ordering::SeqCst),
        Err(41)
    );
    fence(Ordering::SeqCst);

    let b = AtomicU64::new(u64::MAX);
    assert_eq!(b.fetch_sub(1, Ordering::SeqCst), u64::MAX);

    let flag = AtomicBool::new(false);
    let was = flag.fetch_or(true, Ordering::SeqCst);

    let mut slot = 7u32;
    let p = AtomicPtr::new(std::ptr::null_mut::<u32>());
    let prev = p.swap(&mut slot, Ordering::SeqCst);
    let roundtrip = p.load(Ordering::SeqCst);
    // SAFETY: `roundtrip` is the `&mut slot` stored two lines up; `slot`
    // is still in scope.
    assert_eq!(unsafe { *roundtrip }, 7);

    (
        a.load(Ordering::SeqCst),
        b.load(Ordering::SeqCst),
        was,
        prev.is_null(),
        roundtrip as usize,
    )
}

#[test]
fn shims_match_std_outside_a_model() {
    // No explore() anywhere near this: the shims must pass straight
    // through to the real atomics.
    let (a, b, was, prev_null, _) = exercise();
    assert_eq!(a, 41);
    assert_eq!(b, u64::MAX - 1);
    assert!(!was);
    assert!(prev_null);
}

#[test]
fn shims_match_std_inside_a_model() {
    quiet_stats();
    let report = explore(Config::default(), || {
        let (a, b, was, prev_null, _) = exercise();
        assert_eq!(a, 41);
        assert_eq!(b, u64::MAX - 1);
        assert!(!was);
        assert!(prev_null);
    })
    .expect("a single-threaded body has exactly one (passing) schedule");
    assert_eq!(report.schedules, 1, "no concurrency, no branching");
    assert!(
        report.steps > 8,
        "every atomic op must have become a scheduling step (saw {})",
        report.steps
    );
}
