//! Checked end-to-end structure test: Michael's list under exhaustive
//! interleaving exploration.
//!
//! One concurrent insert/delete/contains triple — small enough to exhaust
//! within the preemption bound, large enough to drive the full
//! search/mark/unlink/retire machinery (three rotating hazard slots, a
//! physical unlink racing a traversal). Run under the two schemes with the
//! most distinct retire paths: HP (scan against published slots) and PTP
//! (immediate handover walk).

use check::{explore, quiet_stats, spawn, Config};
use reclaim::SchemeKind;
use std::sync::Arc;
use structures::list::MichaelList;

fn triple(kind: SchemeKind) {
    quiet_stats();
    let report = explore(Config::from_env(), move || {
        let list = Arc::new(MichaelList::new(kind.build_with_threshold(1)));
        let other = {
            let list = Arc::clone(&list);
            spawn(move || {
                assert!(list.add(2));
                list.remove(&1);
            })
        };
        assert!(list.add(1));
        let _ = list.contains(&2);
        other.join();
        // `MichaelList::drop` walks the remaining nodes with `dealloc_now`;
        // the leak oracle then requires every node to be accounted for.
    })
    .unwrap_or_else(|f| panic!("{kind} michael-list triple failed:\n{f}"));
    assert!(report.schedules > 1, "{kind}: nothing was explored");
}

#[test]
fn insert_delete_contains_triple_under_hp() {
    triple(SchemeKind::Hp);
}

#[test]
fn insert_delete_contains_triple_under_ptp() {
    triple(SchemeKind::Ptp);
}
