//! Checked micro-protocols for every manual reclamation scheme.
//!
//! Each test runs a two-thread protect-vs-retire race under exhaustive
//! interleaving exploration (preemption bound from `ORC_CHECK_*`, default
//! 2). The assertions are mostly implicit: the shadow heap flags any
//! use-after-reclaim, double-retire or leak-at-quiescence the scheme lets
//! through, so a passing exploration *is* the theorem — "no interleaving
//! within the bound reaches a reclaimed node through a protected pointer".

use check::{explore, quiet_stats, spawn, Config, Report};
use orc_util::atomics::{AtomicU64, AtomicUsize, Ordering};
use reclaim::{SchemeKind, Smr};
use std::sync::Arc;

/// The core race: a writer swaps out the shared node, retires and flushes
/// it while the reader tries to protect-then-read it. With `protect_first`
/// the reader publishes its protection *before* the writer exists, so the
/// scheme must keep the first node alive across retire+flush (the HP/HE
/// publication guarantee and the EBR pin guarantee); without it, the
/// protection itself races the retirement.
fn protect_vs_retire(kind: SchemeKind, protect_first: bool) -> Report {
    quiet_stats();
    explore(Config::from_env(), move || {
        let smr = Arc::new(kind.build_with_threshold(1));
        let first = smr.alloc(AtomicU64::new(1)) as usize;
        let shared = Arc::new(AtomicUsize::new(first));

        let mut held = 0usize;
        if protect_first {
            smr.begin_op();
            held = smr.protect(0, &shared);
            assert_eq!(held, first, "no writer exists yet");
        }

        let writer = {
            let (smr, shared) = (Arc::clone(&smr), Arc::clone(&shared));
            spawn(move || {
                let fresh = smr.alloc(AtomicU64::new(2)) as usize;
                let old = shared.swap(fresh, Ordering::SeqCst);
                // SAFETY: `old` came out of `smr.alloc` and was just
                // unlinked by the swap; this thread retires it once.
                unsafe { smr.retire(old as *mut AtomicU64) };
                smr.flush();
            })
        };

        if !protect_first {
            smr.begin_op();
            held = smr.protect(0, &shared);
        }
        // SAFETY: `held` is protected by slot 0 (validated against the
        // live link), so the scheme must not have reclaimed it. The shadow
        // heap turns any violation into a checker failure.
        let v = unsafe { &*(held as *const AtomicU64) }.load(Ordering::SeqCst);
        assert!(v == 1 || v == 2, "unexpected value {v}");
        smr.clear(0);
        smr.end_op();

        writer.join();
        let last = shared.load(Ordering::SeqCst);
        // SAFETY: quiescent; `last` is the surviving allocation, retired
        // exactly once here. Dropping `smr` (the only Arc left) then
        // reclaims everything still parked, which the leak oracle checks.
        unsafe { smr.retire(last as *mut AtomicU64) };
    })
    .unwrap_or_else(|f| panic!("{kind} protect-vs-retire failed:\n{f}"))
}

#[test]
fn protect_vs_retire_is_safe_under_every_scheme() {
    for kind in SchemeKind::ALL {
        let report = protect_vs_retire(kind, false);
        assert!(
            !report.truncated,
            "{kind}: config must exhaust this protocol"
        );
        assert!(report.schedules > 1, "{kind}: nothing was explored");
    }
}

/// HP-style publication, EBR pinning and HE era publication all promise the
/// same thing once the protection is established before the retirer starts:
/// the node outlives any retire+flush. Run the established-protection
/// variant for the three schemes whose mechanism differs most.
#[test]
fn established_protection_survives_retire_and_flush() {
    for kind in [SchemeKind::Hp, SchemeKind::Ebr, SchemeKind::He] {
        let report = protect_vs_retire(kind, true);
        assert!(
            !report.truncated,
            "{kind}: config must exhaust this protocol"
        );
    }
}

/// PTP's distinguishing move: retiring an object some other thread is
/// protecting *hands it over* to that thread's handover entry instead of
/// queueing it. The protecting thread's `clear` must then drain the parked
/// object — in every interleaving, quiescence ends with zero unreclaimed.
#[test]
fn ptp_handover_parks_on_protector_and_drains_on_clear() {
    quiet_stats();
    let report = explore(Config::from_env(), || {
        let smr = Arc::new(SchemeKind::Ptp.build_with_threshold(1));
        let node = smr.alloc(AtomicU64::new(7)) as usize;
        let shared = Arc::new(AtomicUsize::new(node));

        // Establish protection before the writer exists: the retire below
        // is forced to either see the hazard (and park the node in our
        // handover entry) or run after our clear (and delete directly).
        smr.begin_op();
        let p = smr.protect(0, &shared);
        assert_eq!(p, node);

        let writer = {
            let (smr, shared) = (Arc::clone(&smr), Arc::clone(&shared));
            spawn(move || {
                let old = shared.swap(0, Ordering::SeqCst);
                // SAFETY: `old` was just unlinked; retired exactly once.
                unsafe { smr.retire(old as *mut AtomicU64) };
            })
        };

        // SAFETY: protected by slot 0; the shadow heap enforces it.
        let v = unsafe { &*(p as *const AtomicU64) }.load(Ordering::SeqCst);
        assert_eq!(v, 7);
        smr.clear(0); // drains our handover entry if the retire parked there
        smr.end_op();
        writer.join();
        // The retire may park the node *after* the clear above already
        // drained the entry (a legal Algorithm 2 state: parked objects are
        // bounded, not leaked). One more drain at quiescence must free it.
        smr.clear(0);
        assert_eq!(
            smr.unreclaimed(),
            0,
            "a parked handover must drain on clear (or the retire deleted directly)"
        );
    })
    .unwrap_or_else(|f| panic!("ptp handover failed:\n{f}"));
    assert!(
        !report.truncated,
        "config must exhaust the handover protocol"
    );
}

/// PTB value recycling: the buck slots and retired values go through two
/// full generations while a reader holds a protection, so a slot freed in
/// round one is re-armed in round two. The shadow heap catches the classic
/// recycling bug (reclaiming the round-one value while the reader still
/// dereferences it).
#[test]
fn ptb_value_recycling_is_safe_across_generations() {
    quiet_stats();
    let report = explore(Config::from_env(), || {
        let smr = Arc::new(SchemeKind::Ptb.build_with_threshold(1));
        let first = smr.alloc(AtomicU64::new(1)) as usize;
        let shared = Arc::new(AtomicUsize::new(first));

        let writer = {
            let (smr, shared) = (Arc::clone(&smr), Arc::clone(&shared));
            spawn(move || {
                for gen in 2..4u64 {
                    let fresh = smr.alloc(AtomicU64::new(gen)) as usize;
                    let old = shared.swap(fresh, Ordering::SeqCst);
                    // SAFETY: `old` was just unlinked; retired exactly once.
                    unsafe { smr.retire(old as *mut AtomicU64) };
                    smr.flush();
                }
            })
        };

        smr.begin_op();
        let p = smr.protect(0, &shared);
        // SAFETY: protected by slot 0; the shadow heap enforces it.
        let v = unsafe { &*(p as *const AtomicU64) }.load(Ordering::SeqCst);
        assert!((1..4).contains(&v), "unexpected value {v}");
        smr.clear(0);
        smr.end_op();

        writer.join();
        let last = shared.load(Ordering::SeqCst);
        // SAFETY: quiescent; the surviving allocation, retired once.
        unsafe { smr.retire(last as *mut AtomicU64) };
    })
    .unwrap_or_else(|f| panic!("ptb recycling failed:\n{f}"));
    assert!(
        !report.truncated,
        "config must exhaust the recycling protocol"
    );
}
