//! Checked OrcGC protocol: the `_orc` decrement-vs-retire race on a
//! two-node chain (the paper's Algorithm 3/4 core).
//!
//! A writer severs `head -> A -> B` at the root while a reader traverses
//! it through `orc_atomic::load` guards. The interesting interleavings put
//! the root decrement (and the recursive cascade through A's link fields)
//! concurrent with the reader's protect-and-dereference of both nodes; the
//! shadow heap flags any cascade that frees a node while a guard still
//! covers it, and the leak oracle flags any decrement the cascade loses.

use check::{explore, quiet_stats, spawn, Config};
use orcgc::{flush_thread, make_orc, OrcAtomic};
use std::sync::Arc;

struct Node {
    val: u64,
    next: OrcAtomic<Node>,
}

#[test]
fn root_severing_races_a_traversing_reader() {
    quiet_stats();
    let report = explore(Config::from_env(), || {
        let b = make_orc(Node {
            val: 2,
            next: OrcAtomic::null(),
        });
        let a = make_orc(Node {
            val: 1,
            next: OrcAtomic::new(&b),
        });
        let head = Arc::new(OrcAtomic::new(&a));
        // Drop the creation guards: from here the chain is kept alive by
        // `head`'s hard link (and A's link to B) alone.
        drop(a);
        drop(b);

        let writer = {
            let head = Arc::clone(&head);
            spawn(move || {
                // Sever the root: decrements A, whose destruction cascades
                // a decrement into B through A's `next` OrcAtomic.
                head.store_null();
                flush_thread();
            })
        };

        // Reader: traverse head -> A -> B under load guards.
        {
            let p = head.load();
            if let Some(node_a) = p.as_ref() {
                assert_eq!(node_a.val, 1);
                let q = node_a.next.load();
                if let Some(node_b) = q.as_ref() {
                    assert_eq!(node_b.val, 2);
                }
            }
            // Guards drop here: the last decrement may happen on this
            // thread, queueing the node on *our* retired list.
        }

        writer.join();
        // Drain whatever the cascade queued locally; twice, because
        // destroying A during the first flush retires B onto this list.
        flush_thread();
        flush_thread();
        drop(head);
        flush_thread();
    })
    .unwrap_or_else(|f| panic!("orcgc chain protocol failed:\n{f}"));
    assert!(!report.truncated, "config must exhaust the chain protocol");
    assert!(report.schedules > 1, "nothing was explored");
}
