//! The checker's calibration test: a hand-rolled hazard-pointer protocol
//! with a switchable bug.
//!
//! The correct variant publishes the hazard and **re-reads** the shared
//! link before dereferencing (Michael 2004's validation step); the buggy
//! variant skips the re-read. orc-check must pass the former exhaustively
//! and catch the latter with a replayable use-after-reclaim trace — if it
//! ever stops doing so, the checker itself has regressed, which is why
//! this lives next to the protocol suite rather than in `chk`'s unit
//! tests (it exercises the whole stack: facade shims, shadow heap hooks
//! through `reclaim::header`, scheduler, and trace reporting).

use check::{explore, quiet_stats, spawn, Config, Failure, Report};
use orc_util::atomics::{spin_hint, AtomicU64, AtomicUsize, Ordering};
use reclaim::header::{alloc_tracked, destroy_tracked};
use reclaim::SmrHeader;
use std::sync::Arc;

/// One reader, one writer, one hazard slot. `validate` selects the
/// correct protocol; `!validate` injects the bug.
fn hp_round(validate: bool) -> Result<Report, Box<Failure>> {
    quiet_stats();
    explore(Config::from_env(), move || {
        let first = alloc_tracked(AtomicU64::new(1), 0) as usize;
        let shared = Arc::new(AtomicUsize::new(first));
        let hazard = Arc::new(AtomicUsize::new(0));

        let writer = {
            let (shared, hazard) = (shared.clone(), hazard.clone());
            spawn(move || {
                let fresh = alloc_tracked(AtomicU64::new(2), 0) as usize;
                let old = shared.swap(fresh, Ordering::SeqCst);
                // Wait out any reader that published protection in time.
                while hazard.load(Ordering::SeqCst) == old {
                    spin_hint();
                }
                // SAFETY: `old` was unlinked by the swap above and the
                // hazard no longer covers it; only this thread frees it.
                // (If a reader still holds it, that is exactly the bug the
                // shadow heap exists to catch.)
                unsafe { destroy_tracked(SmrHeader::of_value(old as *mut AtomicU64)) };
            })
        };

        // Reader, on the main model thread.
        loop {
            let p = shared.load(Ordering::SeqCst);
            hazard.store(p, Ordering::SeqCst);
            if !validate || shared.load(Ordering::SeqCst) == p {
                // SAFETY: with `validate`, the re-read proved the hazard
                // was published before the writer's swap, so the writer
                // waits for us. Without it this is the injected
                // use-after-reclaim the checker must flag.
                let v = unsafe { &*(p as *const AtomicU64) }.load(Ordering::SeqCst);
                assert!(v == 1 || v == 2, "unexpected value {v}");
                break;
            }
            // Validation failed: the link moved under us; retry.
        }
        hazard.store(0, Ordering::SeqCst);

        writer.join();
        let last = shared.load(Ordering::SeqCst);
        // SAFETY: the writer joined; `last` is the surviving allocation and
        // nothing references it anymore.
        unsafe { destroy_tracked(SmrHeader::of_value(last as *mut AtomicU64)) };
    })
}

#[test]
fn validated_hazard_protocol_is_clean() {
    let report = hp_round(true).expect("the validated protocol must pass exhaustively");
    assert!(!report.truncated, "suite config must exhaust this protocol");
    assert!(
        report.schedules > 1,
        "the interesting interleavings were never explored"
    );
}

#[test]
fn dropping_the_validation_reread_is_caught() {
    let failure = *hp_round(false).expect_err("the injected bug must be found");
    assert!(
        failure.message.contains("use-after-reclaim"),
        "wrong failure kind: {}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "failure must carry a replayable trace"
    );
    // The trace must show the fatal read landing inside a tracked object.
    assert!(
        failure.trace.iter().any(|ev| ev.obj.is_some()),
        "trace never resolved an access to a shadow-heap object"
    );
}

#[test]
fn injected_bug_failure_is_deterministic() {
    let a = *hp_round(false).expect_err("first run must fail");
    let b = *hp_round(false).expect_err("second run must fail");
    assert_eq!(a.message, b.message);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.step, b.step);
}
