//! orc-stats invariants across the torture leak-ledger battery.
//!
//! The telemetry contract (see `orc_util::stats`): every scheme pairs
//! `unreclaimed += 1` with a Retire event and every `-= 1` with a
//! Reclaim event, so
//!
//! * `reclaims ≤ retires` holds at all times, and
//! * at quiescence `retires − reclaims == unreclaimed()` holds exactly.
//!
//! The per-scheme micro-tests live in `reclaim/tests/stats.rs`; here the
//! same invariants are asserted on top of the *full* ledgered churn
//! battery (multi-threaded, structure-driven, teardown included), swept
//! over every cell of the (scheme × structure) registry matrix — manual
//! cells against the scheme instance's counters, OrcGC cells against the
//! process-global domain's delta.

use reclaim::{SchemeKind, Smr, StatsSnapshot};
use structures::registry::{MatrixFilter, SchemeAxis};
use structures::ConcurrentSet;
use torture::{churn_queue_cell, churn_set_cell, Config};

/// Invariants every post-drain battery snapshot must satisfy. The cell
/// runners drain to `unreclaimed() == 0` before snapshotting (structure
/// teardown uses `dealloc_now`, which never retires), so a reclaiming
/// scheme must come back exactly balanced; for OrcGC cells the snapshot
/// is the domain delta over the cell, balanced once the ledger settled.
fn assert_quiescent(label: &str, s: &StatsSnapshot, reclaiming: bool) {
    assert!(
        s.reclaims <= s.retires,
        "{label}: reclaims {} > retires {}",
        s.reclaims,
        s.retires
    );
    assert!(
        s.peak_unreclaimed >= s.outstanding(),
        "{label}: peak {} below outstanding {}",
        s.peak_unreclaimed,
        s.outstanding()
    );
    assert!(s.retires > 0, "{label}: churn recorded no retires");
    if reclaiming {
        assert_eq!(
            s.retires, s.reclaims,
            "{label}: drained to unreclaimed()==0 but stats disagree"
        );
        assert!(
            s.batches() > 0,
            "{label}: objects were reclaimed but no batch was recorded"
        );
    } else {
        assert_eq!(s.reclaims, 0, "{label}: the leaky baseline never reclaims");
        assert_eq!(s.batches(), 0, "{label}: no reclaims, no batches");
        assert_eq!(s.peak_unreclaimed, s.retires, "{label}: peak is the total");
    }
}

/// Whether a cell's scheme reclaims at all (everything but the leaky
/// baseline; the OrcGC domain always does).
fn reclaims(axis: SchemeAxis) -> bool {
    axis.manual().is_none_or(|kind| kind.reclaims())
}

#[test]
fn every_set_cell_stats_balance() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().set_cells() {
        let s = churn_set_cell(&cell, cfg.threads, cfg.iters);
        assert_quiescent(&cell.label(), &s, reclaims(cell.scheme));
    }
}

#[test]
fn every_queue_cell_stats_balance() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().queue_cells() {
        let s = churn_queue_cell(&cell, cfg.threads, cfg.iters);
        assert_quiescent(&cell.label(), &s, reclaims(cell.scheme));
    }
}

/// `retires − reclaims == unreclaimed()` checked against the live gauge:
/// the cell runners consume their scheme handle, so this test builds each
/// manual scheme directly and drives every registered set through it.
#[test]
fn outstanding_matches_live_gauge() {
    for kind in SchemeKind::ALL {
        for entry in structures::registry::SETS {
            let smr = kind.build();
            {
                let set = (entry.make)(smr.clone());
                for k in 0..400u64 {
                    set.add(k % 64);
                    set.remove(&(k % 64));
                }
            }
            // Mid-quiescence (before any drain): the contract must
            // already hold — this is what catches an unpaired gauge
            // update.
            let s = smr.stats();
            assert_eq!(
                s.outstanding(),
                smr.unreclaimed() as u64,
                "{kind}/{}: snapshot disagrees with live gauge",
                entry.name
            );
            for _ in 0..400 {
                if smr.unreclaimed() == 0 {
                    break;
                }
                smr.flush();
            }
            let s = smr.stats();
            assert_eq!(
                s.outstanding(),
                smr.unreclaimed() as u64,
                "{kind}/{}",
                entry.name
            );
        }
    }
}

/// OrcGC domain deltas across consecutive ledgered cells: cumulative
/// snapshots are monotone and each cell's delta balances (the ledger
/// settles only once every node of the section is freed or unretired).
/// One test, sequential: the domain is process-global and parallel orc
/// churn would pollute the deltas.
#[test]
fn orc_domain_deltas_monotone_and_balanced() {
    let cfg = Config::short();
    let filter = MatrixFilter::full();
    let mut last = orcgc::domain_stats();
    for cell in filter.set_cells() {
        if cell.scheme != SchemeAxis::Orc {
            continue;
        }
        churn_set_cell(&cell, cfg.threads, cfg.iters);
        let now = orcgc::domain_stats();
        assert!(
            now.is_monotone_since(&last),
            "{}: domain counters went backwards",
            cell.label()
        );
        last = now;
    }
    for cell in filter.queue_cells() {
        if cell.scheme != SchemeAxis::Orc {
            continue;
        }
        churn_queue_cell(&cell, cfg.threads, cfg.iters);
        let now = orcgc::domain_stats();
        assert!(
            now.is_monotone_since(&last),
            "{}: domain counters went backwards",
            cell.label()
        );
        last = now;
    }
}
