//! orc-stats invariants across the torture leak-ledger battery.
//!
//! The telemetry contract (see `orc_util::stats`): every scheme pairs
//! `unreclaimed += 1` with a Retire event and every `-= 1` with a
//! Reclaim event, so
//!
//! * `reclaims ≤ retires` holds at all times, and
//! * at quiescence `retires − reclaims == unreclaimed()` holds exactly.
//!
//! The per-scheme micro-tests live in `reclaim/tests/stats.rs`; here the
//! same invariants are asserted on top of the *full* ledgered churn
//! battery (multi-threaded, structure-driven, teardown included), which
//! is exactly the run the ISSUE's acceptance bar names.

use reclaim::StatsSnapshot;
use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use structures::list::{MichaelList, MichaelListOrc};
use structures::queue::{MsQueue, MsQueueOrc};
use torture::{
    churn_orc_queue_ledgered, churn_orc_set_ledgered, churn_queue_ledgered, churn_set_ledgered,
    Config,
};

/// Invariants every post-drain battery snapshot must satisfy. The
/// ledgered helpers drain to `unreclaimed() == 0` before snapshotting
/// (structure teardown uses `dealloc_now`, which never retires), so a
/// reclaiming scheme must come back exactly balanced.
fn assert_quiescent(label: &str, s: &StatsSnapshot, reclaiming: bool) {
    assert!(
        s.reclaims <= s.retires,
        "{label}: reclaims {} > retires {}",
        s.reclaims,
        s.retires
    );
    assert!(
        s.peak_unreclaimed >= s.outstanding(),
        "{label}: peak {} below outstanding {}",
        s.peak_unreclaimed,
        s.outstanding()
    );
    assert!(s.retires > 0, "{label}: churn recorded no retires");
    if reclaiming {
        assert_eq!(
            s.retires, s.reclaims,
            "{label}: drained to unreclaimed()==0 but stats disagree"
        );
        assert!(
            s.batches() > 0,
            "{label}: objects were reclaimed but no batch was recorded"
        );
    } else {
        assert_eq!(s.reclaims, 0, "{label}: the leaky baseline never reclaims");
        assert_eq!(s.batches(), 0, "{label}: no reclaims, no batches");
        assert_eq!(s.peak_unreclaimed, s.retires, "{label}: peak is the total");
    }
}

fn battery<S: Smr + Clone>(make: impl Fn() -> S, reclaiming: bool) {
    let cfg = Config::short();
    let name = make().name();
    let s = churn_set_ledgered::<S, MichaelList<u64, S>>(
        make(),
        &format!("{name}/MichaelList/stats"),
        cfg.threads,
        cfg.iters,
    );
    assert_quiescent(&format!("{name}/MichaelList"), &s, reclaiming);
    let s = churn_queue_ledgered::<S, MsQueue<u64, S>>(
        make(),
        &format!("{name}/MSQueue/stats"),
        cfg.threads,
        cfg.iters,
    );
    assert_quiescent(&format!("{name}/MSQueue"), &s, reclaiming);
}

#[test]
fn hp_battery_stats_balance() {
    battery(HazardPointers::new, true);
}

#[test]
fn ptb_battery_stats_balance() {
    battery(PassTheBuck::new, true);
}

#[test]
fn ptp_battery_stats_balance() {
    battery(PassThePointer::new, true);
}

#[test]
fn he_battery_stats_balance() {
    battery(HazardEras::new, true);
}

#[test]
fn ebr_battery_stats_balance() {
    battery(Ebr::new, true);
}

#[test]
fn leaky_battery_stats_balance() {
    battery(Leaky::new, false);
}

/// `retires − reclaims == unreclaimed()` checked against the live gauge:
/// the battery helpers consume their scheme handle, so this test keeps a
/// clone and compares the snapshot to `unreclaimed()` directly.
#[test]
fn outstanding_matches_live_gauge() {
    fn one<S: Smr + Clone>(make: impl Fn() -> S) {
        let smr = make();
        {
            let set = MichaelList::<u64, S>::new(smr.clone());
            for k in 0..400u64 {
                set.add(k % 64);
                set.remove(&(k % 64));
            }
        }
        // Mid-quiescence (before any drain): the contract must already
        // hold — this is what catches an unpaired gauge update.
        let s = smr.stats();
        assert_eq!(
            s.outstanding(),
            smr.unreclaimed() as u64,
            "{}: snapshot disagrees with live gauge",
            smr.name()
        );
        for _ in 0..400 {
            if smr.unreclaimed() == 0 {
                break;
            }
            smr.flush();
        }
        let s = smr.stats();
        assert_eq!(s.outstanding(), smr.unreclaimed() as u64, "{}", smr.name());
    }
    one(HazardPointers::new);
    one(PassTheBuck::new);
    one(PassThePointer::new);
    one(HazardEras::new);
    one(Ebr::new);
    one(Leaky::new);
}

/// OrcGC domain deltas across consecutive ledgered batteries: cumulative
/// snapshots are monotone, each battery's delta balances (the ledger
/// settles only once every node of the section is freed or unretired),
/// and handovers appear (PTP-style transfers are how OrcGC reclaims
/// under contention). One test, sequential: the domain is process-global
/// and parallel orc tests would pollute each other's deltas.
#[test]
fn orc_domain_deltas_monotone_and_balanced() {
    let cfg = Config::short();
    let base = orcgc::domain_stats();
    let d1 = churn_orc_set_ledgered(
        MichaelListOrc::<u64>::new,
        "OrcGC/MichaelListOrc/stats",
        cfg.threads,
        cfg.iters,
    );
    let mid = orcgc::domain_stats();
    assert!(
        mid.is_monotone_since(&base),
        "domain counters went backwards"
    );
    let d2 = churn_orc_queue_ledgered(
        MsQueueOrc::<u64>::new,
        "OrcGC/MSQueueOrc/stats",
        cfg.threads,
        cfg.iters,
    );
    let end = orcgc::domain_stats();
    assert!(
        end.is_monotone_since(&mid),
        "domain counters went backwards"
    );
    for (label, d) in [("set", &d1), ("queue", &d2)] {
        assert!(d.retires > 0, "OrcGC/{label}: churn recorded no retires");
        assert_eq!(
            d.retires, d.reclaims,
            "OrcGC/{label}: ledger settled but the stats delta does not balance"
        );
        assert!(
            d.peak_unreclaimed >= d.outstanding(),
            "OrcGC/{label}: peak below outstanding"
        );
    }
}
