//! Oversubscription soak (threads ≫ cores, registry tid reuse across
//! spawn/join waves) and the ABA hammer (tiny key universe → constant
//! address recycling) — both under the leak ledger, both sweeping the
//! (scheme × structure) registry matrix.

use reclaim::SchemeKind;
use structures::registry::MatrixFilter;
use torture::{aba_queue_cell, aba_set_cell, soak_set_cell, soak_threads, Config};

/// One scheme per reclamation style (handover dribble, scan avalanche,
/// epoch bins): the soak is about registry tid churn, which the scheme's
/// reclamation machinery feels and the structure barely does.
const SOAK_SCHEMES: [SchemeKind; 3] = [SchemeKind::Ptp, SchemeKind::Hp, SchemeKind::Ebr];

#[test]
fn oversubscribed_waves() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().set_cells() {
        let soaked = cell
            .scheme
            .manual()
            .is_some_and(|kind| SOAK_SCHEMES.contains(&kind));
        if soaked {
            soak_set_cell(&cell, cfg.waves, soak_threads(), 600);
        }
    }
}

#[test]
fn aba_hammer_every_set_cell() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().set_cells() {
        aba_set_cell(&cell, cfg.threads, cfg.iters);
    }
}

#[test]
fn aba_hammer_every_queue_cell() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().queue_cells() {
        aba_queue_cell(&cell, 2, 2, cfg.iters);
    }
}
