//! Oversubscription soak (threads ≫ cores, registry tid reuse across
//! spawn/join waves) and the ABA hammer (tiny key universe → constant
//! address recycling) — both under the leak ledger.

use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use structures::list::MichaelList;
use structures::queue::MsQueue;
use torture::{aba_hammer_queue, aba_hammer_set, oversubscription_soak, Config};

fn soak_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (4 * cores).min(48)
}

#[test]
fn oversubscribed_waves_ptp() {
    let cfg = Config::short();
    oversubscription_soak::<_, MichaelList<u64, _>>(
        PassThePointer::new(),
        "PTP/soak",
        cfg.waves,
        soak_threads(),
        600,
    );
}

#[test]
fn oversubscribed_waves_hp() {
    let cfg = Config::short();
    oversubscription_soak::<_, MichaelList<u64, _>>(
        HazardPointers::new(),
        "HP/soak",
        cfg.waves,
        soak_threads(),
        600,
    );
}

#[test]
fn oversubscribed_waves_ebr() {
    let cfg = Config::short();
    oversubscription_soak::<_, MichaelList<u64, _>>(
        Ebr::new(),
        "EBR/soak",
        cfg.waves,
        soak_threads(),
        600,
    );
}

/// Fresh scheme instance per ledgered section (see `leak_ledger.rs`).
fn hammer<S: Smr + Clone>(make: impl Fn() -> S) {
    let cfg = Config::short();
    let name = make().name();
    aba_hammer_set::<S, MichaelList<u64, S>>(
        make(),
        &format!("{name}/aba-list"),
        cfg.threads,
        cfg.iters,
    );
    aba_hammer_queue::<S, MsQueue<u64, S>>(make(), &format!("{name}/aba-queue"), 2, 2, cfg.iters);
}

#[test]
fn aba_hammer_hp() {
    hammer(HazardPointers::new);
}

#[test]
fn aba_hammer_ptb() {
    hammer(PassTheBuck::new);
}

#[test]
fn aba_hammer_ptp() {
    hammer(PassThePointer::new);
}

#[test]
fn aba_hammer_he() {
    hammer(HazardEras::new);
}

#[test]
fn aba_hammer_ebr() {
    hammer(Ebr::new);
}

#[test]
fn aba_hammer_leaky() {
    hammer(Leaky::new);
}
