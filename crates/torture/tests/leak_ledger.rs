//! Leak-ledger battery: every (scheme × structure) pair must end a churn
//! with allocations == frees after `flush()` + drop. Covers the six
//! manual schemes on both benchmark structures plus the OrcGC-annotated
//! variants (whose reclamation is driven by the process-global domain).
//!
//! Every test here opens the ledger (which serializes ledgered sections),
//! so the per-process allocation counters can't be polluted by a
//! concurrently-running test in this binary.

use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use structures::list::{MichaelList, MichaelListOrc};
use structures::queue::{MsQueue, MsQueueOrc};
use torture::{
    churn_orc_queue_ledgered, churn_orc_set_ledgered, churn_queue_ledgered, churn_set_ledgered,
    Config,
};

/// Each ledgered section must own the *only* handles to its scheme (the
/// leaky baseline frees its stash at last-handle drop), so the battery
/// takes a factory and builds a fresh instance per section.
fn both<S: Smr + Clone>(make: impl Fn() -> S) {
    let cfg = Config::short();
    let name = make().name();
    churn_set_ledgered::<S, MichaelList<u64, S>>(
        make(),
        &format!("{name}/MichaelList"),
        cfg.threads,
        cfg.iters,
    );
    churn_queue_ledgered::<S, MsQueue<u64, S>>(
        make(),
        &format!("{name}/MSQueue"),
        cfg.threads,
        cfg.iters,
    );
}

#[test]
fn hp_balances() {
    both(HazardPointers::new);
}

#[test]
fn ptb_balances() {
    both(PassTheBuck::new);
}

#[test]
fn ptp_balances() {
    both(PassThePointer::new);
}

#[test]
fn he_balances() {
    both(HazardEras::new);
}

#[test]
fn ebr_balances() {
    both(Ebr::new);
}

#[test]
fn leaky_balances_at_teardown() {
    both(Leaky::new);
}

#[test]
fn orcgc_list_balances() {
    let cfg = Config::short();
    churn_orc_set_ledgered(
        MichaelListOrc::<u64>::new,
        "OrcGC/MichaelListOrc",
        cfg.threads,
        cfg.iters,
    );
}

#[test]
fn orcgc_queue_balances() {
    let cfg = Config::short();
    churn_orc_queue_ledgered(
        MsQueueOrc::<u64>::new,
        "OrcGC/MSQueueOrc",
        cfg.threads,
        cfg.iters,
    );
}
