//! Leak-ledger battery: every cell of the (scheme × structure) registry
//! matrix must end a churn with allocations == frees after `flush()` +
//! drop — the six manual schemes on every registered structure, plus
//! every OrcGC-annotated variant (whose reclamation is driven by the
//! process-global domain).
//!
//! The matrix comes from [`MatrixFilter::full`], so a structure or scheme
//! added to the registry is leak-tested here with no edit to this file.
//! Ledgered sections serialize (the ledger is process-global), so the
//! per-process allocation counters can't be polluted by a
//! concurrently-running test in this binary.

use structures::registry::MatrixFilter;
use torture::{churn_queue_cell, churn_set_cell, Config};

#[test]
fn every_set_cell_balances() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().set_cells() {
        churn_set_cell(&cell, cfg.threads, cfg.iters);
    }
}

#[test]
fn every_queue_cell_balances() {
    let cfg = Config::short();
    for cell in MatrixFilter::full().queue_cells() {
        churn_queue_cell(&cell, cfg.threads, cfg.iters);
    }
}
