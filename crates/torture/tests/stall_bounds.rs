//! Table 1, asserted: a reader parked *inside* `protect` (protection
//! published, never released) must not break the bounded schemes'
//! unreclaimed ceiling — and must break EBR's.
//!
//! Each test wraps its run in the leak ledger, so these also prove the
//! stall path itself leaks nothing once the victim resumes.

use orc_util::track::Ledger;
use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer};
use torture::{assert_bounded, assert_unbounded, stalled_reader_churn, Config, STALL_THRESHOLD};

const WRITERS: usize = 2;

fn rounds() -> u64 {
    Config::short().stall_rounds
}

#[test]
fn hp_bounded_under_stalled_reader() {
    let ledger = Ledger::open();
    let r = stalled_reader_churn(
        HazardPointers::with_threshold(STALL_THRESHOLD),
        WRITERS,
        rounds(),
    );
    assert_bounded(&r, WRITERS);
    ledger.assert_balanced("HP/stall");
}

#[test]
fn ptb_bounded_under_stalled_reader() {
    let ledger = Ledger::open();
    let r = stalled_reader_churn(
        PassTheBuck::with_threshold(STALL_THRESHOLD),
        WRITERS,
        rounds(),
    );
    assert_bounded(&r, WRITERS);
    ledger.assert_balanced("PTB/stall");
}

#[test]
fn ptp_bounded_under_stalled_reader() {
    let ledger = Ledger::open();
    let r = stalled_reader_churn(PassThePointer::new(), WRITERS, rounds());
    assert_bounded(&r, WRITERS);
    ledger.assert_balanced("PTP/stall");
}

#[test]
fn he_bounded_under_stalled_reader() {
    let ledger = Ledger::open();
    let r = stalled_reader_churn(
        HazardEras::with_threshold(STALL_THRESHOLD),
        WRITERS,
        rounds(),
    );
    assert_bounded(&r, WRITERS);
    ledger.assert_balanced("HE/stall");
}

#[test]
fn ebr_unbounded_under_stalled_reader() {
    let ledger = Ledger::open();
    let r = stalled_reader_churn(Ebr::new(), WRITERS, rounds());
    assert_unbounded(&r);
    // Once the pinned victim resumed, everything must still drain.
    assert!(r.drained, "EBR failed to drain after the victim resumed");
    ledger.assert_balanced("EBR/stall");
}

#[test]
fn leaky_keeps_everything_until_teardown() {
    let ledger = Ledger::open();
    let smr = Leaky::new();
    let r = stalled_reader_churn(smr.clone(), WRITERS, rounds());
    assert_unbounded(&r);
    assert!(!r.drained, "the leaky baseline must never reclaim mid-run");
    // Teardown (last handle dropped) frees the stash — the ledger proves
    // the baseline is leak-*accounted*, not leak-silent.
    drop(smr);
    ledger.assert_balanced("Leaky/stall");
}

/// The contrast the paper's Figure 1 plots: same churn, same stall — the
/// bounded scheme's residue is a small constant, EBR's scales with the
/// churn volume.
#[test]
fn bounded_vs_unbounded_contrast() {
    let ledger = Ledger::open();
    let hp = stalled_reader_churn(
        HazardPointers::with_threshold(STALL_THRESHOLD),
        WRITERS,
        rounds(),
    );
    let ebr = stalled_reader_churn(Ebr::new(), WRITERS, rounds());
    assert!(
        ebr.stalled_flush_unreclaimed > 4 * hp.stalled_flush_unreclaimed.max(1),
        "expected a clear separation: HP kept {}, EBR kept {}",
        hp.stalled_flush_unreclaimed,
        ebr.stalled_flush_unreclaimed,
    );
    ledger.assert_balanced("contrast/stall");
}
