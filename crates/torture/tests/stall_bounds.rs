//! Table 1, asserted: a reader parked *inside* `protect` (protection
//! published, never released) must not break the bounded schemes'
//! unreclaimed ceiling — and must break EBR's.
//!
//! One loop over [`SchemeKind::ALL`] — the per-scheme expectation lives
//! on the kind itself ([`SchemeKind::is_bounded`], dispatched by
//! [`assert_stall_profile`]), so a new scheme is covered (and must
//! declare its Table-1 column) the moment it joins the enum. Each run is
//! wrapped in the leak ledger, so these also prove the stall path itself
//! leaks nothing once the victim resumes.

use orc_util::track::Ledger;
use reclaim::SchemeKind;
use torture::{assert_stall_profile, stall_cell, Config};

const WRITERS: usize = 2;

fn rounds() -> u64 {
    Config::short().stall_rounds
}

#[test]
fn table1_profile_for_every_scheme() {
    for kind in SchemeKind::ALL {
        let ledger = Ledger::open();
        let r = stall_cell(kind, WRITERS, rounds());
        assert_stall_profile(kind, &r, WRITERS);
        // The stall run dropped its last scheme handle on return, so even
        // the leaky baseline's stash has been freed by now: the baseline
        // is leak-*accounted*, not leak-silent.
        ledger.assert_balanced(&format!("{kind}/stall"));
    }
}

/// The contrast the paper's Figure 1 plots: same churn, same stall — the
/// bounded scheme's residue is a small constant, EBR's scales with the
/// churn volume.
#[test]
fn bounded_vs_unbounded_contrast() {
    let ledger = Ledger::open();
    let hp = stall_cell(SchemeKind::Hp, WRITERS, rounds());
    let ebr = stall_cell(SchemeKind::Ebr, WRITERS, rounds());
    assert!(
        ebr.stalled_flush_unreclaimed > 4 * hp.stalled_flush_unreclaimed.max(1),
        "expected a clear separation: HP kept {}, EBR kept {}",
        hp.stalled_flush_unreclaimed,
        ebr.stalled_flush_unreclaimed,
    );
    ledger.assert_balanced("contrast/stall");
}
