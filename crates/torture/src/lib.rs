//! Scheme-generic torture harness for the reclamation schemes.
//!
//! Every manual scheme ([`reclaim::Smr`]) and the OrcGC domain run through
//! one uniform battery, driven by the (structure × scheme) registry
//! ([`structures::registry`]) so a new scheme or structure is picked up by
//! every battery without touching this crate:
//!
//! 1. **Stalled-reader fault injection** ([`stalled_reader_churn`]) — a
//!    victim thread is parked *inside* `protect` (via
//!    [`reclaim::stall`]) while writers churn retire traffic. Bounded
//!    schemes (HP, PTB, PTP, HE) must keep `unreclaimed()` under a
//!    rounds-independent ceiling; EBR (and the leaky baseline) must grow
//!    with the churn — the paper's Table 1 bounds, asserted
//!    ([`assert_stall_profile`] dispatches on [`SchemeKind::is_bounded`]).
//! 2. **Leak ledger** ([`churn_set_cell`] and friends) — every
//!    (scheme × structure) cell churns under a [`orc_util::track::Ledger`]
//!    and must end with allocations == frees after `flush()` + drop.
//! 3. **Oversubscription soak** ([`soak_set_cell`]) — waves of
//!    short-lived threads (threads ≫ cores) hammer one structure,
//!    exercising registry tid reuse and thread-exit orphan handoff.
//! 4. **ABA hammer** ([`aba_set_cell`], [`aba_queue_cell`]) — a tiny
//!    key universe forces constant address recycling; per-key conservation
//!    counts catch lost or duplicated nodes.
//!
//! Every battery consumes registry cells ([`structures::registry::SetCell`]
//! / [`QueueCell`]) through one sweep path ([`ledgered_set_cell`] /
//! [`ledgered_queue_cell`]) that owns the ledger/drain/teardown protocol
//! for both the manual schemes and the OrcGC domain.
//!
//! The `torture` binary drives the full battery for CI soak runs, scaled
//! by the `TORTURE_ITERS` / `TORTURE_THREADS` environment knobs and
//! sliced by the `ORC_SCHEMES` / `ORC_STRUCTS` matrix filters.

use orc_util::atomics::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use orc_util::registry;
use orc_util::rng::XorShift64;
use orc_util::stall::{self, Gate, StallPoint};
use orc_util::trace;
use orc_util::track::Ledger;
use reclaim::{SchemeKind, Smr, StatsSnapshot, MAX_HPS};
use std::sync::Arc;
use std::time::Duration;
use structures::registry::{DynQueue, DynSet, MakeQueue, MakeSet, QueueCell, SetCell};
use structures::{ConcurrentQueue, ConcurrentSet};

/// Battery sizing, from the environment (`TORTURE_*`) or fixed defaults.
#[derive(Debug, Clone)]
pub struct Config {
    /// Operations per worker thread in churn batteries.
    pub iters: u64,
    /// Worker threads per battery, capped by [`cap_threads`].
    pub threads: usize,
    /// Retire-churn rounds per writer in the stall battery.
    pub stall_rounds: u64,
    /// Spawn/join waves in the oversubscription soak.
    pub waves: usize,
}

impl Config {
    /// Reads `TORTURE_ITERS`, `TORTURE_THREADS`, `TORTURE_STALL_ROUNDS`
    /// and `TORTURE_WAVES`, falling back to soak-sized defaults. Thread
    /// counts are capped by [`cap_threads`], with iterations scaled up to
    /// preserve total churn.
    pub fn from_env() -> Self {
        fn get(key: &str, default: u64) -> u64 {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        // Floors, not just defaults: a typo'd `TORTURE_THREADS=0` would
        // hollow every churn battery into a trivially-green no-op.
        let (threads, scale) =
            cap_threads((get("TORTURE_THREADS", cores.clamp(2, 8) as u64) as usize).max(2));
        Self {
            iters: get("TORTURE_ITERS", 20_000).max(1) * scale,
            threads,
            stall_rounds: get("TORTURE_STALL_ROUNDS", 4_000).max(1),
            waves: (get("TORTURE_WAVES", 4) as usize).max(1),
        }
    }

    /// Small fixed sizing for `cargo test` (seconds, not minutes).
    pub fn short() -> Self {
        let (threads, scale) = cap_threads(4);
        Self {
            iters: 3_000 * scale,
            threads,
            stall_rounds: 1_500,
            waves: 3,
        }
    }
}

/// Caps a requested worker-thread count at twice the host's
/// [`std::thread::available_parallelism`] (floor 2 — the batteries need
/// real concurrency), returning the capped count and the iteration
/// multiplier that preserves `threads × iters`. Spin-heavy batteries
/// oversubscribed far beyond the core count hang intermittently on
/// small hosts; scaling iterations instead of skipping keeps the churn
/// volume and the coverage.
pub fn cap_threads(requested: usize) -> (usize, u64) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let cap = (2 * cores).max(2);
    if requested <= cap {
        (requested.max(1), 1)
    } else {
        (cap, (requested as u64).div_ceil(cap as u64))
    }
}

/// Thread count for the oversubscription soak: deliberately above the
/// core count (that is the battery's point) but derived from it, so a
/// single-core host spawns 4 short-lived threads per wave rather than 48.
pub fn soak_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (4 * cores).clamp(4, 48)
}

/// The threshold the stall battery constructs bounded schemes with
/// (`with_threshold`), so ceilings are deterministic rather than dependent
/// on the adaptive `2·H·t + 8` formula.
pub const STALL_THRESHOLD: usize = 64;

/// What the stall battery observed for one scheme.
#[derive(Debug, Clone)]
pub struct StallReport {
    pub scheme: &'static str,
    /// Total objects retired by the writers while the victim was parked.
    pub churned: u64,
    /// Peak `unreclaimed()` sampled during the churn.
    pub max_unreclaimed: usize,
    /// `unreclaimed()` after a full `flush()` with the victim *still
    /// parked* — the number the paper's Table 1 bounds.
    pub stalled_flush_unreclaimed: usize,
    /// Whether `unreclaimed()` reached 0 after the victim was released
    /// (always `false` for the leaky baseline).
    pub drained: bool,
    /// The scheme's orc-stats snapshot taken after the drain attempt (all
    /// zeros when `ORC_STATS=0`).
    pub stats: StatsSnapshot,
}

/// Ceiling for a bounded scheme's stalled-flush residue: per-writer
/// un-scanned batches plus every protectable slot, independent of the
/// number of churn rounds. (HE additionally keeps objects born in the
/// victim's reserved era — at most one `ERA_FREQ = 64 = STALL_THRESHOLD`
/// batch per writer, already covered by the first term.)
pub fn bounded_ceiling(writers: usize) -> usize {
    2 * writers * STALL_THRESHOLD + MAX_HPS * registry::registered_watermark() + 64
}

/// Runs the stall battery for one scheme off the registry axis: bounded
/// schemes are built with the deterministic [`STALL_THRESHOLD`].
pub fn stall_cell(kind: SchemeKind, writers: usize, rounds: u64) -> StallReport {
    stalled_reader_churn(kind.build_with_threshold(STALL_THRESHOLD), writers, rounds)
}

/// Asserts the Table-1 profile for `kind`: [`assert_bounded`] for the
/// pointer-based schemes, [`assert_unbounded`] for EBR and the leaky
/// baseline (which additionally must never drain).
pub fn assert_stall_profile(kind: SchemeKind, r: &StallReport, writers: usize) {
    if kind.is_bounded() {
        assert_bounded(r, writers);
    } else {
        assert_unbounded(r);
        if kind.reclaims() {
            assert!(
                r.drained,
                "{}: failed to drain after the stalled reader resumed",
                r.scheme
            );
        } else {
            assert!(!r.drained, "the leaky baseline must never reclaim mid-run");
        }
    }
}

/// Parks a victim thread inside `protect` (holding a live protection on a
/// shared node), then churns `rounds` alloc→swap→retire cycles on each of
/// `writers` writer threads. Reports the unreclaimed watermarks; callers
/// assert boundedness per scheme with [`assert_bounded`] /
/// [`assert_unbounded`] (or [`assert_stall_profile`]).
///
/// The victim dereferences its protected pointer *after* the writers have
/// retired it and churned past — the use-after-free check TSan/ASan bite
/// on if a scheme frees protected memory.
pub fn stalled_reader_churn<S: Smr + Clone>(smr: S, writers: usize, rounds: u64) -> StallReport {
    trace::install_flight_recorder();
    let scheme = smr.name();
    let gate = Gate::new();

    // One shared slot per writer plus slot 0 for the victim; each holds a
    // value-pointer word for a tracked u64.
    let slots: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..writers + 1)
            .map(|_| AtomicUsize::new(smr.alloc(42u64) as usize))
            .collect(),
    );

    let victim = {
        let smr = smr.clone();
        let slots = Arc::clone(&slots);
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            stall::arm(StallPoint::Protect, gate);
            smr.begin_op();
            // Parks inside protect, with the protection (hazard slot, era
            // reservation, or epoch pin) already published.
            let word = smr.protect(0, &slots[0]);
            // Released: the node was retired long ago and the writers have
            // churned thousands of objects past it. The protection must
            // have kept it alive.
            let seen = unsafe { *(word as *const u64) };
            smr.end_op();
            seen
        })
    };
    assert!(
        gate.wait_until_parked(Duration::from_secs(30)),
        "{scheme}: victim never reached the protect injection point"
    );

    // Retire the node the victim is protecting: the adversarial case.
    let fresh = smr.alloc(7u64) as usize;
    let old = slots[0].swap(fresh, Ordering::SeqCst);
    unsafe { smr.retire(old as *mut u64) };

    let max_seen = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|sc| {
        for w in 0..writers {
            let smr = smr.clone();
            let slots = Arc::clone(&slots);
            let max_seen = Arc::clone(&max_seen);
            sc.spawn(move || {
                for i in 0..rounds {
                    let next = smr.alloc(i) as usize;
                    let old = slots[w + 1].swap(next, Ordering::SeqCst);
                    unsafe { smr.retire(old as *mut u64) };
                    max_seen.fetch_max(smr.unreclaimed(), Ordering::Relaxed);
                }
            });
        }
    });

    // All writers done (and their retired lists orphaned at thread exit);
    // flush with the victim still parked. Bounded schemes reclaim all but
    // a rounds-independent residue here; EBR/Leaky keep ~everything.
    smr.flush();
    let stalled_flush_unreclaimed = smr.unreclaimed();
    let churned = writers as u64 * rounds + 1;

    gate.release();
    let seen = victim.join().expect("victim thread panicked");
    assert_eq!(
        seen, 42,
        "{scheme}: victim read {seen} through its protected pointer (use-after-free)"
    );

    let drained = drain(&smr, 400);
    let stats = smr.stats();

    // Quiescent now: free the nodes still sitting in the shared slots.
    for slot in slots.iter() {
        let w = slot.load(Ordering::SeqCst);
        unsafe { smr.dealloc_now(w as *mut u64) };
    }

    StallReport {
        scheme,
        churned,
        max_unreclaimed: max_seen
            .load(Ordering::Relaxed)
            .max(stalled_flush_unreclaimed),
        stalled_flush_unreclaimed,
        drained,
        stats,
    }
}

/// Asserts the Table-1 "bounded" column: the stalled-flush residue is
/// below [`bounded_ceiling`] (i.e. independent of churn volume) and the
/// scheme drained to zero once the victim resumed.
pub fn assert_bounded(r: &StallReport, writers: usize) {
    let ceiling = bounded_ceiling(writers);
    assert!(
        r.stalled_flush_unreclaimed <= ceiling,
        "{}: {} unreclaimed after flush under a stalled reader (ceiling {ceiling}, churned {})",
        r.scheme,
        r.stalled_flush_unreclaimed,
        r.churned,
    );
    assert!(
        r.drained,
        "{}: failed to drain to 0 after the stalled reader resumed",
        r.scheme
    );
}

/// Asserts the unbounded case: a stalled reader blocks reclamation, so the
/// residue scales with the churn (EBR; also the leaky baseline, which
/// additionally never drains).
pub fn assert_unbounded(r: &StallReport) {
    assert!(
        r.stalled_flush_unreclaimed as u64 >= r.churned / 2,
        "{}: only {} of {} churned objects unreclaimed under a stalled reader — \
         expected reclamation to be blocked",
        r.scheme,
        r.stalled_flush_unreclaimed,
        r.churned,
    );
}

/// Calls `flush` until `unreclaimed()` reaches 0 or `attempts` runs out.
pub fn drain<S: Smr>(smr: &S, attempts: usize) -> bool {
    for _ in 0..attempts {
        if smr.unreclaimed() == 0 {
            return true;
        }
        smr.flush();
        std::thread::yield_now();
    }
    smr.unreclaimed() == 0
}

// ---------------------------------------------------------------------
// The sweep path: one ledgered protocol for every (scheme × structure)
// cell, manual or OrcGC.
// ---------------------------------------------------------------------

/// Runs `body` against a freshly built set for one registry cell, under
/// the leak ledger, with the full teardown protocol:
///
/// * **manual cells** — build the scheme from the cell's axis, churn,
///   [`drain`] to `unreclaimed() == 0` (reclaiming schemes), snapshot
///   stats, drop the last scheme handle, assert the ledger balanced;
/// * **OrcGC cells** — churn, then flush this thread's handover slots
///   until the ledger settles; the returned snapshot is the *delta* of
///   [`orcgc::domain_stats`] (the domain is process-global).
///
/// This is the one place the ledger/drain/teardown discipline lives —
/// every battery (churn, soak, ABA) layers a different `body` over it.
pub fn ledgered_set_cell<R>(cell: &SetCell, body: impl FnOnce(&DynSet) -> R) -> (R, StatsSnapshot) {
    trace::install_flight_recorder();
    let label = cell.label();
    match cell.make {
        MakeSet::Manual(make) => {
            let kind = cell.scheme.manual().expect("manual cell");
            let smr = kind.build();
            let ledger = Ledger::open();
            let r;
            {
                let set = make(smr.clone());
                r = body(&set);
                if kind.reclaims() {
                    assert!(
                        drain(&smr, 400),
                        "{label}: flush left {} objects unreclaimed",
                        smr.unreclaimed()
                    );
                }
            }
            let stats = smr.stats();
            // The structure freed its remaining nodes in Drop; the last
            // scheme handle frees anything still parked (the leaky
            // baseline's stash).
            drop(smr);
            ledger.assert_balanced(&label);
            (r, stats)
        }
        MakeSet::Orc(make) => {
            let base = orcgc::domain_stats();
            let ledger = Ledger::open();
            let r;
            {
                let set = make();
                r = body(&set);
            }
            settle_orc(&ledger, &label);
            (r, orcgc::domain_stats().since(&base))
        }
    }
}

/// Queue flavor of [`ledgered_set_cell`]. The runner drains the queue
/// empty after `body` returns (a queue teardown must not depend on Drop
/// alone to free linked items).
pub fn ledgered_queue_cell<R>(
    cell: &QueueCell,
    body: impl FnOnce(&DynQueue) -> R,
) -> (R, StatsSnapshot) {
    trace::install_flight_recorder();
    let label = cell.label();
    match cell.make {
        MakeQueue::Manual(make) => {
            let kind = cell.scheme.manual().expect("manual cell");
            let smr = kind.build();
            let ledger = Ledger::open();
            let r;
            {
                let q = make(smr.clone());
                r = body(&q);
                while q.dequeue().is_some() {}
                if kind.reclaims() {
                    assert!(
                        drain(&smr, 400),
                        "{label}: flush left {} objects unreclaimed",
                        smr.unreclaimed()
                    );
                }
            }
            let stats = smr.stats();
            drop(smr);
            ledger.assert_balanced(&label);
            (r, stats)
        }
        MakeQueue::Orc(make) => {
            let base = orcgc::domain_stats();
            let ledger = Ledger::open();
            let r;
            {
                let q = make();
                r = body(&q);
                while q.dequeue().is_some() {}
            }
            settle_orc(&ledger, &label);
            (r, orcgc::domain_stats().since(&base))
        }
    }
}

fn settle_orc(ledger: &Ledger, label: &str) {
    for _ in 0..400 {
        if ledger.delta().is_balanced() {
            break;
        }
        orcgc::flush_thread();
        std::thread::yield_now();
    }
    ledger.assert_balanced(label);
}

fn churn_set<T: ConcurrentSet<u64> + ?Sized>(set: &T, threads: usize, iters: u64, seed: u64) {
    std::thread::scope(|sc| {
        for t in 0..threads {
            let set = &*set;
            sc.spawn(move || {
                let mut rng = XorShift64::new(seed ^ ((t as u64 + 1) << 32) ^ iters);
                for _ in 0..iters {
                    let k = rng.next_bounded(64);
                    match rng.next_bounded(4) {
                        0 | 1 => {
                            set.add(k);
                        }
                        2 => {
                            set.remove(&k);
                        }
                        _ => {
                            set.contains(&k);
                        }
                    }
                }
            });
        }
    });
}

fn churn_queue<T: ConcurrentQueue<u64> + ?Sized>(q: &T, threads: usize, iters: u64, seed: u64) {
    std::thread::scope(|sc| {
        for t in 0..threads {
            let q = &*q;
            sc.spawn(move || {
                let mut rng = XorShift64::new(seed ^ ((t as u64 + 1) << 24));
                for i in 0..iters {
                    if rng.next_bounded(2) == 0 {
                        q.enqueue(i);
                    } else {
                        q.dequeue();
                    }
                }
            });
        }
    });
}

/// Leak-ledger churn battery for one (scheme × set) cell. Returns the
/// cell's stats snapshot (manual: the scheme instance; OrcGC: the domain
/// delta) so callers can assert telemetry invariants on top of the leak
/// balance.
pub fn churn_set_cell(cell: &SetCell, threads: usize, iters: u64) -> StatsSnapshot {
    ledgered_set_cell(cell, |set| churn_set(set, threads, iters, 0x5e7_c4e8)).1
}

/// Leak-ledger churn battery for one (scheme × queue) cell; see
/// [`churn_set_cell`].
pub fn churn_queue_cell(cell: &QueueCell, threads: usize, iters: u64) -> StatsSnapshot {
    ledgered_queue_cell(cell, |q| churn_queue(q, threads, iters, 0x9_c4e8)).1
}

/// Oversubscription soak for one set cell: `waves` successive spawn/join
/// waves of `threads_per_wave` short-lived threads (intended to be ≫
/// cores, see [`soak_threads`]) churn one shared structure. Exercises
/// registry tid reuse, per-thread state re-attachment, and thread-exit
/// orphan handoff — then the usual flush/drop/ledger teardown.
pub fn soak_set_cell(cell: &SetCell, waves: usize, threads_per_wave: usize, iters: u64) {
    assert!(
        threads_per_wave < registry::MAX_THREADS,
        "soak sizing exceeds the registry capacity"
    );
    let label = cell.label();
    ledgered_set_cell(cell, |set| {
        for wave in 0..waves {
            churn_set(set, threads_per_wave, iters, 0x50a_c000 + wave as u64);
            assert!(
                registry::registered_watermark() <= registry::MAX_THREADS,
                "{label}: registry watermark escaped its bound"
            );
        }
    });
}

/// ABA hammer over one set cell: a tiny key universe (8 keys) forces every
/// node address to be freed and re-allocated constantly, so a stale
/// (recycled) pointer surviving a CAS would corrupt the structure. Per-key
/// conservation counts (successful adds − successful removes) must equal
/// the final membership exactly.
pub fn aba_set_cell(cell: &SetCell, threads: usize, iters: u64) {
    const KEYS: u64 = 8;
    let label = cell.label();
    ledgered_set_cell(cell, |set| {
        let net: Vec<AtomicI64> = (0..KEYS).map(|_| AtomicI64::new(0)).collect();
        std::thread::scope(|sc| {
            for t in 0..threads {
                let set = &set;
                let net = &net;
                sc.spawn(move || {
                    let mut rng = XorShift64::new(0xaba ^ ((t as u64 + 1) << 40));
                    for _ in 0..iters {
                        let k = rng.next_bounded(KEYS);
                        if rng.next_bounded(2) == 0 {
                            if set.add(k) {
                                net[k as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        } else if set.remove(&k) {
                            net[k as usize].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (k, n) in net.iter().enumerate() {
            let n = n.load(Ordering::Relaxed);
            assert!(
                n == 0 || n == 1,
                "{label}: key {k} net count {n} — a node was lost or duplicated (ABA)"
            );
            assert_eq!(
                n == 1,
                set.contains(&(k as u64)),
                "{label}: key {k} membership disagrees with its conservation count"
            );
        }
    });
}

/// ABA hammer over one queue cell: producers enqueue a known arithmetic
/// series, consumers drain it; the dequeued sum must match exactly (no
/// lost or duplicated items) and the queue must end empty.
pub fn aba_queue_cell(cell: &QueueCell, producers: usize, consumers: usize, per: u64) {
    let label = cell.label();
    ledgered_queue_cell(cell, |q| {
        let want = producers as u64 * per;
        let expected: u64 = (0..want).sum();
        let sum = AtomicU64::new(0);
        let got = AtomicU64::new(0);
        std::thread::scope(|sc| {
            for p in 0..producers {
                let q = &q;
                sc.spawn(move || {
                    for i in 0..per {
                        q.enqueue(p as u64 * per + i);
                    }
                });
            }
            for _ in 0..consumers {
                let q = &q;
                let sum = &sum;
                let got = &got;
                sc.spawn(move || {
                    while got.load(Ordering::SeqCst) < want {
                        if let Some(v) = q.dequeue() {
                            sum.fetch_add(v, Ordering::SeqCst);
                            got.fetch_add(1, Ordering::SeqCst);
                        } else {
                            // Yield, don't spin: oversubscribed consumers
                            // busy-spinning on an empty queue starve the
                            // producers on small hosts.
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(
            sum.load(Ordering::SeqCst),
            expected,
            "{label}: dequeued sum mismatch — items were lost or duplicated (ABA)"
        );
        assert_eq!(q.dequeue(), None, "{label}: queue not empty after drain");
    });
}
