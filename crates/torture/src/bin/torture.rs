//! CI soak driver: runs the full torture battery across every scheme and
//! both benchmark structures, sized by `TORTURE_ITERS` / `TORTURE_THREADS`
//! (see [`torture::Config::from_env`]). Any violated bound or leaked
//! allocation panics, failing the run.

use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use structures::list::{MichaelList, MichaelListOrc};
use structures::queue::{MsQueue, MsQueueOrc};
use torture::{
    aba_hammer_queue, aba_hammer_set, assert_bounded, assert_unbounded, churn_orc_queue_ledgered,
    churn_orc_set_ledgered, churn_queue_ledgered, churn_set_ledgered, oversubscription_soak,
    stalled_reader_churn, Config, STALL_THRESHOLD,
};

fn stall_battery(cfg: &Config) {
    println!("== stalled-reader fault injection ==");
    let writers = 2;

    let r = stalled_reader_churn(
        HazardPointers::with_threshold(STALL_THRESHOLD),
        writers,
        cfg.stall_rounds,
    );
    report(&r);
    assert_bounded(&r, writers);

    let r = stalled_reader_churn(
        PassTheBuck::with_threshold(STALL_THRESHOLD),
        writers,
        cfg.stall_rounds,
    );
    report(&r);
    assert_bounded(&r, writers);

    let r = stalled_reader_churn(PassThePointer::new(), writers, cfg.stall_rounds);
    report(&r);
    assert_bounded(&r, writers);

    let r = stalled_reader_churn(
        HazardEras::with_threshold(STALL_THRESHOLD),
        writers,
        cfg.stall_rounds,
    );
    report(&r);
    assert_bounded(&r, writers);

    let r = stalled_reader_churn(Ebr::new(), writers, cfg.stall_rounds);
    report(&r);
    assert_unbounded(&r);

    let r = stalled_reader_churn(Leaky::new(), writers, cfg.stall_rounds);
    report(&r);
    assert_unbounded(&r);
}

fn report(r: &torture::StallReport) {
    println!(
        "  {:<5} churned {:>7}  peak {:>7}  stalled-flush {:>7}  drained {}",
        r.scheme, r.churned, r.max_unreclaimed, r.stalled_flush_unreclaimed, r.drained
    );
    println!("        stats: {}", r.stats.summary());
}

fn ledger_battery(cfg: &Config) {
    println!("== leak ledger (scheme × structure) ==");
    // Fresh scheme instance per ledgered section: each section must hold
    // the only handles so teardown frees (the leaky stash) land inside it.
    fn one<S: Smr + Clone>(make: impl Fn() -> S, cfg: &Config) {
        let name = make().name();
        let s = churn_set_ledgered::<S, MichaelList<u64, S>>(
            make(),
            &format!("{name}/MichaelList"),
            cfg.threads,
            cfg.iters,
        );
        println!("  {name:<5} MichaelList balanced  [{}]", s.summary());
        let s = churn_queue_ledgered::<S, MsQueue<u64, S>>(
            make(),
            &format!("{name}/MSQueue"),
            cfg.threads,
            cfg.iters,
        );
        println!("  {name:<5} MSQueue     balanced  [{}]", s.summary());
    }
    one(HazardPointers::new, cfg);
    one(PassTheBuck::new, cfg);
    one(PassThePointer::new, cfg);
    one(HazardEras::new, cfg);
    one(Ebr::new, cfg);
    one(Leaky::new, cfg);

    let s = churn_orc_set_ledgered(
        MichaelListOrc::<u64>::new,
        "OrcGC/MichaelListOrc",
        cfg.threads,
        cfg.iters,
    );
    println!("  OrcGC MichaelListOrc balanced  [{}]", s.summary());
    let s = churn_orc_queue_ledgered(
        MsQueueOrc::<u64>::new,
        "OrcGC/MSQueueOrc",
        cfg.threads,
        cfg.iters,
    );
    println!("  OrcGC MSQueueOrc     balanced  [{}]", s.summary());
}

fn soak_battery(cfg: &Config) {
    println!("== oversubscription soak ==");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = (4 * cores).min(48);
    let iters = (cfg.iters / 4).max(500);
    oversubscription_soak::<_, MichaelList<u64, _>>(
        PassThePointer::new(),
        "PTP/soak",
        cfg.waves,
        threads,
        iters,
    );
    println!("  PTP   {} waves × {threads} threads balanced", cfg.waves);
    oversubscription_soak::<_, MichaelList<u64, _>>(
        HazardPointers::new(),
        "HP/soak",
        cfg.waves,
        threads,
        iters,
    );
    println!("  HP    {} waves × {threads} threads balanced", cfg.waves);
    oversubscription_soak::<_, MichaelList<u64, _>>(
        Ebr::new(),
        "EBR/soak",
        cfg.waves,
        threads,
        iters,
    );
    println!("  EBR   {} waves × {threads} threads balanced", cfg.waves);
}

fn aba_battery(cfg: &Config) {
    println!("== ABA hammer ==");
    fn one<S: Smr + Clone>(make: impl Fn() -> S, cfg: &Config) {
        let name = make().name();
        aba_hammer_set::<S, MichaelList<u64, S>>(
            make(),
            &format!("{name}/aba-list"),
            cfg.threads,
            cfg.iters,
        );
        aba_hammer_queue::<S, MsQueue<u64, S>>(
            make(),
            &format!("{name}/aba-queue"),
            2,
            2,
            cfg.iters,
        );
        println!("  {name:<5} list+queue conserved");
    }
    one(HazardPointers::new, cfg);
    one(PassTheBuck::new, cfg);
    one(PassThePointer::new, cfg);
    one(HazardEras::new, cfg);
    one(Ebr::new, cfg);
    one(Leaky::new, cfg);
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "torture: iters={} threads={} stall_rounds={} waves={}",
        cfg.iters, cfg.threads, cfg.stall_rounds, cfg.waves
    );
    stall_battery(&cfg);
    ledger_battery(&cfg);
    soak_battery(&cfg);
    aba_battery(&cfg);
    println!("torture: all batteries passed");
}
