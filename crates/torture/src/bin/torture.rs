//! CI soak driver: runs the full torture battery over the
//! (structure × scheme) registry matrix, sized by `TORTURE_ITERS` /
//! `TORTURE_THREADS` (see [`torture::Config::from_env`]) and sliced by
//! `ORC_SCHEMES` / `ORC_STRUCTS` (see
//! [`structures::registry::MatrixFilter::from_env`] — unknown names fail
//! fast, listing the valid ones). Any violated bound or leaked
//! allocation panics, failing the run.
//!
//! `--json <path>` additionally writes one JSON line per battery cell
//! (stall profiles and ledger stats, each with a nested `"stats"`
//! object in the `StatsSnapshot::json` layout), so CI artifact steps
//! collect machine-readable results without shell redirection.

use reclaim::{SchemeKind, StatsSnapshot};
use structures::registry::MatrixFilter;
use torture::{
    aba_queue_cell, aba_set_cell, assert_stall_profile, churn_queue_cell, churn_set_cell,
    soak_set_cell, soak_threads, stall_cell, Config,
};

/// JSON lines accumulated by the batteries for `--json`.
type JsonSink = Vec<String>;

fn stall_battery(filter: &MatrixFilter, cfg: &Config, sink: &mut JsonSink) {
    println!("== stalled-reader fault injection ==");
    let writers = 2;
    for kind in filter.manual_schemes() {
        let r = stall_cell(kind, writers, cfg.stall_rounds);
        report(&r);
        sink.push(format!(
            "{{\"battery\":\"stall\",\"scheme\":\"{}\",\"churned\":{},\
             \"max_unreclaimed\":{},\"stalled_flush_unreclaimed\":{},\
             \"drained\":{},\"stats\":{}}}",
            r.scheme,
            r.churned,
            r.max_unreclaimed,
            r.stalled_flush_unreclaimed,
            r.drained,
            r.stats.json()
        ));
        assert_stall_profile(kind, &r, writers);
    }
}

fn report(r: &torture::StallReport) {
    println!(
        "  {:<5} churned {:>7}  peak {:>7}  stalled-flush {:>7}  drained {}",
        r.scheme, r.churned, r.max_unreclaimed, r.stalled_flush_unreclaimed, r.drained
    );
    println!("        stats: {}", r.stats.summary());
}

fn ledger_battery(filter: &MatrixFilter, cfg: &Config, sink: &mut JsonSink) {
    println!("== leak ledger (scheme × structure) ==");
    println!("  {}", StatsSnapshot::table_header("cell"));
    let mut record = |label: String, s: &StatsSnapshot| {
        println!("  {}", s.table_row(&label, None));
        sink.push(format!(
            "{{\"battery\":\"ledger\",\"cell\":\"{label}\",\"stats\":{}}}",
            s.json()
        ));
    };
    // Fresh scheme instance per ledgered cell (the cell runners own
    // this): each cell must hold the only handles so teardown frees (the
    // leaky stash) land inside its ledger window.
    for cell in filter.set_cells() {
        let s = churn_set_cell(&cell, cfg.threads, cfg.iters);
        record(cell.label(), &s);
    }
    for cell in filter.queue_cells() {
        let s = churn_queue_cell(&cell, cfg.threads, cfg.iters);
        record(cell.label(), &s);
    }
}

/// Schemes worth soaking under oversubscription: one per reclamation
/// style (handover dribble, scan avalanche, epoch bins). The soak is
/// about registry tid churn, which the structure barely affects — so
/// restrict it to set cells of these schemes rather than the full matrix.
const SOAK_SCHEMES: [SchemeKind; 3] = [SchemeKind::Ptp, SchemeKind::Hp, SchemeKind::Ebr];

fn soak_battery(filter: &MatrixFilter, cfg: &Config) {
    println!("== oversubscription soak ==");
    let threads = soak_threads();
    let iters = (cfg.iters / 4).max(500);
    for cell in filter.set_cells() {
        let soaked = cell
            .scheme
            .manual()
            .is_some_and(|kind| SOAK_SCHEMES.contains(&kind));
        if !soaked {
            continue;
        }
        soak_set_cell(&cell, cfg.waves, threads, iters);
        println!(
            "  {:<22} {} waves × {threads} threads balanced",
            cell.label(),
            cfg.waves
        );
    }
}

fn aba_battery(filter: &MatrixFilter, cfg: &Config) {
    println!("== ABA hammer ==");
    for cell in filter.set_cells() {
        aba_set_cell(&cell, cfg.threads, cfg.iters);
        println!("  {:<22} set conserved", cell.label());
    }
    for cell in filter.queue_cells() {
        aba_queue_cell(&cell, 2, 2, cfg.iters);
        println!("  {:<22} queue conserved", cell.label());
    }
}

/// Parses the CLI: `torture [--json <path>]`. Anything else is a usage
/// error (exit 2) so CI typos fail loudly instead of silently running
/// the default battery.
fn parse_args() -> Option<String> {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("torture: --json requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("torture: unknown argument {other:?} (usage: torture [--json <path>])");
                std::process::exit(2);
            }
        }
    }
    json_path
}

fn main() {
    // Any battery assertion that panics dumps the merged orc-trace tail
    // (the flight recorder) before the process dies.
    orc_util::trace::install_flight_recorder();
    let json_path = parse_args();
    let filter = match MatrixFilter::from_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("torture: {e}");
            std::process::exit(2);
        }
    };
    let cfg = Config::from_env();
    println!(
        "torture: iters={} threads={} stall_rounds={} waves={}",
        cfg.iters, cfg.threads, cfg.stall_rounds, cfg.waves
    );
    println!(
        "torture: schemes [{}], {} set cells, {} queue cells",
        filter
            .schemes()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(", "),
        filter.set_cells().len(),
        filter.queue_cells().len(),
    );
    let mut sink = JsonSink::new();
    stall_battery(&filter, &cfg, &mut sink);
    ledger_battery(&filter, &cfg, &mut sink);
    soak_battery(&filter, &cfg);
    aba_battery(&filter, &cfg);
    if let Some(path) = json_path {
        let mut doc = sink.join("\n");
        doc.push('\n');
        match std::fs::write(&path, doc) {
            Ok(()) => println!("torture: wrote {} JSON lines to {path}", sink.len()),
            Err(e) => {
                eprintln!("torture: cannot write --json {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Ok(path) = std::env::var("ORC_TRACE_OUT") {
        let path = std::path::PathBuf::from(path);
        match orc_util::trace::export_chrome(&path) {
            Ok(()) => println!(
                "torture: wrote Perfetto trace to {} ({} events, {} overwritten)",
                path.display(),
                orc_util::trace::events_recorded(),
                orc_util::trace::events_dropped()
            ),
            Err(e) => {
                eprintln!("torture: ORC_TRACE_OUT export failed: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("torture: all batteries passed");
}
