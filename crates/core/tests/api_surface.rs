//! Integration tests for the less-traveled parts of the orcgc public API:
//! poison sentinels, exchange operations, guard sharing, and slot
//! exhaustion behavior.

use orcgc::{is_poison, make_orc, poison_word, OrcAtomic, OrcPtr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Probe(Arc<AtomicUsize>);
impl Drop for Probe {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn probe() -> (Arc<AtomicUsize>, OrcPtr<Probe>) {
    let n = Arc::new(AtomicUsize::new(0));
    let p = make_orc(Probe(n.clone()));
    (n, p)
}

#[test]
fn poisoned_constructor_and_loads() {
    let link: OrcAtomic<Probe> = OrcAtomic::poisoned();
    assert!(is_poison(link.load_raw()));
    let g = link.load();
    assert!(g.is_poison());
    assert!(!g.is_null());
    assert!(g.as_ref().is_none());
}

#[test]
fn cas_poison_counts_correctly() {
    let (drops, p) = probe();
    let link = OrcAtomic::new(&p);
    drop(p);
    let w = link.load_raw();
    assert!(link.cas_poison(w), "poisoning a live link");
    assert!(is_poison(link.load_raw()));
    assert_eq!(
        drops.load(Ordering::SeqCst),
        1,
        "poison displaced the last hard link"
    );
    // Replacing poison with a new object.
    let (d2, q) = probe();
    assert!(link.cas_tagged(poison_word(), &q, 0));
    drop(q);
    drop(link);
    assert_eq!(d2.load(Ordering::SeqCst), 1);
}

#[test]
fn cas_null_releases_the_link() {
    let (drops, p) = probe();
    let link = OrcAtomic::new(&p);
    drop(p);
    let w = link.load_raw();
    assert!(link.cas_null(w));
    assert!(link.load().is_null());
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn swap_chains_preserve_every_object() {
    let (d1, p1) = probe();
    let (d2, p2) = probe();
    let (d3, p3) = probe();
    let link = OrcAtomic::new(&p1);
    drop(p1);
    let old1 = link.swap(&p2); // returns guard on object 1
    drop(p2);
    let old2 = link.swap(&p3); // returns guard on object 2
    drop(p3);
    assert_eq!(d1.load(Ordering::SeqCst), 0);
    assert_eq!(d2.load(Ordering::SeqCst), 0);
    drop(old1);
    assert_eq!(d1.load(Ordering::SeqCst), 1);
    drop(old2);
    assert_eq!(d2.load(Ordering::SeqCst), 1);
    drop(link);
    assert_eq!(d3.load(Ordering::SeqCst), 1);
}

#[test]
fn take_then_reinsert_roundtrip() {
    let (drops, p) = probe();
    let link = OrcAtomic::new(&p);
    drop(p);
    for _ in 0..50 {
        let g = link.take();
        assert!(!g.is_null());
        assert!(link.load().is_null());
        link.store(&g);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }
    drop(link);
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn concurrent_swaps_hand_objects_across_threads() {
    let (drops, p) = probe();
    let made = Arc::new(AtomicUsize::new(1));
    let link = Arc::new(OrcAtomic::new(&p));
    drop(p);
    let drops_outer = drops.clone();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let link = link.clone();
            let drops = drops.clone();
            let made = made.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let fresh = make_orc(Probe(drops.clone()));
                    made.fetch_add(1, Ordering::SeqCst);
                    let old = link.swap(&fresh);
                    drop(old); // may collect an object another thread made
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    link.store_null();
    orcgc::flush_thread();
    assert_eq!(
        drops_outer.load(Ordering::SeqCst),
        made.load(Ordering::SeqCst)
    );
}

#[test]
fn guard_clone_is_deep_sharing_not_reprotection() {
    let p = make_orc(1234u64);
    let clones: Vec<_> = (0..64).map(|_| p.clone()).collect();
    for c in &clones {
        assert_eq!(**c, 1234);
        assert!(c.same_object(&p));
    }
    // 64 clones share ONE hazard slot: plenty of slots remain for fresh
    // guards (MAX_HPS is 80, so 70 fresh loads would otherwise blow up).
    let link = OrcAtomic::new(&p);
    let fresh: Vec<_> = (0..70).map(|_| link.load()).collect();
    assert_eq!(fresh.len(), 70);
    drop(fresh);
    drop(clones);
    drop(p);
    drop(link);
}

#[test]
fn slot_exhaustion_panics_with_clear_message() {
    let result = std::thread::spawn(|| {
        let link = OrcAtomic::new(&make_orc(1u64));
        let mut guards = Vec::new();
        for _ in 0..200 {
            guards.push(link.load()); // each load claims a fresh slot
        }
    })
    .join();
    let err = result.expect_err("must panic on slot exhaustion");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("hazard slots"),
        "panic message should mention hazard slots: {msg}"
    );
}

#[test]
fn null_and_poison_guards_cost_no_slots() {
    let null_link: OrcAtomic<u64> = OrcAtomic::null();
    let poison_link: OrcAtomic<u64> = OrcAtomic::poisoned();
    // Far more than MAX_HPS concurrent guards: fine, none hold a slot.
    let guards: Vec<_> = (0..500)
        .map(|i| {
            if i % 2 == 0 {
                null_link.load()
            } else {
                poison_link.load()
            }
        })
        .collect();
    assert!(guards.iter().step_by(2).all(|g| g.is_null()));
    assert!(guards.iter().skip(1).step_by(2).all(|g| g.is_poison()));
}

#[test]
fn orc_diagnostics_expose_link_counts() {
    let p = make_orc(7u64);
    let w0 = p.orc_word().unwrap();
    assert_eq!(orcgc::word::link_count(w0), 0);
    let l1 = OrcAtomic::new(&p);
    assert_eq!(orcgc::word::link_count(p.orc_word().unwrap()), 1);
    let l2 = OrcAtomic::new(&p);
    assert_eq!(orcgc::word::link_count(p.orc_word().unwrap()), 2);
    drop(l1);
    assert_eq!(orcgc::word::link_count(p.orc_word().unwrap()), 1);
    drop(l2);
    assert_eq!(orcgc::word::link_count(p.orc_word().unwrap()), 0);
}

#[test]
fn store_tagged_preserves_mark_semantics() {
    let (drops, p) = probe();
    let link = OrcAtomic::new(&p);
    // Install the same object with a mark: counter-neutral overall.
    link.store_tagged(&p, orc_util::marked::MARK);
    assert!(orc_util::marked::is_marked(link.load_raw()));
    let g = link.load();
    assert!(g.is_marked());
    assert!(g.same_object(&p));
    drop(g);
    drop(p);
    assert_eq!(drops.load(Ordering::SeqCst), 0);
    drop(link);
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}
