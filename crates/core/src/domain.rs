//! The `PassThePointerOrcGC` machinery (paper Algorithms 3, 5 and 6).
//!
//! One process-wide [`Domain`] holds, per thread: the hazard-pointer array
//! `hp[MAX_HPS]`, the matching `handovers[MAX_HPS]` array, the
//! `used_haz` slot-sharing counts, and the recursive-retire state. Slot 0
//! of every row is reserved as the *scratch* slot used internally by
//! `decrement_orc` and `clear_bit_retired` (Proposition 1: the `_orc` word
//! may only be modified while the object is published in some hazard
//! slot); user-visible [`OrcPtr`](crate::OrcPtr) guards always occupy
//! indices ≥ 1.
//!
//! Deviations from the C++ listing, with rationale:
//!
//! * `clear` (Algorithm 5, lines 80–90) additionally **drains the handover
//!   entry** of the slot being released, and internal scratch uses drain
//!   `handovers[0]`, so parked objects are never stranded on a slot that
//!   stops being used. The paper notes objects "may be left indefinitely"
//!   otherwise; draining preserves the bound and makes reclamation exact.
//! * The thread claiming `BRETIRED` nulls its own protecting slot *before*
//!   entering `retire`, so the hand-over scan does not immediately park the
//!   object back on the claimant.

use crate::header::OrcHeader;
use crate::word::{is_zero_retired, is_zero_unclaimed, BRETIRED, SEQ};
use orc_util::atomics::{AtomicU64, AtomicUsize, Ordering};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{chk_hooks, registry, trace_event_at, track, CachePadded};
use std::cell::UnsafeCell;

/// Hazard slots per thread (the paper's `maxHPs` capacity; the live
/// watermark is tracked dynamically in [`Domain::max_hps`]). Deep skip-list
/// traversals hold two guards per level, so this is sized generously.
pub const MAX_HPS: usize = 80;

/// Sentinel meaning "this OrcPtr occupies no hazard slot" (null/poison).
pub const NO_IDX: u16 = u16::MAX;

/// Per-thread state (the paper's `TLInfo`).
pub(crate) struct TlInfo {
    /// Published hazard pointers (unmarked `*mut OrcHeader` words; 0 = empty).
    pub(crate) hp: [AtomicUsize; MAX_HPS],
    /// Objects whose reclamation was handed over to this slot's protector.
    pub(crate) handovers: [AtomicUsize; MAX_HPS],
    /// Slot-sharing counts; owner-thread access only.
    used_haz: UnsafeCell<[u32; MAX_HPS]>,
    /// Owner-thread-only recursive-retire state.
    retire_started: UnsafeCell<bool>,
    recursive_list: UnsafeCell<Vec<*mut OrcHeader>>,
}

// SAFETY: owner-discipline — `used_haz`, `retire_started` and
// `recursive_list` are only touched by the owning tid (enforced by the
// `tid` parameters below); `hp`/`handovers` are atomics.
unsafe impl Sync for TlInfo {}
// SAFETY: see the `Sync` impl above; the raw pointers inside
// `recursive_list` are domain-owned headers, not thread-affine state.
unsafe impl Send for TlInfo {}

impl TlInfo {
    fn new() -> Self {
        Self {
            hp: std::array::from_fn(|_| AtomicUsize::new(0)),
            handovers: std::array::from_fn(|_| AtomicUsize::new(0)),
            used_haz: UnsafeCell::new([0; MAX_HPS]),
            retire_started: UnsafeCell::new(false),
            recursive_list: UnsafeCell::new(Vec::new()),
        }
    }
}

/// The global OrcGC domain (`PassThePointerOrcGC` + `g_ptp` in the paper).
pub struct Domain {
    pub(crate) tl: Box<[CachePadded<TlInfo>]>,
    /// Watermark of the highest slot index ever used, bounding scans.
    pub(crate) max_hps: AtomicUsize,
    /// Retired-but-not-deleted high-water metrics.
    retired_now: AtomicU64,
    retired_max: AtomicU64,
    /// Reclamation telemetry (orc-stats); see [`Domain::stats`].
    stats: SchemeStats,
}

// SAFETY: `Domain` is a table of `TlInfo` rows (thread-safe per the impl
// above) plus atomics; the auto-impl is only blocked by `TlInfo`'s cells.
unsafe impl Sync for Domain {}
// SAFETY: as for `Sync` — no thread-affine state.
unsafe impl Send for Domain {}

impl Domain {
    fn new() -> Self {
        Self {
            tl: (0..registry::max_threads())
                .map(|_| CachePadded::new(TlInfo::new()))
                .collect(),
            max_hps: AtomicUsize::new(1),
            retired_now: AtomicU64::new(0),
            retired_max: AtomicU64::new(0),
            stats: SchemeStats::new(),
        }
    }

    #[inline]
    pub(crate) fn tl(&self, tid: usize) -> &TlInfo {
        &self.tl[tid]
    }

    // ---- accounting ---------------------------------------------------

    #[inline]
    pub(crate) fn note_retired(&self, tid: usize, h: *mut OrcHeader) {
        chk_hooks::on_retire(h as usize);
        if orc_util::stats::enabled() {
            // SAFETY: the caller holds `h`'s BRETIRED claim, so the header
            // is alive for the whole call.
            unsafe { &(*h).retire_ns }.store(trace::now_ns(), Ordering::Relaxed);
        }
        trace_event_at!(
            tid,
            EventKind::BRetired,
            h as usize,
            trace::next_retire_seq()
        );
        let now = self.retired_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.retired_max.fetch_max(now, Ordering::Relaxed);
        self.stats.bump(tid, Event::Retire);
        self.stats.note_unreclaimed(now);
        track::global().on_retire();
    }

    /// A claim relinquished without deletion (`clearBitRetired` found the
    /// counter nonzero). Counted as a reclaim so that at quiescence
    /// `retires - reclaims == unreclaimed()` holds exactly.
    #[inline]
    fn note_unretired(&self, tid: usize, h: *mut OrcHeader) {
        chk_hooks::on_unretire(h as usize);
        if orc_util::stats::enabled() {
            // SAFETY: the caller still holds `h` pinned (scratch slot), so
            // the header is alive; the claim it stamps is being given back.
            unsafe { &(*h).retire_ns }.store(0, Ordering::Relaxed);
        }
        trace_event_at!(tid, EventKind::Unretire, h as usize);
        self.retired_now.fetch_sub(1, Ordering::Relaxed);
        self.stats.bump(tid, Event::Reclaim);
        track::global().on_reclaim();
    }

    #[inline]
    fn note_destroyed(&self, tid: usize) {
        self.retired_now.fetch_sub(1, Ordering::Relaxed);
        self.stats.bump(tid, Event::Reclaim);
        track::global().on_reclaim();
    }

    /// Aggregated domain telemetry (see [`crate::domain_stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Objects currently claimed-retired but not yet deleted.
    pub fn unreclaimed(&self) -> u64 {
        self.retired_now.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Domain::unreclaimed`].
    pub fn max_unreclaimed(&self) -> u64 {
        self.retired_max.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark (between benchmark phases).
    pub fn reset_max_unreclaimed(&self) {
        self.retired_max
            .store(self.retired_now.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    // ---- slot management (Algorithm 6) --------------------------------

    /// `getNewIdx`: claims the lowest unused slot index ≥ 1.
    pub(crate) fn get_new_idx(&self, tid: usize) -> u16 {
        // SAFETY: `used_haz` is owner-thread-only and `tid` is the caller's
        // own row, so no other reference to this array exists.
        let used = unsafe { &mut *self.tl(tid).used_haz.get() };
        for (idx, u) in used.iter_mut().enumerate().skip(1) {
            if *u == 0 {
                *u = 1;
                let mut cur = self.max_hps.load(Ordering::Relaxed);
                while cur <= idx {
                    match self.max_hps.compare_exchange(
                        cur,
                        idx + 1,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(c) => cur = c,
                    }
                }
                return idx as u16;
            }
        }
        panic!(
            "orcgc: all {MAX_HPS} hazard slots of this thread are in use; \
             too many live OrcPtr guards"
        );
    }

    /// `usingIdx`: shares an already-claimed slot.
    #[inline]
    pub(crate) fn using_idx(&self, tid: usize, idx: u16) {
        debug_assert_ne!(idx, 0);
        // SAFETY: `used_haz` is owner-thread-only; `tid` is the caller's row.
        let used = unsafe { &mut *self.tl(tid).used_haz.get() };
        used[idx as usize] += 1;
    }

    #[cfg(test)]
    pub(crate) fn used_count(&self, tid: usize, idx: u16) -> u32 {
        // SAFETY: `used_haz` is owner-thread-only; tests pass their own tid.
        unsafe { (*self.tl(tid).used_haz.get())[idx as usize] }
    }

    // ---- protection ----------------------------------------------------

    /// The protect loop: publish `unmark(word)` in `hp[tid][idx]`, re-read
    /// `addr`, repeat until stable. Sentinels (null/poison) publish 0.
    #[inline]
    pub(crate) fn get_protected(&self, tid: usize, idx: u16, addr: &AtomicUsize) -> usize {
        let slot = &self.tl(tid).hp[idx as usize];
        let mut word = addr.load(Ordering::SeqCst);
        loop {
            slot.swap(crate::ptr::protectable(word), Ordering::SeqCst);
            let cur = addr.load(Ordering::SeqCst);
            if cur == word {
                // Stalled-reader injection point (torture harness): fires
                // with the hazard published, i.e. while this thread pins
                // the object — OrcGC's O(H·t) bound must hold regardless.
                orc_util::stall::hit(orc_util::stall::StallPoint::Protect);
                return word;
            }
            self.stats.bump(tid, Event::ProtectRetry);
            trace_event_at!(tid, EventKind::ProtectRetry, crate::ptr::protectable(cur));
            word = cur;
        }
    }

    /// Publishes an already-safe pointer (creation via `make_orc`, or
    /// exchange results whose liveness is guaranteed by the caller).
    #[inline]
    pub(crate) fn publish(&self, tid: usize, idx: u16, word: usize) {
        self.tl(tid).hp[idx as usize].swap(crate::ptr::protectable(word), Ordering::SeqCst);
    }

    // ---- clear (Algorithm 5, lines 80–90, plus handover drain) ---------

    /// Releases one use of `idx`, which protects `word`. When the last use
    /// goes away: if the object's counter is at zero, claim BRETIRED and
    /// retire it; then free the slot and continue the retirement of
    /// anything parked in the slot's handover entry.
    pub(crate) fn clear(&self, tid: usize, idx: u16, word: usize) {
        debug_assert_ne!(idx, 0);
        // SAFETY: `used_haz` is owner-thread-only; `tid` is the caller's row.
        let used = unsafe { &mut *self.tl(tid).used_haz.get() };
        let u = &mut used[idx as usize];
        debug_assert!(*u > 0);
        *u -= 1;
        if *u != 0 {
            return;
        }
        let target = crate::ptr::protectable(word);
        if target != 0 {
            let h = target as *mut OrcHeader;
            // SAFETY: `word` is still published in our hazard slot, so the
            // object cannot have been deleted (Proposition 1).
            let lorc = unsafe { (*h).orc.load(Ordering::SeqCst) };
            if is_zero_unclaimed(lorc) {
                trace_event_at!(tid, EventKind::OrcZero, h as usize);
                // SAFETY: as above — our slot still pins `h`.
                if unsafe {
                    (*h).orc
                        .compare_exchange(lorc, lorc + BRETIRED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                } {
                    self.note_retired(tid, h);
                    // Drop our protection before retiring so the scan does
                    // not park the object straight back onto this slot.
                    self.tl(tid).hp[idx as usize].store(0, Ordering::Release);
                    self.retire(tid, h);
                }
            }
        }
        self.tl(tid).hp[idx as usize].store(0, Ordering::Release);
        self.drain_handover(tid, idx as usize);
    }

    /// Takes whatever is parked on `handovers[tid][idx]` and continues its
    /// retirement (we inherit the BRETIRED claim with it).
    #[inline]
    pub(crate) fn drain_handover(&self, tid: usize, idx: usize) {
        if self.tl(tid).handovers[idx].load(Ordering::SeqCst) != 0 {
            let parked = self.tl(tid).handovers[idx].swap(0, Ordering::SeqCst);
            if parked != 0 {
                self.retire(tid, parked as *mut OrcHeader);
            }
        }
    }

    // ---- orc-counter transitions (Algorithm 4 helpers) ------------------

    /// `incrementOrc`: the caller must hold protection on `h` (an OrcPtr).
    pub(crate) fn increment_orc(&self, tid: usize, h: *mut OrcHeader) {
        if h.is_null() {
            return;
        }
        // SAFETY: the caller holds an OrcPtr protection on `h` (documented
        // contract), so the header is alive for the whole call.
        let lorc = unsafe { (*h).orc.fetch_add(SEQ + 1, Ordering::SeqCst) }.wrapping_add(SEQ + 1);
        if !is_zero_unclaimed(lorc) {
            return;
        }
        // Incremented from -1 back to zero: the link we just counted has
        // already been removed. Try to claim the retire.
        trace_event_at!(tid, EventKind::OrcZero, h as usize);
        // SAFETY: still under the caller's protection, as above.
        if unsafe {
            (*h).orc
                .compare_exchange(lorc, lorc + BRETIRED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        } {
            self.note_retired(tid, h);
            self.retire(tid, h);
        }
    }

    /// `decrementOrc`: `h` may be otherwise unprotected, so it is published
    /// in the scratch slot 0 first (Proposition 1).
    pub(crate) fn decrement_orc(&self, tid: usize, h: *mut OrcHeader) {
        if h.is_null() {
            return;
        }
        let scratch = &self.tl(tid).hp[0];
        scratch.swap(h as usize, Ordering::SeqCst);
        // SAFETY: `h` was just published in scratch slot 0 and the caller
        // held a counted (or protected) link, so no deleter can free it
        // before our swap is visible (Proposition 1).
        let lorc = unsafe { (*h).orc.fetch_add(SEQ - 1, Ordering::SeqCst) }.wrapping_add(SEQ - 1);
        let mut claimed = false;
        if is_zero_unclaimed(lorc) {
            trace_event_at!(tid, EventKind::OrcZero, h as usize);
            // SAFETY: still pinned by scratch slot 0.
            claimed = unsafe {
                (*h).orc
                    .compare_exchange(lorc, lorc + BRETIRED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            };
        }
        if claimed {
            self.note_retired(tid, h);
            scratch.store(0, Ordering::Release);
            self.retire(tid, h);
        } else {
            scratch.store(0, Ordering::Release);
        }
        // A concurrent retirer may have parked an object on our scratch
        // slot while it was published.
        self.drain_handover(tid, 0);
    }

    // ---- retire (Algorithm 5, lines 92–118) ------------------------------

    /// Retires `h` (whose BRETIRED claim we hold): verify Lemma 1 — counter
    /// at zero and no hazard pointer published, atomically via the
    /// sequence — handing the object over to any protector found, then
    /// delete. Deletion may cascade through the object's `OrcAtomic`
    /// fields; recursion is flattened through `recursive_list`.
    pub(crate) fn retire(&self, tid: usize, first: *mut OrcHeader) {
        let tl = self.tl(tid);
        // SAFETY: `retire_started` is owner-thread-only; `tid` is ours.
        let started = unsafe { &mut *tl.retire_started.get() };
        if *started {
            // SAFETY: `recursive_list` is owner-thread-only. We are inside
            // the outer `retire` of this same thread (started == true), and
            // that frame only touches the list between objects, never
            // across this nested call.
            unsafe { (*tl.recursive_list.get()).push(first) };
            return;
        }
        *started = true;
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        let mut destroyed = 0u64;
        let mut h = first;
        let mut i = 0usize;
        loop {
            'obj: while !h.is_null() {
                // SAFETY: we hold `h`'s BRETIRED claim (ours or inherited
                // through a handover), which keeps the header alive.
                let mut lorc = unsafe { (*h).orc.load(Ordering::SeqCst) };
                if !is_zero_retired(lorc) {
                    // The counter moved after the claim: relinquish and
                    // possibly re-claim.
                    lorc = self.clear_bit_retired(tid, h);
                    if lorc == 0 {
                        break 'obj;
                    }
                }
                loop {
                    if self.try_handover(tid, &mut h) {
                        continue 'obj;
                    }
                    // SAFETY: BRETIRED claim held, as above.
                    let lorc2 = unsafe { (*h).orc.load(Ordering::SeqCst) };
                    if lorc2 == lorc {
                        // Lemma 1 established: delete. The value's own
                        // OrcAtomic fields drop here, feeding
                        // recursive_list through nested retire calls.
                        if orc_util::stats::enabled() {
                            // SAFETY: `h` is still live here (freed on the
                            // next line).
                            let at = unsafe { &(*h).retire_ns }.load(Ordering::Relaxed);
                            if at != 0 {
                                self.stats
                                    .reclaim_delay(tid, trace::now_ns().saturating_sub(at));
                            }
                        }
                        // SAFETY: counter at zero, claim held, and the
                        // hazard scan found no protector — `h` is ours to
                        // free, exactly once.
                        unsafe { OrcHeader::destroy(h) };
                        self.note_destroyed(tid);
                        destroyed += 1;
                        break 'obj;
                    }
                    if !is_zero_retired(lorc2) {
                        lorc = self.clear_bit_retired(tid, h);
                        if lorc == 0 {
                            break 'obj;
                        }
                    } else {
                        lorc = lorc2;
                    }
                }
            }
            // SAFETY: owner-thread-only list; nested `retire` calls (which
            // also borrow it) cannot be live here — we are between objects.
            let list = unsafe { &mut *tl.recursive_list.get() };
            if list.len() == i {
                break;
            }
            h = list[i];
            i += 1;
        }
        // SAFETY: as above — the drain loop is done, no other borrow exists.
        unsafe { (*tl.recursive_list.get()).clear() };
        *started = false;
        // One retire pass = one reclamation batch (the recursive cascade
        // included), matching the batch semantics of the manual schemes.
        self.stats.batch(tid, destroyed);
        if destroyed != 0 {
            trace_event_at!(tid, EventKind::ReclaimBatch, destroyed);
        }
        trace_event_at!(tid, EventKind::ScanEnd, destroyed);
    }

    /// `tryHandover` (Algorithm 6): scan every published hazard pointer up
    /// to the slot watermark; on a match, exchange the object into the
    /// matching handover entry and take over whatever was parked there.
    fn try_handover(&self, tid: usize, h: &mut *mut OrcHeader) -> bool {
        let lmax = self.max_hps.load(Ordering::Acquire);
        let wm = registry::registered_watermark();
        let word = *h as usize;
        for it in 0..wm {
            let tl = self.tl(it);
            for idx in 0..lmax {
                if tl.hp[idx].load(Ordering::SeqCst) == word {
                    let prev = tl.handovers[idx].swap(word, Ordering::SeqCst);
                    self.stats.bump(tid, Event::Handover);
                    trace_event_at!(tid, EventKind::Handover, word);
                    *h = prev as *mut OrcHeader;
                    return true;
                }
            }
        }
        false
    }

    /// `clearBitRetired` (Algorithm 6): momentarily relinquish the claim;
    /// if the counter is (still) at zero, re-claim and return the fresh
    /// word; otherwise return 0 — some later transition will re-retire.
    fn clear_bit_retired(&self, tid: usize, h: *mut OrcHeader) -> u64 {
        let scratch = &self.tl(tid).hp[0];
        scratch.swap(h as usize, Ordering::SeqCst);
        // SAFETY: we hold `h`'s BRETIRED claim *and* just published it in
        // scratch slot 0, so the header is alive.
        let lorc = unsafe { (*h).orc.fetch_sub(BRETIRED, Ordering::SeqCst) } - BRETIRED;
        let mut reclaimed = false;
        if is_zero_unclaimed(lorc) {
            trace_event_at!(tid, EventKind::OrcZero, h as usize);
            // SAFETY: still pinned by scratch slot 0.
            reclaimed = unsafe {
                (*h).orc
                    .compare_exchange(lorc, lorc + BRETIRED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            };
        }
        let out = if reclaimed {
            lorc + BRETIRED
        } else {
            self.note_unretired(tid, h);
            0
        };
        scratch.store(0, Ordering::Release);
        self.drain_handover(tid, 0);
        out
    }

    // ---- thread lifecycle ----------------------------------------------

    /// Clears all hazard slots of `tid` and drains every handover entry.
    /// Runs on thread exit and from [`crate::flush_thread`].
    pub(crate) fn flush_thread_slots(&self, tid: usize) {
        self.stats.bump(tid, Event::Flush);
        let lmax = self.max_hps.load(Ordering::Acquire);
        for idx in 0..lmax {
            // Only release slots not currently claimed by live OrcPtrs.
            // SAFETY: `used_haz` is owner-thread-only; this runs on `tid`'s
            // own thread (flush_thread or its exit hook).
            let in_use = unsafe { (*self.tl(tid).used_haz.get())[idx] } != 0;
            if !in_use {
                self.tl(tid).hp[idx].store(0, Ordering::Release);
                self.drain_handover(tid, idx);
            }
        }
    }
}

static GLOBAL: std::sync::OnceLock<Domain> = std::sync::OnceLock::new();

// Per-thread flag: has this thread installed its domain exit hook?
thread_local! {
    static EXIT_HOOKED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The process-wide OrcGC domain.
#[inline]
pub fn domain() -> &'static Domain {
    GLOBAL.get_or_init(Domain::new)
}

/// The calling thread's tid, with the domain exit hook installed.
#[inline]
pub(crate) fn cur_tid() -> usize {
    let tid = registry::tid();
    EXIT_HOOKED.with(|h| {
        if !h.get() {
            h.set(true);
            registry::defer_at_exit(move || {
                domain().flush_thread_slots(tid);
            });
        }
    });
    tid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_indices_start_at_one_and_are_reused() {
        let d = domain();
        let tid = cur_tid();
        let a = d.get_new_idx(tid);
        let b = d.get_new_idx(tid);
        assert!(a >= 1);
        assert_ne!(a, b);
        d.clear(tid, a, 0);
        let c = d.get_new_idx(tid);
        assert_eq!(c, a, "freed slot should be reused");
        d.clear(tid, b, 0);
        d.clear(tid, c, 0);
    }

    #[test]
    fn shared_slots_release_on_last_clear() {
        let d = domain();
        let tid = cur_tid();
        let idx = d.get_new_idx(tid);
        d.using_idx(tid, idx);
        assert_eq!(d.used_count(tid, idx), 2);
        d.clear(tid, idx, 0);
        assert_eq!(d.used_count(tid, idx), 1);
        d.clear(tid, idx, 0);
        assert_eq!(d.used_count(tid, idx), 0);
    }

    #[test]
    fn max_hps_watermark_grows() {
        let d = domain();
        let tid = cur_tid();
        let mut idxs = Vec::new();
        for _ in 0..5 {
            idxs.push(d.get_new_idx(tid));
        }
        let max = *idxs.iter().max().unwrap() as usize;
        assert!(d.max_hps.load(Ordering::SeqCst) > max);
        for idx in idxs {
            d.clear(tid, idx, 0);
        }
    }

    #[test]
    fn get_protected_publishes_unmarked() {
        let d = domain();
        let tid = cur_tid();
        let h = crate::header::OrcHeader::alloc(7u32);
        let addr = AtomicUsize::new(orc_util::marked::mark(h as usize));
        let idx = d.get_new_idx(tid);
        let word = d.get_protected(tid, idx, &addr);
        assert!(orc_util::marked::is_marked(word));
        assert_eq!(
            d.tl(tid).hp[idx as usize].load(Ordering::SeqCst),
            h as usize
        );
        // Clearing with counter at zero claims BRETIRED and deletes (no
        // other protector).
        d.clear(tid, idx, word);
        assert_eq!(d.tl(tid).hp[idx as usize].load(Ordering::SeqCst), 0);
    }
}
