//! The `_orc` word encoding (paper Algorithm 3, lines 1–4).
//!
//! Every tracked object carries one 64-bit atomic word laid out as:
//!
//! ```text
//!   63            24 23          22                    0
//!  ┌────────────────┬────┬─────────────────────────────┐
//!  │    sequence    │ R  │   hard-link counter (+bias) │
//!  └────────────────┴────┴─────────────────────────────┘
//! ```
//!
//! * **counter** (bits 0–22, biased by `ORC_ZERO = 1<<22`): the number of
//!   hard links (references stored *in other objects*) to this object. The
//!   bias lets the counter go transiently negative — `cas` increments the
//!   counter only *after* the link is visible, so another thread may unlink
//!   and decrement first.
//! * **R = BRETIRED** (bit 23): set by the thread that observes the counter
//!   at zero and thereby claims responsibility for retiring the object.
//! * **sequence** (bits 24–63): incremented by every counter change. The
//!   retirement scan (Lemma 1) re-reads the word after traversing all
//!   hazard pointers; an unchanged sequence proves the counter stayed at
//!   zero for the whole traversal.
//!
//! Arithmetic trick: `fetch_add(SEQ + 1)` bumps counter *and* sequence;
//! `fetch_add(SEQ - 1)` decrements the counter while still bumping the
//! sequence (the `+SEQ-1` carries out of the low 24 bits whenever the
//! biased counter is nonzero, which it always is within the supported
//! ±2²² link range).

/// One unit of the sequence field (bit 24).
pub const SEQ: u64 = 1 << 24;
/// The "retired" claim bit.
pub const BRETIRED: u64 = 1 << 23;
/// Counter bias: a word whose low 24 bits equal `ORC_ZERO` has zero hard
/// links and no retire claim.
pub const ORC_ZERO: u64 = 1 << 22;
/// Initial `_orc` value of a freshly created object.
pub const ORC_INIT: u64 = ORC_ZERO;

/// The paper's `ocnt(x)`: the low 24 bits — biased counter plus the
/// BRETIRED bit.
#[inline(always)]
pub const fn ocnt(x: u64) -> u64 {
    x & (SEQ - 1)
}

/// True if the counter is at zero with no retire claim (the state in which
/// a transition claims BRETIRED).
#[inline(always)]
pub const fn is_zero_unclaimed(x: u64) -> bool {
    ocnt(x) == ORC_ZERO
}

/// True if the counter is at zero *and* the retire claim is held — the only
/// state from which deletion may proceed (after the Lemma-1 scan).
#[inline(always)]
pub const fn is_zero_retired(x: u64) -> bool {
    ocnt(x) == (BRETIRED | ORC_ZERO)
}

/// Signed hard-link count (diagnostics / assertions).
#[inline(always)]
pub const fn link_count(x: u64) -> i64 {
    ((x & (BRETIRED - 1)) as i64) - (ORC_ZERO as i64)
}

/// Sequence field (diagnostics).
#[inline(always)]
pub const fn seq(x: u64) -> u64 {
    x >> 24
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_zero_unclaimed() {
        assert!(is_zero_unclaimed(ORC_INIT));
        assert!(!is_zero_retired(ORC_INIT));
        assert_eq!(link_count(ORC_INIT), 0);
        assert_eq!(seq(ORC_INIT), 0);
    }

    #[test]
    fn increment_bumps_counter_and_seq() {
        let w = ORC_INIT.wrapping_add(SEQ + 1);
        assert_eq!(link_count(w), 1);
        assert_eq!(seq(w), 1);
        assert!(!is_zero_unclaimed(w));
    }

    #[test]
    fn decrement_bumps_seq_too() {
        // +1 then -1: counter back at zero but sequence advanced twice.
        let w = ORC_INIT.wrapping_add(SEQ + 1).wrapping_add(SEQ - 1);
        assert_eq!(link_count(w), 0);
        assert_eq!(seq(w), 2);
        assert!(is_zero_unclaimed(w));
    }

    #[test]
    fn counter_can_go_negative() {
        // cas() increments after publication, so a racing unlink can
        // decrement first.
        let w = ORC_INIT.wrapping_add(SEQ - 1);
        assert_eq!(link_count(w), -1);
        assert_eq!(seq(w), 1);
        assert!(!is_zero_unclaimed(w));
        let back = w.wrapping_add(SEQ + 1);
        assert_eq!(link_count(back), 0);
        assert!(is_zero_unclaimed(back));
    }

    #[test]
    fn bretired_is_visible_in_ocnt() {
        let w = ORC_INIT | BRETIRED;
        assert!(!is_zero_unclaimed(w));
        assert!(is_zero_retired(w));
        assert_eq!(link_count(w), 0, "claim bit must not affect the count");
    }

    #[test]
    fn clearing_bretired_restores_zero_unclaimed() {
        let w = (ORC_INIT | BRETIRED).wrapping_sub(BRETIRED);
        assert!(is_zero_unclaimed(w));
    }

    #[test]
    fn deep_counts_roundtrip() {
        let mut w = ORC_INIT;
        for _ in 0..1000 {
            w = w.wrapping_add(SEQ + 1);
        }
        assert_eq!(link_count(w), 1000);
        for _ in 0..1000 {
            w = w.wrapping_add(SEQ - 1);
        }
        assert_eq!(link_count(w), 0);
        assert!(is_zero_unclaimed(w));
        assert_eq!(seq(w), 2000);
    }

    #[test]
    fn seq_wraps_without_touching_counter() {
        // Force the 40-bit sequence to wrap; counter must be unaffected.
        let near_wrap = !(SEQ - 1) | ORC_ZERO;
        let w = near_wrap.wrapping_add(SEQ + 1);
        assert_eq!(link_count(w), 1);
        assert_eq!(seq(w), 0);
    }
}
