//! `orc_atomic` — annotated shared links (paper Algorithm 4).
//!
//! An [`OrcAtomic<T>`] is the one-for-one replacement of
//! `std::atomic<Node*>` in an OrcGC-annotated structure: every mutation
//! (`store`, `cas`, `swap`) transparently maintains the `_orc` hard-link
//! counters of the old and new targets, and `load` returns a protected
//! [`OrcPtr`]. Link words may carry Harris-style mark/tag bits in their low
//! two bits; tag-only transitions (marking a link for deletion) are
//! counter-neutral because both words reference the same object.
//!
//! Safety is carried by the types: every operation that installs a new
//! non-sentinel pointer takes it as an `&OrcPtr<T>`, whose existence
//! guarantees the protection `incrementOrc` requires (Proposition 1).

use crate::domain::{cur_tid, domain};
use crate::header::{Linked, OrcHeader};
use crate::ptr::{poison_word, protectable, OrcPtr};
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::marked;
use std::marker::PhantomData;

/// An annotated atomic link to a tracked object (`orc_atomic<T*>`).
pub struct OrcAtomic<T> {
    word: AtomicUsize,
    _pd: PhantomData<*mut Linked<T>>,
}

// SAFETY: only the raw `PhantomData<*mut Linked<T>>` blocks the auto
// impls; the link itself is a single atomic word, and every dereference of
// it goes through the domain's protection protocol with `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for OrcAtomic<T> {}
// SAFETY: as for `Send`.
unsafe impl<T: Send + Sync> Sync for OrcAtomic<T> {}

impl<T: Send + Sync> OrcAtomic<T> {
    /// A null link.
    pub const fn null() -> Self {
        Self {
            word: AtomicUsize::new(0),
            _pd: PhantomData,
        }
    }

    /// A link initialized to the poison sentinel (CRF-skip).
    pub fn poisoned() -> Self {
        Self {
            word: AtomicUsize::new(poison_word()),
            _pd: PhantomData,
        }
    }

    /// Constructs a link already pointing at `p` (the `orc_atomic(T ptr)`
    /// constructor): counts the hard link.
    pub fn new(p: &OrcPtr<T>) -> Self {
        let tid = cur_tid();
        domain().increment_orc(tid, protectable(p.raw()) as *mut OrcHeader);
        Self {
            word: AtomicUsize::new(p.raw()),
            _pd: PhantomData,
        }
    }

    /// Protected load: claims a hazard slot, publishes, re-validates.
    /// Returns the observed word (with tag bits) behind a guard.
    pub fn load(&self) -> OrcPtr<T> {
        let tid = cur_tid();
        let d = domain();
        let idx = d.get_new_idx(tid);
        let word = d.get_protected(tid, idx, &self.word);
        if protectable(word) == 0 {
            d.clear(tid, idx, 0);
            return OrcPtr::unprotected(word);
        }
        OrcPtr::new(word, idx, tid)
    }

    /// Unprotected raw read of the link word. For equality/mark tests only;
    /// the result must never be dereferenced.
    #[inline]
    pub fn load_raw(&self) -> usize {
        self.word.load(Ordering::SeqCst)
    }

    /// Unprotected dereferencing load, for quiescent contexts (sizing a
    /// structure in a test, walking it in a drop path). Claims no hazard
    /// slot, so arbitrarily deep traversals are fine.
    ///
    /// # Safety
    /// No thread may concurrently retire objects reachable from this link
    /// for the lifetime of the returned reference.
    #[inline]
    pub unsafe fn load_quiescent(&self) -> Option<&T> {
        let t = protectable(self.word.load(Ordering::SeqCst));
        if t == 0 {
            None
        } else {
            // SAFETY: the caller guarantees quiescence (this function's
            // contract), so the linked object cannot be retired under us.
            Some(unsafe { OrcHeader::value::<T>(t as *mut OrcHeader) })
        }
    }

    /// Store (Algorithm 4, lines 63–67): count the new link *first* (the
    /// guard protects it), exchange, then un-count the displaced link.
    pub fn store(&self, p: &OrcPtr<T>) {
        self.store_tagged(p, marked::tag_bits(p.raw()));
    }

    /// Store with explicit tag bits on the installed word.
    pub fn store_tagged(&self, p: &OrcPtr<T>, tag: usize) {
        let tid = cur_tid();
        let d = domain();
        let new_word = p.with_tag(tag);
        d.increment_orc(tid, protectable(new_word) as *mut OrcHeader);
        let old = self.word.swap(new_word, Ordering::SeqCst);
        d.decrement_orc(tid, protectable(old) as *mut OrcHeader);
    }

    /// Store null, un-counting the displaced link.
    pub fn store_null(&self) {
        let tid = cur_tid();
        let old = self.word.swap(0, Ordering::SeqCst);
        domain().decrement_orc(tid, protectable(old) as *mut OrcHeader);
    }

    /// Store the poison sentinel, un-counting the displaced link
    /// (CRF-skip's node isolation).
    pub fn store_poison(&self) {
        let tid = cur_tid();
        let old = self.word.swap(poison_word(), Ordering::SeqCst);
        domain().decrement_orc(tid, protectable(old) as *mut OrcHeader);
    }

    /// CAS (Algorithm 4, lines 69–74): on success, count the new target and
    /// un-count the old. `expected` is a full word (use
    /// [`OrcPtr::with_tag`]/[`OrcPtr::raw`] to build it); the new word is
    /// `new.with_tag(new_tag)`, protected by `new`'s guard.
    pub fn cas_tagged(&self, expected: usize, new: &OrcPtr<T>, new_tag: usize) -> bool {
        self.cas_words(expected, new.with_tag(new_tag))
    }

    /// CAS between two guards with clean tags.
    pub fn cas(&self, expected: &OrcPtr<T>, new: &OrcPtr<T>) -> bool {
        self.cas_words(expected.raw(), new.raw())
    }

    /// CAS installing null.
    pub fn cas_null(&self, expected: usize) -> bool {
        self.cas_words(expected, 0)
    }

    /// CAS installing the poison sentinel.
    pub fn cas_poison(&self, expected: usize) -> bool {
        self.cas_words(expected, poison_word())
    }

    /// Tag-only CAS: `expected` and `new` must reference the same object
    /// (or both be sentinels), so no counter updates are needed. This is
    /// how Harris-style logical deletion marks a link.
    pub fn cas_tag_only(&self, expected: usize, new: usize) -> bool {
        assert_eq!(
            protectable(expected),
            protectable(new),
            "cas_tag_only must not change the link target"
        );
        self.word
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn cas_words(&self, expected: usize, new_word: usize) -> bool {
        if self
            .word
            .compare_exchange(expected, new_word, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        let newt = protectable(new_word);
        let oldt = protectable(expected);
        if newt != oldt {
            let tid = cur_tid();
            let d = domain();
            d.increment_orc(tid, newt as *mut OrcHeader);
            d.decrement_orc(tid, oldt as *mut OrcHeader);
        }
        true
    }

    /// Exchange: installs `p` and returns the displaced link as a guard.
    ///
    /// The displaced object is published in a fresh hazard slot *before*
    /// its link is un-counted, so the returned guard keeps it alive even if
    /// the un-count drops its counter to zero (the retirement scan then
    /// parks it on our slot, and the guard's drop finishes the job).
    pub fn swap(&self, p: &OrcPtr<T>) -> OrcPtr<T> {
        let tid = cur_tid();
        let d = domain();
        d.increment_orc(tid, protectable(p.raw()) as *mut OrcHeader);
        let old = self.word.swap(p.raw(), Ordering::SeqCst);
        self.guard_displaced(tid, old)
    }

    /// Exchange installing null; returns the displaced link as a guard.
    pub fn take(&self) -> OrcPtr<T> {
        let tid = cur_tid();
        let old = self.word.swap(0, Ordering::SeqCst);
        self.guard_displaced(tid, old)
    }

    fn guard_displaced(&self, tid: usize, old: usize) -> OrcPtr<T> {
        let d = domain();
        let oldt = protectable(old);
        if oldt == 0 {
            return OrcPtr::unprotected(old);
        }
        // `old` is alive here: its hard link was counted (or its writer
        // still protects it), and only our swap removed it — see the
        // module docs of `domain`. Publish first, then un-count.
        let idx = d.get_new_idx(tid);
        d.publish(tid, idx, old);
        d.decrement_orc(tid, oldt as *mut OrcHeader);
        OrcPtr::new(old, idx, tid)
    }
}

impl<T: Send + Sync> Default for OrcAtomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Drop for OrcAtomic<T> {
    /// `~orc_atomic` (Algorithm 4, lines 58–61): un-count the final link.
    /// Runs both for structure roots dropping and, crucially, for the link
    /// fields of a node being deleted — which is what cascades reclamation
    /// through unreachable chains.
    fn drop(&mut self) {
        let old = *self.word.get_mut();
        let oldt = protectable(old);
        if oldt != 0 {
            let tid = cur_tid();
            domain().decrement_orc(tid, oldt as *mut OrcHeader);
        }
    }
}

impl<T> std::fmt::Debug for OrcAtomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.word.load(Ordering::Relaxed);
        f.debug_struct("OrcAtomic")
            .field("ptr", &(marked::unmark(w) as *const ()))
            .field("mark", &marked::is_marked(w))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_orc;
    use orc_util::atomics::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    struct Probe(Arc<StdAtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn probe() -> (Arc<StdAtomicUsize>, OrcPtr<Probe>) {
        let n = Arc::new(StdAtomicUsize::new(0));
        let p = make_orc(Probe(n.clone()));
        (n, p)
    }

    #[test]
    fn linked_object_survives_guard_drop() {
        let (drops, p) = probe();
        let link = OrcAtomic::new(&p);
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "hard link keeps it alive");
        drop(link);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "last link unlinks -> delete"
        );
    }

    #[test]
    fn store_replaces_and_collects_old() {
        let (d1, p1) = probe();
        let (d2, p2) = probe();
        let link = OrcAtomic::null();
        link.store(&p1);
        drop(p1);
        link.store(&p2);
        assert_eq!(d1.load(Ordering::SeqCst), 1, "displaced object collected");
        assert_eq!(d2.load(Ordering::SeqCst), 0);
        drop(p2);
        drop(link);
        assert_eq!(d2.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn load_protects_against_unlink() {
        let (drops, p) = probe();
        let link = OrcAtomic::new(&p);
        drop(p);
        let guard = link.load();
        link.store_null();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "guard must keep the unlinked object alive"
        );
        drop(guard);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let (d1, p1) = probe();
        let (d2, p2) = probe();
        let link = OrcAtomic::new(&p1);
        assert!(!link.cas(&p2, &p2), "expected mismatch must fail");
        assert!(link.cas(&p1, &p2));
        drop(p1);
        assert_eq!(d1.load(Ordering::SeqCst), 1);
        drop(p2);
        drop(link);
        assert_eq!(d2.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tag_only_cas_is_counter_neutral() {
        let (drops, p) = probe();
        let link = OrcAtomic::new(&p);
        let w = p.raw();
        assert!(link.cas_tag_only(w, orc_util::marked::mark(w)));
        assert!(orc_util::marked::is_marked(link.load_raw()));
        // Marking must not have disturbed the count: object still alive
        // through the (marked) link after the guard goes.
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(link);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn swap_returns_protected_old() {
        let (d1, p1) = probe();
        let (_d2, p2) = probe();
        let link = OrcAtomic::new(&p1);
        drop(p1);
        let old = link.swap(&p2);
        assert!(!old.is_null());
        assert_eq!(d1.load(Ordering::SeqCst), 0, "returned guard protects old");
        drop(old);
        assert_eq!(d1.load(Ordering::SeqCst), 1);
        drop(p2);
        drop(link);
    }

    #[test]
    fn take_empties_the_link() {
        let (drops, p) = probe();
        let link = OrcAtomic::new(&p);
        drop(p);
        let old = link.take();
        assert!(link.load().is_null());
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(old);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(link); // null: no effect
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chain_deletion_cascades_without_stack_overflow() {
        // Build a long singly-linked chain and drop the head link: the
        // recursive_list must flatten the cascade.
        struct Node {
            _payload: u64,
            next: OrcAtomic<Node>,
        }
        let n = 200_000;
        let head: OrcAtomic<Node> = OrcAtomic::null();
        let mut prev = OrcPtr::<Node>::null();
        for i in 0..n {
            let node = make_orc(Node {
                _payload: i,
                next: OrcAtomic::null(),
            });
            if !prev.is_null() {
                node.next.store(&prev);
            }
            prev = node;
        }
        head.store(&prev);
        drop(prev);
        let before = orc_util::track::global().live_objects();
        drop(head); // must not overflow the stack
        let after = orc_util::track::global().live_objects();
        assert!(
            before - after >= n as i64 - 8,
            "cascade freed only {} of {n}",
            before - after
        );
    }

    #[test]
    fn reinsertion_revives_a_retired_object() {
        // The third obstacle of §2: an object taken out and re-linked must
        // not be freed. Hold a guard, unlink (counter -> 0, retired),
        // re-link from the guard, then verify it survives.
        let (drops, p) = probe();
        let link = OrcAtomic::new(&p);
        let guard = link.load();
        link.store_null(); // counter hits zero; object parked on our guard
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        let link2 = OrcAtomic::new(&guard); // re-insert
        drop(guard);
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "revived object is alive");
        drop(link2);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(link);
    }
}
