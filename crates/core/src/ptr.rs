//! `orc_ptr` — the protected local-reference guard (paper Algorithm 7).
//!
//! An [`OrcPtr`] owns (a share of) one hazard slot of the calling thread;
//! while it is alive, the object it references cannot be deleted. Dropping
//! it runs the paper's `clear()`: release the slot share and, if the
//! object's hard-link counter is at zero, claim `BRETIRED` and retire it —
//! this is how objects that were never linked (or whose last local
//! reference just went away) get collected without any user call.
//!
//! Differences from the C++ listing, by necessity of Rust semantics:
//! C++ migrates protection between slots inside the copy/assignment
//! operators, constrained to move only in the hazard-scan direction. Rust
//! has no assignment hook, so this port never *migrates* a protection:
//! [`OrcAtomic::load`](crate::OrcAtomic::load) always validates into a
//! freshly claimed slot (safe regardless of index order, because
//! validation re-reads the shared link), and [`OrcPtr::clone`] *shares*
//! the existing slot via the `used_haz` counts. Both preserve the paper's
//! invariant that a protection is never copied to a slot the concurrent
//! hand-over scan has already passed.

use crate::domain::{domain, NO_IDX};
use crate::header::{Linked, OrcHeader};
use orc_util::marked;
use std::fmt;
use std::marker::PhantomData;

/// The poison sentinel used by CRF-skip (§5): a non-null, non-heap address
/// stored in links of nodes that have been fully isolated from the
/// structure. Never counted, never dereferenced, never protected.
static POISON_TARGET: u64 = 0;

/// The poison sentinel word.
#[inline]
pub fn poison_word() -> usize {
    (&raw const POISON_TARGET) as usize
}

/// True if `word` (after unmarking) is the poison sentinel.
#[inline]
pub fn is_poison(word: usize) -> bool {
    marked::unmark(word) == poison_word()
}

/// The pointer value a hazard slot should hold for `word`: unmarked, and 0
/// for the sentinels (null, poison) that are not tracked objects.
#[inline]
pub(crate) fn protectable(word: usize) -> usize {
    let t = marked::unmark(word);
    if t == poison_word() {
        0
    } else {
        t
    }
}

/// A protected local reference to a tracked object (the paper's
/// `orc_ptr<T*>`). Holds the full link word, including any Harris-style
/// mark bits observed at load time.
pub struct OrcPtr<T> {
    word: usize,
    idx: u16,
    tid: u32,
    _not_send: PhantomData<*mut Linked<T>>,
}

impl<T> OrcPtr<T> {
    #[inline]
    pub(crate) fn new(word: usize, idx: u16, tid: usize) -> Self {
        Self {
            word,
            idx,
            tid: tid as u32,
            _not_send: PhantomData,
        }
    }

    /// An unprotected guard for sentinel words (null / poison) that need no
    /// hazard slot.
    #[inline]
    pub(crate) fn unprotected(word: usize) -> Self {
        debug_assert_eq!(protectable(word), 0);
        Self {
            word,
            idx: NO_IDX,
            tid: u32::MAX,
            _not_send: PhantomData,
        }
    }

    /// The null guard.
    #[inline]
    pub fn null() -> Self {
        Self::unprotected(0)
    }

    /// The full link word (pointer plus tag bits) this guard observed.
    #[inline]
    pub fn raw(&self) -> usize {
        self.word
    }

    /// The word with its tag bits replaced by `tag` — for building CAS
    /// expected/new values.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> usize {
        marked::with_tag(self.word, tag)
    }

    /// True if the referenced pointer (ignoring tags) is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        marked::unmark(self.word) == 0
    }

    /// True if this guard observed the poison sentinel.
    #[inline]
    pub fn is_poison(&self) -> bool {
        is_poison(self.word)
    }

    /// True if the observed word carried the Harris deletion mark.
    #[inline]
    pub fn is_marked(&self) -> bool {
        marked::is_marked(self.word)
    }

    /// True if `self` and `other` reference the same object (tags ignored).
    #[inline]
    pub fn same_object(&self, other: &Self) -> bool {
        marked::unmark(self.word) == marked::unmark(other.word)
    }

    /// True if this guard references the object behind `word` (tags
    /// ignored).
    #[inline]
    pub fn is_object(&self, word: usize) -> bool {
        marked::unmark(self.word) == marked::unmark(word)
    }

    #[inline]
    pub(crate) fn header(&self) -> *mut OrcHeader {
        protectable(self.word) as *mut OrcHeader
    }

    /// Borrow the referenced value; `None` for null/poison.
    #[inline]
    pub fn as_ref(&self) -> Option<&T> {
        let h = self.header();
        if h.is_null() {
            None
        } else {
            // SAFETY: a non-null `OrcPtr` occupies a hazard slot (or was
            // created from a counted link), pinning the object alive for
            // the guard's — and thus the reference's — lifetime.
            Some(unsafe { OrcHeader::value::<T>(h) })
        }
    }

    /// The `_orc` diagnostic word of the referenced object (tests).
    pub fn orc_word(&self) -> Option<u64> {
        let h = self.header();
        if h.is_null() {
            None
        } else {
            // SAFETY: pinned by this guard, as in `as_ref`.
            Some(unsafe { (*h).orc_word() })
        }
    }
}

impl<T> std::ops::Deref for OrcPtr<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        self.as_ref().expect("dereferenced a null/poison OrcPtr")
    }
}

impl<T> Clone for OrcPtr<T> {
    /// Shares the hazard slot (bumps `used_haz`); never re-publishes.
    fn clone(&self) -> Self {
        if self.idx != NO_IDX {
            debug_assert_eq!(self.tid as usize, orc_util::registry::tid());
            domain().using_idx(self.tid as usize, self.idx);
        }
        Self {
            word: self.word,
            idx: self.idx,
            tid: self.tid,
            _not_send: PhantomData,
        }
    }
}

impl<T> Drop for OrcPtr<T> {
    /// The paper's `~orc_ptr`: `clear(ptr, idx, false)`.
    fn drop(&mut self) {
        if self.idx != NO_IDX {
            debug_assert_eq!(self.tid as usize, orc_util::registry::tid());
            domain().clear(self.tid as usize, self.idx, self.word);
        }
    }
}

impl<T> PartialEq for OrcPtr<T> {
    /// Object identity, ignoring tag bits (matching the paper's pointer
    /// comparisons, e.g. `node != tail.load()`).
    fn eq(&self, other: &Self) -> bool {
        self.same_object(other)
    }
}

impl<T> Eq for OrcPtr<T> {}

impl<T> fmt::Debug for OrcPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrcPtr")
            .field("ptr", &(marked::unmark(self.word) as *const ()))
            .field("mark", &self.is_marked())
            .field("poison", &self.is_poison())
            .field("idx", &self.idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_guard_has_no_slot() {
        let p: OrcPtr<u64> = OrcPtr::null();
        assert!(p.is_null());
        assert!(!p.is_poison());
        assert!(p.as_ref().is_none());
    }

    #[test]
    fn poison_is_not_null_and_not_protectable() {
        let w = poison_word();
        assert_ne!(w, 0);
        assert!(is_poison(w));
        assert!(is_poison(marked::mark(w)));
        assert_eq!(protectable(w), 0);
        assert_eq!(protectable(marked::mark(w)), 0);
        let p: OrcPtr<u64> = OrcPtr::unprotected(w);
        assert!(!p.is_null());
        assert!(p.is_poison());
        assert!(p.as_ref().is_none());
    }

    #[test]
    #[should_panic(expected = "null/poison")]
    fn deref_null_panics() {
        let p: OrcPtr<u64> = OrcPtr::null();
        let _ = *p;
    }

    #[test]
    fn make_orc_guard_derefs() {
        let p = crate::make_orc(123u64);
        assert_eq!(*p, 123);
        assert!(!p.is_null());
        assert!(!p.is_marked());
    }

    #[test]
    fn clone_shares_the_slot_and_value() {
        let p = crate::make_orc(String::from("hello"));
        let q = p.clone();
        assert_eq!(&*q, "hello");
        assert!(p.same_object(&q));
        drop(p);
        // q still protects the object.
        assert_eq!(&*q, "hello");
    }

    #[test]
    fn unlinked_object_is_destroyed_when_last_guard_drops() {
        use orc_util::atomics::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let p = crate::make_orc(Probe(drops.clone()));
        let q = p.clone();
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(q);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "never-linked object must be collected on last guard drop"
        );
    }
}
