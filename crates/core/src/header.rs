//! The tracked-object header (`orc_base`) and allocation layout.
//!
//! The paper requires every shared object type to extend `orc_base`, which
//! holds the `_orc` word. Rust has no inheritance, so [`make_orc`]
//! allocates objects as `#[repr(C)] Linked<T> { header: OrcHeader, value: T }`
//! and every internal pointer (hazard slots, handover slots, link words) is
//! a `*mut OrcHeader` pointing at the start of the `Linked<T>` block. The
//! header additionally stores the type-erased destructor (the C++ version
//! gets this from `orc_base`'s vtable) and the allocation size for memory
//! accounting.
//!
//! [`make_orc`]: crate::make_orc

use crate::word::ORC_INIT;
use orc_util::atomics::{AtomicU64, Ordering};
use orc_util::chk_hooks::{self, ReclaimAction};

/// Per-object metadata; the paper's `orc_base`.
#[repr(C)]
pub struct OrcHeader {
    /// The `_orc` word: biased hard-link counter + BRETIRED + sequence.
    pub(crate) orc: AtomicU64,
    /// Type-erased destructor: drops the whole `Linked<T>` box — or, under
    /// the orc-check quarantine, drops the value in place and leaks the
    /// allocation so the address stays poisoned.
    pub(crate) drop_fn: unsafe fn(*mut OrcHeader, ReclaimAction),
    /// Allocation size in bytes.
    pub(crate) bytes: u32,
    /// Timestamp ([`orc_util::trace::now_ns`]) of the last successful
    /// BRETIRED claim; 0 = never stamped / claim relinquished. Only
    /// written when orc-stats is enabled; feeds the retire→reclaim
    /// latency histogram.
    pub(crate) retire_ns: AtomicU64,
}

/// Allocation layout of every tracked object.
#[repr(C)]
pub struct Linked<T> {
    pub(crate) header: OrcHeader,
    pub(crate) value: T,
}

unsafe fn drop_linked<T>(h: *mut OrcHeader, action: ReclaimAction) {
    match action {
        // SAFETY: `h` came out of `OrcHeader::alloc::<T>`'s `Box::into_raw`
        // (the caller's contract via `drop_fn`), is live, and this is the
        // single reclamation of it.
        ReclaimAction::Free => drop(unsafe { Box::from_raw(h as *mut Linked<T>) }),
        // Quarantine (orc-check model runs): the destructor still runs — so
        // the recursive decrement cascade through OrcAtomic fields happens —
        // but the memory is leaked to keep a flagged use-after-reclaim
        // physically safe.
        // SAFETY: same provenance as the `Free` arm; dropping in place is
        // the single destructor run, and the allocation is intentionally
        // never freed.
        ReclaimAction::Quarantine => unsafe {
            std::ptr::drop_in_place(h as *mut Linked<T>);
        },
    }
}

impl OrcHeader {
    /// Allocates `value` behind a fresh header with `_orc = ORC_INIT`.
    /// Returns the erased header pointer (== the `Linked<T>` pointer).
    pub(crate) fn alloc<T>(value: T) -> *mut OrcHeader {
        let boxed = Box::new(Linked {
            header: OrcHeader {
                orc: AtomicU64::new(ORC_INIT),
                drop_fn: drop_linked::<T>,
                bytes: std::mem::size_of::<Linked<T>>() as u32,
                retire_ns: AtomicU64::new(0),
            },
            value,
        });
        let raw = Box::into_raw(boxed) as *mut OrcHeader;
        chk_hooks::on_alloc(raw as usize, std::mem::size_of::<Linked<T>>());
        orc_util::trace_event!(
            orc_util::trace::EventKind::Alloc,
            raw as usize,
            std::mem::size_of::<Linked<T>>()
        );
        raw
    }

    /// Runs the destructor and frees the block.
    ///
    /// # Safety
    /// `h` must be live and unreachable (Lemma 1 established).
    pub(crate) unsafe fn destroy(h: *mut OrcHeader) {
        // SAFETY: `h` is live per this function's contract.
        let bytes = unsafe { (*h).bytes } as usize;
        // SAFETY: as above.
        let f = unsafe { (*h).drop_fn };
        let action = chk_hooks::on_reclaim(h as usize);
        // SAFETY: `drop_fn` was installed by `alloc` for `h`'s own `T`;
        // unreachability (the contract) makes this the one reclamation.
        unsafe { f(h, action) };
        orc_util::track::global().on_free(bytes);
    }

    /// The value behind a header pointer.
    ///
    /// # Safety
    /// `h` must be a live `Linked<T>` for this exact `T`.
    #[inline(always)]
    pub(crate) unsafe fn value<'a, T>(h: *mut OrcHeader) -> &'a T {
        // SAFETY: `h` is a live `Linked<T>` per this function's contract,
        // and `repr(C)` makes the header pointer the block pointer.
        unsafe { &(*(h as *mut Linked<T>)).value }
    }

    /// Raw access to the `_orc` word (tests / diagnostics).
    pub fn orc_word(&self) -> u64 {
        self.orc.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word;
    use orc_util::atomics::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn alloc_initializes_orc() {
        let h = OrcHeader::alloc(42u64);
        // SAFETY: freshly allocated as `Linked<u64>`, unshared, destroyed
        // exactly once.
        unsafe {
            assert!(word::is_zero_unclaimed((*h).orc.load(Ordering::SeqCst)));
            assert_eq!(*OrcHeader::value::<u64>(h), 42);
            OrcHeader::destroy(h);
        }
    }

    #[test]
    fn destroy_runs_value_destructor() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = Arc::new(AtomicUsize::new(0));
        let h = OrcHeader::alloc(Probe(n.clone()));
        assert_eq!(n.load(Ordering::SeqCst), 0);
        // SAFETY: freshly allocated, unshared, destroyed exactly once.
        unsafe { OrcHeader::destroy(h) };
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn header_is_at_offset_zero() {
        // The erased header pointer must coincide with the Linked<T>
        // pointer for every T (repr(C) guarantees it; this guards
        // against accidental layout changes).
        assert_eq!(std::mem::offset_of!(Linked<u8>, header), 0);
        assert_eq!(std::mem::offset_of!(Linked<[u64; 7]>, header), 0);
    }
}
