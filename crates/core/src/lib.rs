//! # OrcGC — automatic lock-free memory reclamation
//!
//! A from-scratch Rust implementation of the automatic reclamation scheme
//! of *"OrcGC: Automatic Lock-Free Memory Reclamation"* (Andreia Correia,
//! Pedro Ramalhete, Pascal Felber — PPoPP 2021). OrcGC combines
//! per-object **hard-link reference counting** (the `_orc` word) with a
//! **pass-the-pointer** hazard scheme for local references, yielding:
//!
//! * lock-free progress for protection *and* reclamation,
//! * an `O(H·t)` bound on unreclaimed objects,
//! * compatibility with any allocator (the global Rust allocator here),
//! * and zero explicit `protect`/`retire` calls in data-structure code.
//!
//! ## Using it (the paper's §4.1.1 methodology, in Rust)
//!
//! 1. Build nodes with [`make_orc`] instead of `Box::new`.
//! 2. Declare every shared link as [`OrcAtomic<Node>`] instead of
//!    `AtomicPtr<Node>`.
//! 3. Hold loaded references in [`OrcPtr<Node>`] guards (what
//!    [`OrcAtomic::load`] returns).
//!
//! That is the entire integration surface. The Michael–Scott queue of the
//! paper's Algorithm 1 looks like this:
//!
//! ```
//! use orcgc::{make_orc, OrcAtomic, OrcPtr};
//!
//! struct Node {
//!     item: Option<u64>,
//!     next: OrcAtomic<Node>,
//! }
//!
//! struct Queue {
//!     head: OrcAtomic<Node>,
//!     tail: OrcAtomic<Node>,
//! }
//!
//! impl Queue {
//!     fn new() -> Self {
//!         let sentinel = make_orc(Node { item: None, next: OrcAtomic::null() });
//!         Self { head: OrcAtomic::new(&sentinel), tail: OrcAtomic::new(&sentinel) }
//!     }
//!
//!     fn enqueue(&self, item: u64) {
//!         let node = make_orc(Node { item: Some(item), next: OrcAtomic::null() });
//!         loop {
//!             let ltail = self.tail.load();
//!             let lnext = ltail.next.load();
//!             if lnext.is_null() {
//!                 if ltail.next.cas(&lnext, &node) {
//!                     self.tail.cas(&ltail, &node);
//!                     return;
//!                 }
//!             } else {
//!                 self.tail.cas(&ltail, &lnext);
//!             }
//!         }
//!     }
//!
//!     fn dequeue(&self) -> Option<u64> {
//!         let mut node: OrcPtr<Node> = self.head.load();
//!         loop {
//!             let lnext = node.next.load();
//!             if lnext.is_null() {
//!                 return None;
//!             }
//!             if self.head.cas(&node, &lnext) {
//!                 return lnext.item;
//!             }
//!             node = self.head.load();
//!         }
//!     }
//! }
//!
//! let q = Queue::new();
//! q.enqueue(1);
//! q.enqueue(2);
//! assert_eq!(q.dequeue(), Some(1));
//! assert_eq!(q.dequeue(), Some(2));
//! assert_eq!(q.dequeue(), None);
//! // Dropping `q` cascades: head/tail links un-count, nodes retire, free.
//! ```
//!
//! ## Constraints (paper §4)
//!
//! * Unreachable objects must not form reference **cycles** among
//!   themselves (break cycles before the last unlink).
//! * Unreachable objects must not anchor unbounded chains to reachable
//!   ones (the motivation for CRF-skip's poisoned links).
//! * At most 2²² concurrent hard links per object (22-bit counter).

mod atomic;
mod domain;
mod header;
mod ptr;
pub mod word;

pub use atomic::OrcAtomic;
pub use domain::{domain, Domain, MAX_HPS};
pub use ptr::{is_poison, poison_word, OrcPtr};

use domain::cur_tid;

/// Allocates a tracked object and returns a protected guard to it
/// (the paper's `make_orc<T>()`).
///
/// The object starts with zero hard links; if it is never linked into a
/// structure, dropping the last guard collects it automatically.
pub fn make_orc<T: Send + Sync>(value: T) -> OrcPtr<T> {
    let tid = cur_tid();
    let d = domain();
    let h = header::OrcHeader::alloc(value);
    // SAFETY: `h` was just allocated and is exclusively ours until
    // published below.
    orc_util::track::global().on_alloc(unsafe { (*h).bytes as usize });
    let idx = d.get_new_idx(tid);
    d.publish(tid, idx, h as usize);
    OrcPtr::new(h as usize, idx, tid)
}

/// Drains the calling thread's free hazard slots and handover entries,
/// finishing any reclamation parked on them. Useful in tests and at
/// quiescent points; never required for the memory bound.
pub fn flush_thread() {
    let tid = cur_tid();
    domain().flush_thread_slots(tid);
}

/// Aggregated reclamation telemetry (orc-stats) for the process-wide OrcGC
/// domain: retires (BRETIRED claims), reclaims (deletions plus relinquished
/// claims), retire-scan passes, protect validation retries, handovers,
/// batch-size histogram, the retire→reclaim latency histogram
/// (`delay_p50()`/`delay_p99()`/`max_delay_ns`, stamped at the BRETIRED
/// claim and measured at the actual deletion) and the peak of
/// [`Domain::unreclaimed`]. All zeros when `ORC_STATS=0`.
///
/// The domain also emits orc-trace events (`orc_util::trace`) for every
/// claim transition: `OrcZero`, `BRetired`, `Unretire`, plus the shared
/// `Alloc`/`ScanBegin`/`ScanEnd`/`ReclaimBatch`/`Handover`/`ProtectRetry`
/// taxonomy — see DESIGN.md §10.
///
/// At quiescence `retires - reclaims == domain().unreclaimed()` holds
/// exactly, mirroring the `Smr::stats` contract of the manual schemes in
/// the `reclaim` crate.
pub fn domain_stats() -> orc_util::stats::StatsSnapshot {
    domain().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn cross_thread_protection_blocks_delete() {
        // A reader protects an object; the writer unlinks it. The object
        // must survive until the reader's guard drops (parked handover).
        let drops = Arc::new(AtomicUsize::new(0));
        struct Node {
            v: u64,
            _probe: Probe,
        }
        let link = Arc::new(OrcAtomic::<Node>::null());
        {
            let p = make_orc(Node {
                v: 9,
                _probe: Probe(drops.clone()),
            });
            link.store(&p);
        }
        let link2 = link.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let drops2 = drops.clone();
        let reader = std::thread::spawn(move || {
            let guard = link2.load();
            tx.send(()).unwrap();
            release_rx.recv().unwrap();
            assert_eq!(guard.v, 9);
            assert_eq!(drops2.load(Ordering::SeqCst), 0);
            drop(guard);
        });
        rx.recv().unwrap();
        link.store_null(); // unlink while the reader holds a guard
        release_tx.send(()).unwrap();
        reader.join().unwrap();
        // Reader's guard drop (on the reader thread) finished reclamation.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_swap_hammer_is_leak_free_and_safe() {
        let drops = Arc::new(AtomicUsize::new(0));
        let made = Arc::new(AtomicUsize::new(0));
        struct Node {
            v: u64,
            _probe: Probe,
        }
        let link = Arc::new(OrcAtomic::<Node>::null());
        let threads = 4;
        let per = 3_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let link = link.clone();
                let drops = drops.clone();
                let made = made.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        if t % 2 == 0 {
                            let p = make_orc(Node {
                                v: i,
                                _probe: Probe(drops.clone()),
                            });
                            made.fetch_add(1, Ordering::SeqCst);
                            link.store(&p);
                        } else {
                            let g = link.load();
                            if let Some(n) = g.as_ref() {
                                assert!(n.v < per);
                            }
                        }
                    }
                    crate::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        link.store_null();
        crate::flush_thread();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            made.load(Ordering::SeqCst),
            "every allocated node must be dropped exactly once"
        );
    }

    #[test]
    fn domain_metrics_track_retirements() {
        let d = domain();
        let base_max = d.max_unreclaimed();
        let p = make_orc(77u64);
        let link = OrcAtomic::new(&p);
        let g = link.load();
        drop(p);
        link.store_null(); // retired, parked on g
        assert!(d.unreclaimed() >= 1 || d.max_unreclaimed() > base_max);
        drop(g);
        drop(link);
    }
}
