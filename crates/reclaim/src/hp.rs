//! Hazard pointers (Michael 2004).
//!
//! The classic pointer-based scheme and the primary manual baseline of the
//! paper's Figures 3–4. Protection publishes the pointer in a per-thread
//! hazard slot and re-validates; retirement appends to a thread-local list
//! and, once the list exceeds a threshold proportional to `H × t`, scans
//! all published slots and frees the unprotected entries. The total number
//! of retired-but-unfreed objects is `O(H·t²)` — the quadratic bound PTP
//! improves on.

use crate::hazard::{ExitHooks, OrphanStack, PerThread, SlotArray};
use crate::header::{
    alloc_tracked, destroy_tracked, mark_retired, record_reclaim_delay, SmrHeader,
};
use crate::{Smr, MAX_HPS};
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{registry, trace_event_at, track};
use std::sync::Arc;

#[derive(Default)]
struct ThreadState {
    retired: Vec<*mut SmrHeader>,
    scratch: Vec<usize>,
}

// SAFETY: raw header pointers are plain data here — ownership is
// transferred through the retired-list protocol, and the state itself is
// only accessed by the owning tid.
unsafe impl Send for ThreadState {}

struct Inner {
    slots: SlotArray,
    threads: PerThread<ThreadState>,
    orphans: OrphanStack,
    hooks: ExitHooks,
    unreclaimed: AtomicUsize,
    stats: SchemeStats,
    /// Retired-list length that triggers a scan, per thread.
    threshold_base: usize,
}

/// Hazard-pointer reclamation (Michael 2004).
pub struct HazardPointers {
    inner: Arc<Inner>,
}

impl HazardPointers {
    pub fn new() -> Self {
        Self::with_threshold(0)
    }

    /// `threshold_base = 0` selects the adaptive `2·H·t + 8` threshold; a
    /// nonzero value fixes the per-thread retired-list trigger (used by the
    /// bound experiments).
    pub fn with_threshold(threshold_base: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                slots: SlotArray::new(),
                threads: PerThread::new(),
                orphans: OrphanStack::new(),
                hooks: ExitHooks::new(),
                unreclaimed: AtomicUsize::new(0),
                stats: SchemeStats::new(),
                threshold_base,
            }),
        }
    }

    #[inline]
    fn attach(&self) -> usize {
        let tid = registry::tid();
        if self.inner.hooks.attach(tid) {
            // Hold only a Weak reference: the hook must not keep the
            // scheme alive after its last user drops it (Inner::drop then
            // reclaims everything, which is strictly better).
            let inner = Arc::downgrade(&self.inner);
            registry::defer_at_exit(move || {
                if let Some(inner) = inner.upgrade() {
                    inner.thread_exit(tid);
                }
            });
        }
        tid
    }
}

impl Default for HazardPointers {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for HazardPointers {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Inner {
    fn threshold(&self) -> usize {
        if self.threshold_base != 0 {
            self.threshold_base
        } else {
            2 * MAX_HPS * registry::registered_watermark() + 8
        }
    }

    /// Frees every entry of `tid`'s retired list not currently protected.
    fn scan(&self, tid: usize) {
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        // SAFETY: `scan` is only called by the thread owning `tid` (retire/
        // flush path) or from the exit hook on that same thread.
        let st = unsafe { self.threads.get_mut(tid) };
        // Adopt orphaned retirements from exited threads.
        for h in self.orphans.drain() {
            st.retired.push(h);
        }
        let ThreadState { retired, scratch } = st;
        self.slots.collect(scratch);
        scratch.sort_unstable();
        let mut kept = Vec::with_capacity(retired.len());
        let mut freed = 0u64;
        let delay_now = if orc_util::stats::enabled() {
            trace::now_ns()
        } else {
            0
        };
        for &h in retired.iter() {
            // SAFETY: retired headers are live until this scan frees them.
            let word = unsafe { SmrHeader::value_word(h) };
            if scratch.binary_search(&word).is_ok() {
                kept.push(h);
            } else {
                // SAFETY: `h` is still live here (freed two lines below).
                unsafe { record_reclaim_delay(&self.stats, tid, h, delay_now) };
                // SAFETY: `h` is retired (unreachable) and no hazard slot
                // publishes it — the Michael 2004 reclamation condition.
                unsafe { destroy_tracked(h) };
                self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
                track::global().on_reclaim();
                freed += 1;
            }
        }
        self.stats.add(tid, Event::Reclaim, freed);
        self.stats.batch(tid, freed);
        if freed != 0 {
            trace_event_at!(tid, EventKind::ReclaimBatch, freed);
        }
        trace_event_at!(tid, EventKind::ScanEnd, freed);
        *retired = kept;
    }

    fn thread_exit(&self, tid: usize) {
        self.scan(tid);
        // SAFETY: the exit hook runs on the owning thread before the tid is
        // released.
        let st = unsafe { self.threads.get_mut(tid) };
        for h in st.retired.drain(..) {
            // SAFETY: draining the list transfers exclusive ownership of
            // each live retired header to the orphan stack.
            unsafe { self.orphans.push(h) };
        }
        self.slots.clear_row(tid);
        self.hooks.reset(tid);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Exclusive access: free everything still deferred.
        for tid in 0..self.threads.len() {
            // SAFETY: `&mut self` in `Drop` is exclusive access to every row.
            let st = unsafe { self.threads.get_mut(tid) };
            for h in st.retired.drain(..) {
                // SAFETY: no user of the scheme remains; every retired
                // header is unreachable and freed exactly once.
                unsafe { destroy_tracked(h) };
                track::global().on_reclaim();
            }
        }
        for h in self.orphans.drain() {
            // SAFETY: as above — teardown owns the orphans exclusively.
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
    }
}

impl Smr for HazardPointers {
    fn name(&self) -> &'static str {
        "HP"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        alloc_tracked(value, 0)
    }

    fn end_op(&self) {
        let tid = self.attach();
        self.inner.slots.clear_row(tid);
    }

    #[inline]
    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize {
        let tid = self.attach();
        self.inner
            .slots
            .protect_loop(tid, idx, addr, &self.inner.stats)
    }

    #[inline]
    fn publish(&self, idx: usize, word: usize) {
        let tid = self.attach();
        self.inner
            .slots
            .publish_copy(tid, idx, orc_util::marked::unmark(word));
    }

    #[inline]
    fn clear(&self, idx: usize) {
        let tid = self.attach();
        self.inner.slots.clear(tid, idx);
    }

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let tid = self.attach();
        // SAFETY: `ptr` came from `Smr::alloc` (the `retire` contract).
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        // SAFETY: `h` is the live header just recovered from `ptr`.
        unsafe { mark_retired(tid, h) };
        let now = self.inner.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.stats.bump(tid, Event::Retire);
        self.inner.stats.note_unreclaimed(now as u64);
        track::global().on_retire();
        // SAFETY: `tid` is the calling thread's own registry slot.
        let st = unsafe { self.inner.threads.get_mut(tid) };
        st.retired.push(h);
        if st.retired.len() >= self.inner.threshold() {
            self.inner.scan(tid);
        }
    }

    fn flush(&self) {
        let tid = self.attach();
        self.inner.stats.bump(tid, Event::Flush);
        self.inner.scan(tid);
    }

    fn unreclaimed(&self) -> usize {
        self.inner.unreclaimed.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn is_lock_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::AtomicPtr;

    #[test]
    fn protect_then_retire_defers_free() {
        let hp = HazardPointers::with_threshold(1);
        let p = hp.alloc(42u64);
        let addr = AtomicPtr::new(p);
        let got = hp.protect_ptr(0, &addr);
        assert_eq!(got, p);
        // Simulate unlink + retire by another logical owner: with our own
        // hazard published, the scan must NOT free it.
        // SAFETY: `p` came from this scheme's `alloc`, retired once.
        unsafe { hp.retire(p) };
        assert_eq!(hp.unreclaimed(), 1);
        // SAFETY: our hazard slot protects `p`; the scan kept it alive.
        assert_eq!(unsafe { *p }, 42);
        // Dropping protection lets the next flush reclaim it.
        hp.end_op();
        hp.flush();
        assert_eq!(hp.unreclaimed(), 0);
    }

    #[test]
    fn unprotected_retire_frees_on_threshold() {
        let hp = HazardPointers::with_threshold(4);
        for _ in 0..16 {
            let p = hp.alloc(7u32);
            // SAFETY: allocated above, unshared, retired once.
            unsafe { hp.retire(p) };
        }
        hp.flush();
        assert_eq!(hp.unreclaimed(), 0);
    }

    #[test]
    fn exiting_thread_orphans_are_adopted() {
        let hp = HazardPointers::with_threshold(1_000_000); // never auto-scan
        let hp2 = hp.clone();
        std::thread::spawn(move || {
            let p = hp2.alloc(1u8);
            // SAFETY: allocated above, unshared, retired once.
            unsafe { hp2.retire(p) };
        })
        .join()
        .unwrap();
        // The exiting thread scanned; nothing protected it, so it was freed
        // already (exit scan) or pushed to orphans — flush settles both.
        hp.flush();
        assert_eq!(hp.unreclaimed(), 0);
    }

    #[test]
    fn protection_by_other_thread_blocks_reclaim() {
        let hp = HazardPointers::with_threshold(1);
        let p = hp.alloc(9u64);
        let addr = Arc::new(AtomicPtr::new(p));
        let hp2 = hp.clone();
        let addr2 = addr.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            let got = hp2.protect_ptr(0, &addr2);
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
            // SAFETY: our hazard slot protects `got`; the concurrent
            // retire+scan must not free it while the protection stands.
            assert_eq!(unsafe { *got }, 9);
            hp2.end_op();
        });
        rx.recv().unwrap();
        // SAFETY: allocated above, retired once (by this thread only).
        unsafe { hp.retire(p) };
        hp.flush();
        assert_eq!(hp.unreclaimed(), 1, "protected object must survive scan");
        done_tx.send(()).unwrap();
        t.join().unwrap();
        hp.flush();
        assert_eq!(hp.unreclaimed(), 0);
    }

    #[test]
    fn drop_reclaims_everything() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let hp = HazardPointers::with_threshold(1_000_000);
            for _ in 0..100 {
                let p = hp.alloc(Probe(drops.clone()));
                // SAFETY: allocated above, unshared, retired once.
                unsafe { hp.retire(p) };
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn concurrent_hammer_no_crash() {
        let hp = Arc::new(HazardPointers::new());
        let addr = Arc::new(AtomicPtr::new(hp.alloc(0u64)));
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hp = hp.clone();
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        if t % 2 == 0 {
                            // Writer: swap in a fresh node, retire the old.
                            let n = hp.alloc(i);
                            let old = addr.swap(n, Ordering::SeqCst);
                            // SAFETY: the swap made us the unlinker; each
                            // object is retired by exactly one thread.
                            unsafe { hp.retire(old) };
                        } else {
                            // Reader: protect and read.
                            let p = hp.protect_ptr(0, &addr);
                            // SAFETY: our hazard slot protects `p`; a
                            // concurrent scan must not free it.
                            let v = unsafe { *p };
                            assert!(v < 5_000);
                            hp.end_op();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = addr.load(Ordering::SeqCst);
        // SAFETY: all threads joined; `last` is the one live object and is
        // retired exactly once.
        unsafe { hp.retire(last) };
        hp.flush();
        assert_eq!(hp.unreclaimed(), 0);
    }
}
