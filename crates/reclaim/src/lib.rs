//! Manual lock-free memory reclamation schemes.
//!
//! This crate implements the *manual* schemes evaluated in
//! "OrcGC: Automatic Lock-Free Memory Reclamation" (Correia, Ramalhete,
//! Felber — PPoPP 2021):
//!
//! | Scheme | Module | Progress (retire) | Bound | Paper role |
//! |---|---|---|---|---|
//! | Pass-the-pointer (**PTP**) | [`ptp`] | lock-free | `O(Ht)` | §3.1, this paper's manual scheme |
//! | Hazard pointers (HP) | [`hp`] | lock-free | `O(Ht²)` | baseline (Michael 2004) |
//! | Pass-the-buck (PTB) | [`ptb`] | wait-free | `O(Ht²)` | baseline (Herlihy et al. 2002) |
//! | Hazard eras (HE) | [`he`] | wait-free | `O(#L·H·t²)` | baseline (Ramalhete & Correia 2017) |
//! | Epoch-based (EBR) | [`ebr`] | blocking | unbounded | baseline (Fraser 2004) |
//! | Leaky | [`leaky`] | — (never frees) | unbounded | the "None" baseline of Figs. 1–4 |
//!
//! All schemes share one object layout ([`header::SmrHeader`]) and one
//! data-structure-facing trait ([`Smr`]), so a structure written once —
//! `MichaelList<S: Smr>` — runs unmodified under every scheme, exactly the
//! comparison methodology of the paper's Figures 3–4.
//!
//! # Protocol
//!
//! A data-structure operation brackets itself with [`Smr::begin_op`] /
//! [`Smr::end_op`], reads shared links through [`Smr::protect`] (which
//! publishes a hazard slot / era reservation and re-validates), and hands
//! unlinked nodes to [`Smr::retire`]. Nodes are allocated through
//! [`Smr::alloc`] so the scheme can prepend its header.

pub mod ebr;
pub mod hazard;
pub mod he;
pub mod header;
pub mod hp;
pub mod leaky;
pub mod ptb;
pub mod ptp;
pub mod scheme_kind;

/// Stalled-reader fault injection (test support). Every scheme's `protect`
/// calls [`stall::hit`]`(`[`stall::StallPoint::Protect`]`)` after its
/// protection is published and validated, and `begin_op` hits
/// [`stall::StallPoint::BeginOp`] after the epoch pin — letting the
/// torture harness park a victim thread at the most adversarial instant.
/// The machinery lives in `orc_util` so the OrcGC domain shares it.
pub use orc_util::stall;

/// Reclamation telemetry (orc-stats). Every scheme feeds a per-instance
/// [`stats::SchemeStats`] and exposes the aggregate via [`Smr::stats`];
/// `ORC_STATS=0` disables recording process-wide. The machinery lives in
/// `orc_util` so the OrcGC domain shares it.
pub use orc_util::stats;
pub use orc_util::stats::StatsSnapshot;

/// Lock-free event tracing (orc-trace). Every scheme emits `Retire`,
/// `ScanBegin`/`ScanEnd`, `ReclaimBatch` and scheme-specific events into
/// per-thread ring buffers; `ORC_TRACE=0` disables recording process-wide.
/// The machinery lives in `orc_util` so the OrcGC domain shares it.
pub use orc_util::trace;

pub use ebr::Ebr;
pub use he::HazardEras;
pub use header::{as_word, SmrHeader};
pub use hp::HazardPointers;
pub use leaky::Leaky;
pub use ptb::PassTheBuck;
pub use ptp::PassThePointer;
pub use scheme_kind::{AnySmr, SchemeKind};

use orc_util::atomics::{AtomicPtr, AtomicUsize};

/// Maximum hazard slots (the paper's `H`) a data structure may use per
/// thread under the manual schemes. Lists/queues need ≤ 3; the NM-tree uses
/// up to 6 (anchor, parent, leaf, successor pair and scratch).
pub const MAX_HPS: usize = 8;

/// Common interface of all manual reclamation schemes.
///
/// # Safety contract (for implementors *and* callers)
///
/// * A word returned by [`Smr::protect`] stays dereferenceable until the
///   slot is overwritten, [`Smr::clear`]ed, or the bracketing
///   [`Smr::end_op`] runs — provided the object had not already been
///   retired *before* the protection was validated (the standard
///   hazard-pointer contract: protection is obtained by re-reading a shared
///   link that still reaches the object).
/// * [`Smr::retire`] may only be called once per object, by the thread that
///   unlinked it, after the object is unreachable from the structure's
///   global references.
/// * Pointers passed to `retire`/published by `protect` must originate from
///   [`Smr::alloc`] of the *same scheme instance*.
pub trait Smr: Send + Sync + 'static {
    /// Human-readable scheme name, as used in the paper's figure legends.
    fn name(&self) -> &'static str;

    /// Allocates a tracked object; returns the value pointer the structure
    /// links and publishes.
    fn alloc<T: Send>(&self, value: T) -> *mut T;

    /// Marks the start of a data-structure operation. No-op for
    /// pointer-based schemes (bar the fault-injection point); pins the
    /// epoch for EBR.
    #[inline]
    fn begin_op(&self) {
        stall::hit(stall::StallPoint::BeginOp);
    }

    /// Marks the end of a data-structure operation. Pointer-based schemes
    /// clear all hazard slots; EBR unpins.
    fn end_op(&self);

    /// Reads the link word at `addr`, publishing protection in slot `idx`
    /// and re-validating until stable. Returns the full (possibly
    /// mark-tagged) word; the protection covers the *unmarked* pointer.
    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize;

    /// Typed convenience over [`Smr::protect`] for untagged links.
    #[inline]
    fn protect_ptr<T>(&self, idx: usize, addr: &AtomicPtr<T>) -> *mut T {
        self.protect(idx, as_word(addr)) as *mut T
    }

    /// Re-publishes protection for an already-safe pointer (e.g. moving a
    /// protected pointer to a different slot while it is still protected by
    /// another slot or known reachable). No validation loop.
    fn publish(&self, idx: usize, word: usize);

    /// Drops the protection in slot `idx`.
    fn clear(&self, idx: usize);

    /// Retires an unlinked object for eventual reclamation.
    ///
    /// # Safety
    /// See the trait-level contract.
    unsafe fn retire<T: Send>(&self, ptr: *mut T);

    /// Immediately destroys an object, bypassing deferral.
    ///
    /// # Safety
    /// Caller must guarantee quiescence (no concurrent readers), e.g. inside
    /// a structure's `Drop` with `&mut self`.
    unsafe fn dealloc_now<T>(&self, ptr: *mut T) {
        // SAFETY: `ptr` came from `Smr::alloc` and the caller guarantees
        // quiescence (this method's contract) — exclusive, freed once.
        unsafe { header::destroy_tracked(SmrHeader::of_value(ptr)) };
    }

    /// Attempts to reclaim everything reclaimable right now (drains retired
    /// lists / advances epochs). Used by tests and at teardown; never
    /// required for the bound.
    fn flush(&self);

    /// Objects currently retired by this instance but not yet freed.
    fn unreclaimed(&self) -> usize;

    /// Aggregated reclamation telemetry for this scheme instance: retire
    /// and reclaim counts, scan/flush passes, protect validation retries,
    /// handovers, batch-size histogram and the peak of
    /// [`Smr::unreclaimed`]. All zeros when `ORC_STATS=0`.
    ///
    /// At quiescence every scheme satisfies `reclaims ≤ retires` and
    /// `retires − reclaims == unreclaimed()` (asserted by the torture
    /// battery's invariant tests).
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Whether `retire` has lock-free (or better) progress, as claimed in
    /// Table 1.
    fn is_lock_free(&self) -> bool;
}
