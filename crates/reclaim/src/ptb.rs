//! Pass-the-buck (Herlihy, Luchangco, Moir 2002) — "The Repeat Offender
//! Problem".
//!
//! Protection ("posting a guard") is the same publish-and-revalidate loop
//! as HP. Liberation differs from both HP and PTP: `retire` accumulates a
//! thread-local list and, at a threshold, runs `liberate`, which for each
//! candidate value scans the guards; a guard still trapping the value gets
//! the value *handed off* into its versioned handoff slot with a
//! double-word CAS (value, version), and whatever the slot previously held
//! is taken back into the candidate set. Values that survive the scan
//! unguarded are freed. Because every thread can hold a full candidate
//! list, the scheme's unreclaimed bound is `O(H·t²)` — quadratic, as
//! Table 1 of the OrcGC paper lists.
//!
//! This is a from-scratch reconstruction of the published algorithm on top
//! of this crate's header/slot machinery; the handoff version counter
//! (incremented on every DWCAS) plays the role of the original's trap
//! counter, preventing the A-was-handed-off-and-back ABA.

use crate::hazard::{ExitHooks, OrphanStack, PerThread, SlotArray};
use crate::header::{
    alloc_tracked, destroy_tracked, mark_retired, record_reclaim_delay, SmrHeader,
};
use crate::{Smr, MAX_HPS};
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::dwcas::{pack, unpack, AtomicU128};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{registry, trace_event_at, track, CachePadded};
use std::sync::Arc;

#[derive(Default)]
struct ThreadState {
    retired: Vec<*mut SmrHeader>,
}

// SAFETY: the raw header pointers in `retired` are objects whose
// ownership was transferred here by `retire`; no other thread touches
// them until `liberate`/`Drop` frees or hands them off.
unsafe impl Send for ThreadState {}

struct Inner {
    guards: SlotArray,
    /// `handoff[tid][idx]` = (header ptr, version), updated only by DWCAS.
    handoff: Box<[CachePadded<[AtomicU128; MAX_HPS]>]>,
    threads: PerThread<ThreadState>,
    orphans: OrphanStack,
    hooks: ExitHooks,
    unreclaimed: AtomicUsize,
    stats: SchemeStats,
    threshold_base: usize,
}

/// Pass-the-buck reclamation (Herlihy et al. 2002).
pub struct PassTheBuck {
    inner: Arc<Inner>,
}

impl PassTheBuck {
    pub fn new() -> Self {
        Self::with_threshold(0)
    }

    pub fn with_threshold(threshold_base: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                guards: SlotArray::new(),
                handoff: (0..registry::max_threads())
                    .map(|_| CachePadded::new(std::array::from_fn(|_| AtomicU128::new(0))))
                    .collect(),
                threads: PerThread::new(),
                orphans: OrphanStack::new(),
                hooks: ExitHooks::new(),
                unreclaimed: AtomicUsize::new(0),
                stats: SchemeStats::new(),
                threshold_base,
            }),
        }
    }

    #[inline]
    fn attach(&self) -> usize {
        let tid = registry::tid();
        if self.inner.hooks.attach(tid) {
            // Hold only a Weak reference: the hook must not keep the
            // scheme alive after its last user drops it (Inner::drop then
            // reclaims everything, which is strictly better).
            let inner = Arc::downgrade(&self.inner);
            registry::defer_at_exit(move || {
                if let Some(inner) = inner.upgrade() {
                    inner.thread_exit(tid);
                }
            });
        }
        tid
    }
}

impl Default for PassTheBuck {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PassTheBuck {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Inner {
    fn threshold(&self) -> usize {
        if self.threshold_base != 0 {
            self.threshold_base
        } else {
            2 * MAX_HPS * registry::registered_watermark() + 8
        }
    }

    /// Attempts to hand `h` off to a guard trapping it; returns the
    /// displaced occupant (to be re-liberated) on success, or `h` itself if
    /// no guard traps it (caller frees).
    fn liberate_one(&self, tid: usize, mut h: *mut SmrHeader) -> Option<*mut SmrHeader> {
        let wm = registry::registered_watermark();
        let mut it = 0;
        while it < wm {
            let mut idx = 0;
            while idx < MAX_HPS {
                // SAFETY: `h` is a retired-but-not-destroyed header from
                // the candidate set; its header stays readable until this
                // scheme frees it.
                let word = unsafe { SmrHeader::value_word(h) };
                if self.guards.get(it, idx).load(Ordering::SeqCst) == word {
                    // Guard (it, idx) traps h: hand it off with a versioned
                    // DWCAS; retry on version races while still trapped.
                    let slot = &self.handoff[it][idx];
                    loop {
                        let cur = slot.load();
                        let (old_ptr, ver) = unpack(cur);
                        if self.guards.get(it, idx).load(Ordering::SeqCst) != word {
                            break; // guard moved on; rescan this slot
                        }
                        let (_, ok) =
                            slot.compare_exchange(cur, pack(h as u64, ver.wrapping_add(1)));
                        if ok {
                            self.stats.bump(tid, Event::Handover);
                            trace_event_at!(tid, EventKind::Handover, h as usize);
                            let displaced = old_ptr as *mut SmrHeader;
                            if displaced.is_null() {
                                return None;
                            }
                            // The displaced value is no longer trapped by
                            // this guard; continue the scan with it from
                            // the same position.
                            h = displaced;
                            break;
                        }
                    }
                    // SAFETY: `h` is now the displaced occupant — also a
                    // retired-but-live header owned by the liberation scan.
                    let word = unsafe { SmrHeader::value_word(h) };
                    if self.guards.get(it, idx).load(Ordering::SeqCst) == word {
                        continue; // re-examine the same slot for the new h
                    }
                }
                idx += 1;
            }
            it += 1;
        }
        Some(h)
    }

    fn liberate(&self, tid: usize) {
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        // SAFETY: `tid` is the calling thread's registry slot; only the
        // owner (or its exit hook / `Inner::drop`) touches this state.
        let st = unsafe { self.threads.get_mut(tid) };
        for h in self.orphans.drain() {
            st.retired.push(h);
        }
        let candidates: Vec<_> = st.retired.drain(..).collect();
        let delay_now = if orc_util::stats::enabled() {
            trace::now_ns()
        } else {
            0
        };
        let mut freed = 0u64;
        for h in candidates {
            if let Some(free) = self.liberate_one(tid, h) {
                // SAFETY: `free` is still live here (freed on the next line).
                unsafe { record_reclaim_delay(&self.stats, tid, free, delay_now) };
                // SAFETY: the full guard scan found no trap for `free` and
                // handed nothing off, so no thread can reach it — the PTB
                // liberation condition.
                unsafe { destroy_tracked(free) };
                self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
                track::global().on_reclaim();
                freed += 1;
            }
        }
        self.stats.add(tid, Event::Reclaim, freed);
        self.stats.batch(tid, freed);
        if freed != 0 {
            trace_event_at!(tid, EventKind::ReclaimBatch, freed);
        }
        trace_event_at!(tid, EventKind::ScanEnd, freed);
    }

    /// Clears guard `(tid, idx)` and reclaims/requeues its handoff value.
    fn clear_slot(&self, tid: usize, idx: usize) {
        self.guards.clear(tid, idx);
        let slot = &self.handoff[tid][idx];
        loop {
            let cur = slot.load();
            let (ptr, ver) = unpack(cur);
            if ptr == 0 {
                return;
            }
            let (_, ok) = slot.compare_exchange(cur, pack(0, ver.wrapping_add(1)));
            if ok {
                let h = ptr as *mut SmrHeader;
                // The guard is down; nothing traps it here any more, but
                // another guard might — re-liberate.
                if let Some(free) = self.liberate_one(tid, h) {
                    if orc_util::stats::enabled() {
                        // SAFETY: `free` is still live here (freed below).
                        unsafe { record_reclaim_delay(&self.stats, tid, free, trace::now_ns()) };
                    }
                    // SAFETY: we took exclusive ownership of `h` via the
                    // DWCAS above, and the re-scan found no other guard
                    // trapping `free`.
                    unsafe { destroy_tracked(free) };
                    self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
                    track::global().on_reclaim();
                    self.stats.bump(tid, Event::Reclaim);
                    self.stats.batch(tid, 1);
                }
                return;
            }
        }
    }

    fn thread_exit(&self, tid: usize) {
        self.liberate(tid);
        for idx in 0..MAX_HPS {
            self.clear_slot(tid, idx);
        }
        // SAFETY: called by the exiting owner thread (exit hook), the only
        // remaining user of slot `tid`.
        let st = unsafe { self.threads.get_mut(tid) };
        for h in st.retired.drain(..) {
            // SAFETY: `h` is a retired header drained from our own list;
            // pushing transfers its ownership to the orphan stack.
            unsafe { self.orphans.push(h) };
        }
        self.hooks.reset(tid);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for tid in 0..self.threads.len() {
            // SAFETY: `&mut self` in `drop` proves no thread is still using
            // the scheme, so taking every per-thread state is exclusive.
            let st = unsafe { self.threads.get_mut(tid) };
            for h in st.retired.drain(..) {
                // SAFETY: all users are gone (see above); every retired
                // object is now unreachable and destroyed exactly once.
                unsafe { destroy_tracked(h) };
                track::global().on_reclaim();
            }
        }
        for h in self.orphans.drain() {
            // SAFETY: as above — orphaned retirees are exclusively ours.
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
        for row in self.handoff.iter() {
            for slot in row.iter() {
                let (ptr, _) = unpack(slot.load());
                if ptr != 0 {
                    // SAFETY: a handed-off value is a retired object owned
                    // by its slot; with all users gone it is exclusively
                    // ours and freed exactly once.
                    unsafe { destroy_tracked(ptr as *mut SmrHeader) };
                    track::global().on_reclaim();
                }
            }
        }
    }
}

impl Smr for PassTheBuck {
    fn name(&self) -> &'static str {
        "PTB"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        alloc_tracked(value, 0)
    }

    fn end_op(&self) {
        let tid = self.attach();
        for idx in 0..MAX_HPS {
            self.inner.clear_slot(tid, idx);
        }
    }

    #[inline]
    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize {
        let tid = self.attach();
        self.inner
            .guards
            .protect_loop(tid, idx, addr, &self.inner.stats)
    }

    #[inline]
    fn publish(&self, idx: usize, word: usize) {
        let tid = self.attach();
        self.inner
            .guards
            .publish_copy(tid, idx, orc_util::marked::unmark(word));
    }

    #[inline]
    fn clear(&self, idx: usize) {
        let tid = self.attach();
        self.inner.clear_slot(tid, idx);
    }

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let tid = self.attach();
        // SAFETY: `ptr` came from `Smr::alloc` (retire's contract), so it
        // is the value field of a live `SmrLinked` allocation.
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        // SAFETY: `h` is the live header just recovered from `ptr`.
        unsafe { mark_retired(tid, h) };
        let now = self.inner.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.stats.bump(tid, Event::Retire);
        self.inner.stats.note_unreclaimed(now as u64);
        track::global().on_retire();
        // SAFETY: `tid` is the calling thread's slot; owner-only access.
        let st = unsafe { self.inner.threads.get_mut(tid) };
        st.retired.push(h);
        if st.retired.len() >= self.inner.threshold() {
            self.inner.liberate(tid);
        }
    }

    fn flush(&self) {
        let tid = self.attach();
        self.inner.stats.bump(tid, Event::Flush);
        self.inner.liberate(tid);
    }

    fn unreclaimed(&self) -> usize {
        self.inner.unreclaimed.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn is_lock_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::AtomicPtr;

    #[test]
    fn unguarded_retire_frees_on_liberate() {
        let ptb = PassTheBuck::with_threshold(4);
        for i in 0..16 {
            let p = ptb.alloc(i as u64);
            // SAFETY: `p` came from this scheme's `alloc`, retired once.
            unsafe { ptb.retire(p) };
        }
        ptb.flush();
        assert_eq!(ptb.unreclaimed(), 0);
    }

    #[test]
    fn guarded_value_is_handed_off_not_freed() {
        let ptb = PassTheBuck::with_threshold(1);
        let p = ptb.alloc(3u64);
        let addr = AtomicPtr::new(p);
        ptb.protect_ptr(0, &addr);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ptb.retire(p) }; // liberate runs; hands p to our own guard
        assert_eq!(ptb.unreclaimed(), 1);
        // SAFETY: our guard traps `p`; liberate handed it off instead of
        // freeing it.
        assert_eq!(unsafe { *p }, 3);
        ptb.clear(0); // dropping the guard reclaims the handoff value
        assert_eq!(ptb.unreclaimed(), 0);
    }

    #[test]
    fn displaced_handoff_value_is_requeued() {
        let ptb = PassTheBuck::with_threshold(1);
        let a = ptb.alloc(1u64);
        let b = ptb.alloc(2u64);
        let addr = AtomicPtr::new(a);
        ptb.protect_ptr(0, &addr);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ptb.retire(a) }; // a handed to guard 0
        addr.store(b, Ordering::SeqCst);
        ptb.protect_ptr(0, &addr); // guard 0 now traps b
                                   // SAFETY: allocated above, unshared, retired once.
        unsafe { ptb.retire(b) }; // b handed off, a displaced and freed
        assert_eq!(ptb.unreclaimed(), 1);
        ptb.end_op();
        assert_eq!(ptb.unreclaimed(), 0);
    }

    #[test]
    fn cross_thread_guard_blocks_free() {
        let ptb = PassTheBuck::with_threshold(1);
        let p = ptb.alloc(8u64);
        let addr = Arc::new(AtomicPtr::new(p));
        let ptb2 = ptb.clone();
        let addr2 = addr.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let t = std::thread::spawn(move || {
            let got = ptb2.protect_ptr(1, &addr2);
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
            // SAFETY: our guard (slot 1) traps `got`; a concurrent retire
            // hands it off rather than freeing it.
            assert_eq!(unsafe { *got }, 8);
            ptb2.end_op();
        });
        rx.recv().unwrap();
        // SAFETY: allocated above, retired once (by this thread only).
        unsafe { ptb.retire(p) };
        assert_eq!(ptb.unreclaimed(), 1);
        done_tx.send(()).unwrap();
        t.join().unwrap();
        assert_eq!(ptb.unreclaimed(), 0);
    }

    #[test]
    fn concurrent_swap_and_read_stress() {
        let ptb = Arc::new(PassTheBuck::new());
        let addr = Arc::new(AtomicPtr::new(ptb.alloc(0u64)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ptb = ptb.clone();
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        if t % 2 == 0 {
                            let n = ptb.alloc(i);
                            let old = addr.swap(n, Ordering::SeqCst);
                            // SAFETY: the swap made us the unlinker; each
                            // object is retired by exactly one thread.
                            unsafe { ptb.retire(old) };
                        } else {
                            let p = ptb.protect_ptr(0, &addr);
                            // SAFETY: our guard traps `p`; a concurrent
                            // liberate hands it off instead of freeing it.
                            assert!(unsafe { *p } < 4_000);
                            ptb.end_op();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = addr.load(Ordering::SeqCst);
        // SAFETY: all threads joined; `last` is the one live object and is
        // retired exactly once.
        unsafe { ptb.retire(last) };
        ptb.flush();
        assert_eq!(ptb.unreclaimed(), 0);
    }
}
