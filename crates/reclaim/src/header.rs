//! Tracked-object layout shared by all manual schemes.
//!
//! Every node allocated through a scheme is laid out as
//! `SmrBox<T> { header: SmrHeader, value: T }` (`#[repr(C)]`, header first).
//! Data structures only ever see `*mut T` — the *value pointer* — while the
//! schemes' retired lists, handover slots and orphan chains carry *header
//! pointers*. The header records how to get back and forth (`value_offset`)
//! and how to destroy the object without knowing its type (`drop_fn`), plus
//! the birth/delete eras used by hazard eras.
//!
//! Hazard *slots*, by contrast, always hold value pointers, because that is
//! what data structures read from their links and publish.

use orc_util::atomics::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use orc_util::chk_hooks::{self, ReclaimAction};
use orc_util::stats::SchemeStats;
use orc_util::trace;
use std::mem;

/// Era value meaning "no reservation" / "not yet deleted".
pub const NO_ERA: u64 = 0;

/// Header prepended to every tracked object.
#[repr(C)]
pub struct SmrHeader {
    /// Era clock value at allocation (hazard eras). Unused by HP/PTB/PTP.
    pub birth_era: u64,
    /// Era clock value at retirement (hazard eras). `NO_ERA` while live.
    pub del_era: AtomicU64,
    /// orc-trace retire stamp ([`trace::now_ns`], never 0 once stamped;
    /// 0 = not stamped). Written by [`mark_retired`], consumed by
    /// [`record_reclaim_delay`] for the retire→reclaim delay histogram.
    retire_ns: AtomicU64,
    /// Intrusive link for retired lists / orphan chains.
    pub next: AtomicPtr<SmrHeader>,
    /// Type-erased destructor: reconstructs the `Box<SmrBox<T>>` and drops
    /// it — or, under the orc-check quarantine, drops the value in place and
    /// leaks the allocation so the address stays poisoned.
    drop_fn: unsafe fn(*mut SmrHeader, ReclaimAction),
    /// Offset from the header to the value, in bytes.
    value_offset: u32,
    /// Total allocation size in bytes (for memory accounting).
    pub bytes: u32,
}

#[repr(C)]
pub struct SmrBox<T> {
    pub header: SmrHeader,
    pub value: T,
}

unsafe fn drop_box<T>(h: *mut SmrHeader, action: ReclaimAction) {
    match action {
        // SAFETY: `h` came out of `SmrHeader::alloc::<T>`'s `Box::into_raw`
        // (the `drop_fn` contract), is live, and this is its single
        // reclamation.
        ReclaimAction::Free => drop(unsafe { Box::from_raw(h as *mut SmrBox<T>) }),
        // Quarantine (orc-check model runs): run the destructor but leak the
        // allocation, so a use-after-reclaim the oracle just flagged cannot
        // touch recycled memory and the execution can finish its trace.
        // SAFETY: same provenance as the `Free` arm; single destructor run,
        // allocation intentionally leaked.
        ReclaimAction::Quarantine => unsafe {
            std::ptr::drop_in_place(h as *mut SmrBox<T>);
        },
    }
}

impl SmrHeader {
    /// Heap-allocates `value` behind a header; returns the value pointer.
    pub fn alloc<T>(value: T, birth_era: u64) -> *mut T {
        let boxed: Box<SmrBox<T>> = Box::new(SmrBox {
            header: SmrHeader {
                birth_era,
                del_era: AtomicU64::new(NO_ERA),
                retire_ns: AtomicU64::new(0),
                next: AtomicPtr::new(std::ptr::null_mut()),
                drop_fn: drop_box::<T>,
                value_offset: mem::offset_of!(SmrBox<T>, value) as u32,
                bytes: mem::size_of::<SmrBox<T>>() as u32,
            },
            value,
        });
        let raw = Box::into_raw(boxed);
        chk_hooks::on_alloc(raw as usize, mem::size_of::<SmrBox<T>>());
        // SAFETY: `raw` is the freshly leaked box; projecting to `value`
        // stays inside the allocation.
        unsafe { &raw mut (*raw).value }
    }

    /// Recovers the header pointer from a value pointer.
    ///
    /// # Safety
    /// `value` must have been returned by [`SmrHeader::alloc::<T>`] and not
    /// yet destroyed.
    #[inline]
    pub unsafe fn of_value<T>(value: *mut T) -> *mut SmrHeader {
        // SAFETY: `value` sits at `offset_of!(SmrBox<T>, value)` inside a
        // live `SmrBox<T>` (this function's contract), so the subtraction
        // lands on the box's header.
        unsafe { (value as *mut u8).sub(mem::offset_of!(SmrBox<T>, value)) as *mut SmrHeader }
    }

    /// The value pointer of this object, as the word data structures publish
    /// in hazard slots.
    ///
    /// # Safety
    /// `h` must be a live header.
    #[inline]
    pub unsafe fn value_word(h: *mut SmrHeader) -> usize {
        // SAFETY: `h` is live per this function's contract.
        let off = unsafe { (*h).value_offset } as usize;
        h as usize + off
    }

    /// Runs the destructor and frees the allocation.
    ///
    /// # Safety
    /// `h` must be a live header no longer reachable by any thread.
    #[inline]
    pub unsafe fn destroy(h: *mut SmrHeader) {
        // Double-free tripwire: a destroyed header's del_era is stamped
        // with a magic value. Catching this *before* the allocator's
        // metadata is corrupted turns heisencrashes into clean aborts.
        // SAFETY: `h` is live per this function's contract.
        let prev = unsafe { &(*h).del_era }.swap(u64::MAX - 0xDEAD, Ordering::SeqCst);
        assert_ne!(
            prev,
            u64::MAX - 0xDEAD,
            "double free of tracked object {h:p}"
        );
        // SAFETY: still live — the tripwire above only stamps `del_era`.
        let f = unsafe { (*h).drop_fn };
        let action = chk_hooks::on_reclaim(h as usize);
        // SAFETY: `drop_fn` was installed by `alloc` for `h`'s own `T`;
        // unreachability (the contract) makes this the one reclamation.
        unsafe { f(h, action) };
    }
}

/// Allocates through [`SmrHeader::alloc`] and records the allocation in the
/// global memory accounting ([`orc_util::track`]).
pub fn alloc_tracked<T>(value: T, birth_era: u64) -> *mut T {
    let p = SmrHeader::alloc(value, birth_era);
    orc_util::track::global().on_alloc(mem::size_of::<SmrBox<T>>());
    orc_util::trace_event!(
        trace::EventKind::Alloc,
        p as usize,
        mem::size_of::<SmrBox<T>>()
    );
    p
}

/// Retirement bookkeeping shared by every manual scheme: stamps the
/// retire instant into the header (consumed later by
/// [`record_reclaim_delay`]) and emits a `Retire{addr,seq}` trace event
/// carrying the process-wide retire sequence number. Compiles down to
/// two latched-flag checks when both orc-stats and orc-trace are off.
///
/// # Safety
/// `h` must be a live header owned by the retiring thread (`tid` is the
/// caller's registry tid).
#[inline]
pub unsafe fn mark_retired(tid: usize, h: *mut SmrHeader) {
    if orc_util::stats::enabled() {
        // SAFETY: `h` is live per this function's contract.
        unsafe { &(*h).retire_ns }.store(trace::now_ns(), Ordering::Relaxed);
    }
    if trace::enabled() {
        // SAFETY: as above.
        let addr = unsafe { SmrHeader::value_word(h) };
        trace::record_at(
            tid,
            trace::EventKind::Retire,
            addr as u64,
            trace::next_retire_seq(),
        );
    }
}

/// Feeds the retire→reclaim delay of `h` (if [`mark_retired`] stamped it)
/// into `stats`. `now_ns` is a caller-latched [`trace::now_ns`] so scan
/// loops pay one clock read per pass, not one per freed object.
///
/// # Safety
/// `h` must be a live header.
#[inline]
pub unsafe fn record_reclaim_delay(
    stats: &SchemeStats,
    tid: usize,
    h: *mut SmrHeader,
    now_ns: u64,
) {
    // SAFETY: `h` is live per this function's contract.
    let at = unsafe { &(*h).retire_ns }.load(Ordering::Relaxed);
    if at != 0 {
        stats.reclaim_delay(tid, now_ns.saturating_sub(at));
    }
}

/// Destroys a header-carrying object and records the free.
///
/// # Safety
/// Same contract as [`SmrHeader::destroy`].
pub unsafe fn destroy_tracked(h: *mut SmrHeader) {
    // SAFETY: `h` is live per this function's contract.
    let bytes = unsafe { (*h).bytes } as usize;
    // SAFETY: forwarded contract — live and unreachable.
    unsafe { SmrHeader::destroy(h) };
    orc_util::track::global().on_free(bytes);
}

/// Views an `AtomicPtr<T>` as the `AtomicUsize` word the schemes operate on.
/// Sound because the two types have identical size, alignment and atomic
/// representation.
#[inline]
pub fn as_word<T>(addr: &AtomicPtr<T>) -> &AtomicUsize {
    // SAFETY: `AtomicPtr<T>` and `AtomicUsize` have identical size,
    // alignment and atomic representation (both wrap one pointer-sized
    // word), so the reference cast is a valid reinterpretation.
    unsafe { &*(addr as *const AtomicPtr<T> as *const AtomicUsize) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct DropProbe(Arc<AtomicUsize>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn alloc_roundtrip_and_destroy() {
        let drops = Arc::new(AtomicUsize::new(0));
        let p = SmrHeader::alloc(DropProbe(drops.clone()), 7);
        // SAFETY: `p` came from `alloc` above, unshared, live.
        let h = unsafe { SmrHeader::of_value(p) };
        // SAFETY: `h` is live (as above).
        assert_eq!(unsafe { SmrHeader::value_word(h) }, p as usize);
        // SAFETY: as above.
        assert_eq!(unsafe { (*h).birth_era }, 7);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        // SAFETY: unshared; destroyed exactly once.
        unsafe { SmrHeader::destroy(h) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn value_is_usable_through_pointer() {
        let p = SmrHeader::alloc(vec![1u32, 2, 3], 0);
        // SAFETY: freshly allocated, unshared, destroyed exactly once.
        unsafe {
            assert_eq!((*p).len(), 3);
            (*p).push(4);
            assert_eq!((&*p)[3], 4);
            SmrHeader::destroy(SmrHeader::of_value(p));
        }
    }

    #[test]
    fn high_alignment_values_keep_offsets_consistent() {
        #[repr(align(64))]
        struct Aligned(#[allow(dead_code)] u8);
        let p = SmrHeader::alloc(Aligned(9), 0);
        assert_eq!(p as usize % 64, 0);
        // SAFETY: `p` came from `alloc` above, unshared, live.
        let h = unsafe { SmrHeader::of_value(p) };
        // SAFETY: `h` is live (as above).
        assert_eq!(unsafe { SmrHeader::value_word(h) }, p as usize);
        // SAFETY: unshared; destroyed exactly once.
        unsafe { SmrHeader::destroy(h) };
    }

    #[test]
    fn as_word_matches_pointer_value() {
        let x = Box::into_raw(Box::new(5u8));
        let a: AtomicPtr<u8> = AtomicPtr::new(x);
        assert_eq!(as_word(&a).load(Ordering::SeqCst), x as usize);
        // SAFETY: `x` came from `Box::into_raw` above; freed exactly once.
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn headers_are_linkable() {
        let a = SmrHeader::alloc(1u64, 0);
        let b = SmrHeader::alloc(2u64, 0);
        // SAFETY: both freshly allocated, unshared, destroyed exactly once.
        unsafe {
            let ha = SmrHeader::of_value(a);
            let hb = SmrHeader::of_value(b);
            (*ha).next.store(hb, Ordering::SeqCst);
            assert_eq!((*ha).next.load(Ordering::SeqCst), hb);
            SmrHeader::destroy(ha);
            SmrHeader::destroy(hb);
        }
    }
}
