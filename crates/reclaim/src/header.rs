//! Tracked-object layout shared by all manual schemes.
//!
//! Every node allocated through a scheme is laid out as
//! `SmrBox<T> { header: SmrHeader, value: T }` (`#[repr(C)]`, header first).
//! Data structures only ever see `*mut T` — the *value pointer* — while the
//! schemes' retired lists, handover slots and orphan chains carry *header
//! pointers*. The header records how to get back and forth (`value_offset`)
//! and how to destroy the object without knowing its type (`drop_fn`), plus
//! the birth/delete eras used by hazard eras.
//!
//! Hazard *slots*, by contrast, always hold value pointers, because that is
//! what data structures read from their links and publish.

use std::mem;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};

/// Era value meaning "no reservation" / "not yet deleted".
pub const NO_ERA: u64 = 0;

/// Header prepended to every tracked object.
#[repr(C)]
pub struct SmrHeader {
    /// Era clock value at allocation (hazard eras). Unused by HP/PTB/PTP.
    pub birth_era: u64,
    /// Era clock value at retirement (hazard eras). `NO_ERA` while live.
    pub del_era: AtomicU64,
    /// Intrusive link for retired lists / orphan chains.
    pub next: AtomicPtr<SmrHeader>,
    /// Type-erased destructor: reconstructs the `Box<SmrBox<T>>` and drops it.
    drop_fn: unsafe fn(*mut SmrHeader),
    /// Offset from the header to the value, in bytes.
    value_offset: u32,
    /// Total allocation size in bytes (for memory accounting).
    pub bytes: u32,
}

#[repr(C)]
pub struct SmrBox<T> {
    pub header: SmrHeader,
    pub value: T,
}

unsafe fn drop_box<T>(h: *mut SmrHeader) {
    drop(unsafe { Box::from_raw(h as *mut SmrBox<T>) });
}

impl SmrHeader {
    /// Heap-allocates `value` behind a header; returns the value pointer.
    pub fn alloc<T>(value: T, birth_era: u64) -> *mut T {
        let boxed: Box<SmrBox<T>> = Box::new(SmrBox {
            header: SmrHeader {
                birth_era,
                del_era: AtomicU64::new(NO_ERA),
                next: AtomicPtr::new(std::ptr::null_mut()),
                drop_fn: drop_box::<T>,
                value_offset: mem::offset_of!(SmrBox<T>, value) as u32,
                bytes: mem::size_of::<SmrBox<T>>() as u32,
            },
            value,
        });
        let raw = Box::into_raw(boxed);
        unsafe { &raw mut (*raw).value }
    }

    /// Recovers the header pointer from a value pointer.
    ///
    /// # Safety
    /// `value` must have been returned by [`SmrHeader::alloc::<T>`] and not
    /// yet destroyed.
    #[inline]
    pub unsafe fn of_value<T>(value: *mut T) -> *mut SmrHeader {
        unsafe { (value as *mut u8).sub(mem::offset_of!(SmrBox<T>, value)) as *mut SmrHeader }
    }

    /// The value pointer of this object, as the word data structures publish
    /// in hazard slots.
    ///
    /// # Safety
    /// `h` must be a live header.
    #[inline]
    pub unsafe fn value_word(h: *mut SmrHeader) -> usize {
        let off = unsafe { (*h).value_offset } as usize;
        h as usize + off
    }

    /// Runs the destructor and frees the allocation.
    ///
    /// # Safety
    /// `h` must be a live header no longer reachable by any thread.
    #[inline]
    pub unsafe fn destroy(h: *mut SmrHeader) {
        // Double-free tripwire: a destroyed header's del_era is stamped
        // with a magic value. Catching this *before* the allocator's
        // metadata is corrupted turns heisencrashes into clean aborts.
        let prev =
            unsafe { &(*h).del_era }.swap(u64::MAX - 0xDEAD, std::sync::atomic::Ordering::SeqCst);
        assert_ne!(
            prev,
            u64::MAX - 0xDEAD,
            "double free of tracked object {h:p}"
        );
        let f = unsafe { (*h).drop_fn };
        unsafe { f(h) };
    }
}

/// Allocates through [`SmrHeader::alloc`] and records the allocation in the
/// global memory accounting ([`orc_util::track`]).
pub fn alloc_tracked<T>(value: T, birth_era: u64) -> *mut T {
    let p = SmrHeader::alloc(value, birth_era);
    orc_util::track::global().on_alloc(mem::size_of::<SmrBox<T>>());
    p
}

/// Destroys a header-carrying object and records the free.
///
/// # Safety
/// Same contract as [`SmrHeader::destroy`].
pub unsafe fn destroy_tracked(h: *mut SmrHeader) {
    let bytes = unsafe { (*h).bytes } as usize;
    unsafe { SmrHeader::destroy(h) };
    orc_util::track::global().on_free(bytes);
}

/// Views an `AtomicPtr<T>` as the `AtomicUsize` word the schemes operate on.
/// Sound because the two types have identical size, alignment and atomic
/// representation.
#[inline]
pub fn as_word<T>(addr: &AtomicPtr<T>) -> &AtomicUsize {
    unsafe { &*(addr as *const AtomicPtr<T> as *const AtomicUsize) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    struct DropProbe(Arc<std::sync::atomic::AtomicUsize>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn alloc_roundtrip_and_destroy() {
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let p = SmrHeader::alloc(DropProbe(drops.clone()), 7);
        let h = unsafe { SmrHeader::of_value(p) };
        assert_eq!(unsafe { SmrHeader::value_word(h) }, p as usize);
        assert_eq!(unsafe { (*h).birth_era }, 7);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        unsafe { SmrHeader::destroy(h) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn value_is_usable_through_pointer() {
        let p = SmrHeader::alloc(vec![1u32, 2, 3], 0);
        unsafe {
            assert_eq!((*p).len(), 3);
            (*p).push(4);
            assert_eq!((&*p)[3], 4);
            SmrHeader::destroy(SmrHeader::of_value(p));
        }
    }

    #[test]
    fn high_alignment_values_keep_offsets_consistent() {
        #[repr(align(64))]
        struct Aligned(#[allow(dead_code)] u8);
        let p = SmrHeader::alloc(Aligned(9), 0);
        assert_eq!(p as usize % 64, 0);
        let h = unsafe { SmrHeader::of_value(p) };
        assert_eq!(unsafe { SmrHeader::value_word(h) }, p as usize);
        unsafe { SmrHeader::destroy(h) };
    }

    #[test]
    fn as_word_matches_pointer_value() {
        let x = Box::into_raw(Box::new(5u8));
        let a: AtomicPtr<u8> = AtomicPtr::new(x);
        assert_eq!(as_word(&a).load(Ordering::SeqCst), x as usize);
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn headers_are_linkable() {
        let a = SmrHeader::alloc(1u64, 0);
        let b = SmrHeader::alloc(2u64, 0);
        unsafe {
            let ha = SmrHeader::of_value(a);
            let hb = SmrHeader::of_value(b);
            (*ha).next.store(hb, Ordering::SeqCst);
            assert_eq!((*ha).next.load(Ordering::SeqCst), hb);
            SmrHeader::destroy(ha);
            SmrHeader::destroy(hb);
        }
    }
}
