//! Pass-the-pointer (PTP) — the paper's manual scheme (§3.1, Algorithm 2).
//!
//! Protection is identical to HP/PTB: publish in `hp[tid][idx]`, re-read,
//! retry. Retirement is where PTP differs: instead of accumulating a
//! thread-local retired list, `retire` *immediately* walks every published
//! hazard pointer and, on finding a slot protecting the object, atomically
//! `exchange`s the object into that slot's *handover* entry — transferring
//! responsibility for the free to the protecting thread. Whatever pointer
//! previously occupied that handover entry continues the walk from the same
//! position, so pointers only ever move *forward* through the
//! `[maxThreads][maxHPs]` handover matrix and each object is handed over at
//! most `t × H` times. If the walk falls off the end, the object is deleted
//! on the spot.
//!
//! Consequences (Table 1): at most one in-flight pointer per thread plus
//! `t × H` parked in handover entries — an **O(H·t)** bound, the first
//! linear bound for a pointer-based scheme — with no retired lists at all.
//!
//! `clear` additionally drains the slot's handover entry (the "optional"
//! lines 16–19 of Algorithm 2) so parked objects are not stranded when a
//! slot stops being used; the continuation walk starts at the clearing
//! thread's own row, preserving the forward-only invariant. This relies on
//! the documented PTP/OrcGC constraint that protections are never *copied*
//! from a higher-indexed slot to a lower-indexed one (fresh protections
//! always re-validate against a shared link, which retired objects are no
//! longer reachable from).

use crate::hazard::{ExitHooks, SlotArray};
use crate::header::{
    alloc_tracked, destroy_tracked, mark_retired, record_reclaim_delay, SmrHeader,
};
use crate::{Smr, MAX_HPS};
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{registry, trace_event_at, track};
use std::sync::Arc;

struct Inner {
    hp: SlotArray,
    /// `handovers[tid][idx]` holds a *header* pointer (as usize) parked on
    /// the hazard slot `hp[tid][idx]`.
    handovers: SlotArray,
    hooks: ExitHooks,
    unreclaimed: AtomicUsize,
    stats: SchemeStats,
}

/// Pass-the-pointer manual reclamation (PPoPP '21, Algorithm 2).
pub struct PassThePointer {
    inner: Arc<Inner>,
}

impl PassThePointer {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                hp: SlotArray::new(),
                handovers: SlotArray::new(),
                hooks: ExitHooks::new(),
                unreclaimed: AtomicUsize::new(0),
                stats: SchemeStats::new(),
            }),
        }
    }

    #[inline]
    fn attach(&self) -> usize {
        let tid = registry::tid();
        if self.inner.hooks.attach(tid) {
            // Hold only a Weak reference: the hook must not keep the
            // scheme alive after its last user drops it (Inner::drop then
            // reclaims everything, which is strictly better).
            let inner = Arc::downgrade(&self.inner);
            registry::defer_at_exit(move || {
                if let Some(inner) = inner.upgrade() {
                    inner.thread_exit(tid);
                }
            });
        }
        tid
    }
}

impl Default for PassThePointer {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PassThePointer {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Inner {
    /// Algorithm 2, `handoverOrDelete`: walk the hazard matrix from row
    /// `start`; hand the object to any slot protecting it; delete at the
    /// end of the walk.
    fn handover_or_delete(&self, tid: usize, mut h: *mut SmrHeader, start: usize) {
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        let wm = registry::registered_watermark();
        let mut it = start;
        while it < wm {
            let mut idx = 0;
            while idx < MAX_HPS {
                // SAFETY: `h` is a retired-but-not-destroyed header owned
                // by this walk; the header stays readable until the walk
                // deletes it or parks it.
                let word = unsafe { SmrHeader::value_word(h) };
                if self.hp.get(it, idx).load(Ordering::SeqCst) == word {
                    let prev = self
                        .handovers
                        .get(it, idx)
                        .swap(h as usize, Ordering::SeqCst);
                    self.stats.bump(tid, Event::Handover);
                    trace_event_at!(tid, EventKind::Handover, h as usize);
                    if prev == 0 {
                        trace_event_at!(tid, EventKind::ScanEnd, 0u64);
                        return;
                    }
                    h = prev as *mut SmrHeader;
                    // Re-check the same slot against the pointer we just
                    // took over (Algorithm 2, lines 30–31).
                    // SAFETY: `h` is now the displaced occupant — also a
                    // retired-but-live header owned by this walk.
                    let word = unsafe { SmrHeader::value_word(h) };
                    if self.hp.get(it, idx).load(Ordering::SeqCst) == word {
                        continue;
                    }
                }
                idx += 1;
            }
            it += 1;
        }
        if orc_util::stats::enabled() {
            // SAFETY: `h` is still live here (freed below).
            unsafe { record_reclaim_delay(&self.stats, tid, h, trace::now_ns()) };
        }
        // SAFETY: the walk covered every registered row without finding a
        // protector, and forward-only handovers mean no slot behind us can
        // regain a protection on a retired (unreachable) object —
        // Algorithm 2's deletion condition.
        unsafe { destroy_tracked(h) };
        self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
        track::global().on_reclaim();
        self.stats.bump(tid, Event::Reclaim);
        self.stats.batch(tid, 1);
        trace_event_at!(tid, EventKind::ReclaimBatch, 1u64);
        trace_event_at!(tid, EventKind::ScanEnd, 1u64);
    }

    /// Clears `hp[tid][idx]` and continues the retirement of any pointer
    /// parked in the matching handover entry.
    fn clear_slot(&self, tid: usize, idx: usize) {
        self.hp.clear(tid, idx);
        if self.handovers.get(tid, idx).load(Ordering::SeqCst) != 0 {
            let parked = self.handovers.get(tid, idx).swap(0, Ordering::SeqCst);
            if parked != 0 {
                self.handover_or_delete(tid, parked as *mut SmrHeader, tid);
            }
        }
    }

    fn thread_exit(&self, tid: usize) {
        for idx in 0..MAX_HPS {
            self.clear_slot(tid, idx);
        }
        self.hooks.reset(tid);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Exclusive access at teardown: anything still parked is freed.
        for tid in 0..registry::max_threads() {
            for idx in 0..MAX_HPS {
                let parked = self.handovers.get(tid, idx).swap(0, Ordering::SeqCst);
                if parked != 0 {
                    // SAFETY: `&mut self` in `drop` proves no thread still
                    // uses the scheme; a parked object is owned by its
                    // entry and freed exactly once.
                    unsafe { destroy_tracked(parked as *mut SmrHeader) };
                    track::global().on_reclaim();
                }
            }
        }
    }
}

impl Smr for PassThePointer {
    fn name(&self) -> &'static str {
        "PTP"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        alloc_tracked(value, 0)
    }

    fn end_op(&self) {
        let tid = self.attach();
        for idx in 0..MAX_HPS {
            self.inner.clear_slot(tid, idx);
        }
    }

    #[inline]
    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize {
        let tid = self.attach();
        self.inner
            .hp
            .protect_loop(tid, idx, addr, &self.inner.stats)
    }

    #[inline]
    fn publish(&self, idx: usize, word: usize) {
        let tid = self.attach();
        self.inner
            .hp
            .publish_copy(tid, idx, orc_util::marked::unmark(word));
    }

    #[inline]
    fn clear(&self, idx: usize) {
        let tid = self.attach();
        self.inner.clear_slot(tid, idx);
    }

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let tid = self.attach();
        // SAFETY: `ptr` came from `Smr::alloc` (retire's contract), so it
        // is the value field of a live `SmrLinked` allocation.
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        // SAFETY: `h` is the live header just recovered from `ptr`.
        unsafe { mark_retired(tid, h) };
        let now = self.inner.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.stats.bump(tid, Event::Retire);
        self.inner.stats.note_unreclaimed(now as u64);
        track::global().on_retire();
        // Algorithm 2, line 22: the walk starts at row 0.
        self.inner.handover_or_delete(tid, h, 0);
    }

    fn flush(&self) {
        // PTP keeps no retired lists; nothing to drain beyond our own
        // handover entries, which clear() already services.
        let tid = self.attach();
        self.inner.stats.bump(tid, Event::Flush);
        for idx in 0..MAX_HPS {
            if self.inner.hp.get(tid, idx).load(Ordering::SeqCst) == 0 {
                self.inner.clear_slot(tid, idx);
            }
        }
    }

    fn unreclaimed(&self) -> usize {
        self.inner.unreclaimed.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn is_lock_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::AtomicPtr;

    #[test]
    fn unprotected_retire_frees_immediately() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let ptp = PassThePointer::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let p = ptp.alloc(Probe(drops.clone()));
        // SAFETY: `p` came from this scheme's `alloc`, retired once.
        unsafe { ptp.retire(p) };
        assert_eq!(ptp.unreclaimed(), 0, "no protector: deleted on the spot");
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn protected_retire_parks_in_handover() {
        let ptp = PassThePointer::new();
        let p = ptp.alloc(5u32);
        let addr = AtomicPtr::new(p);
        let got = ptp.protect_ptr(0, &addr);
        assert_eq!(got, p);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ptp.retire(p) };
        // Parked on our own slot: still readable, counted as unreclaimed.
        assert_eq!(ptp.unreclaimed(), 1);
        // SAFETY: our hazard slot protects `p`; retire parked it instead
        // of freeing it.
        assert_eq!(unsafe { *p }, 5);
        // Clearing the slot continues (and here finishes) the retirement.
        ptp.clear(0);
        assert_eq!(ptp.unreclaimed(), 0);
    }

    #[test]
    fn end_op_drains_all_handovers() {
        let ptp = PassThePointer::new();
        let mut ptrs = Vec::new();
        for i in 0..4 {
            let p = ptp.alloc(i as u64);
            let addr = AtomicPtr::new(p);
            ptp.protect_ptr(i, &addr);
            ptrs.push(p);
        }
        for p in &ptrs {
            // SAFETY: each pointer came from `alloc` and is retired once.
            unsafe { ptp.retire(*p) };
        }
        assert_eq!(ptp.unreclaimed(), 4);
        ptp.end_op();
        assert_eq!(ptp.unreclaimed(), 0);
    }

    #[test]
    fn handover_chain_pushes_forward() {
        // Two objects protected by the same slot in sequence: retiring the
        // second must displace the first from the handover entry and
        // continue its walk (deleting it, since nothing else protects it).
        let ptp = PassThePointer::new();
        let a = ptp.alloc(1u64);
        let b = ptp.alloc(2u64);
        let addr = AtomicPtr::new(a);
        ptp.protect_ptr(0, &addr);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ptp.retire(a) }; // parked on slot 0
        assert_eq!(ptp.unreclaimed(), 1);
        // Re-protect slot 0 on b, then retire b: b parks, a is displaced and
        // freed (slot no longer protects a).
        addr.store(b, Ordering::SeqCst);
        ptp.protect_ptr(0, &addr);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ptp.retire(b) };
        assert_eq!(ptp.unreclaimed(), 1, "only b should remain parked");
        // SAFETY: `b` is parked on our slot, not freed.
        assert_eq!(unsafe { *b }, 2);
        ptp.end_op();
        assert_eq!(ptp.unreclaimed(), 0);
    }

    #[test]
    fn cross_thread_handover() {
        let ptp = PassThePointer::new();
        let p = ptp.alloc(77u64);
        let addr = Arc::new(AtomicPtr::new(p));
        let ptp2 = ptp.clone();
        let addr2 = addr.clone();
        let (protected_tx, protected_rx) = std::sync::mpsc::channel();
        let (retired_tx, retired_rx) = std::sync::mpsc::channel::<()>();
        let t = std::thread::spawn(move || {
            let got = ptp2.protect_ptr(0, &addr2);
            protected_tx.send(()).unwrap();
            retired_rx.recv().unwrap();
            // Object was retired by the main thread while we protect it; we
            // must still be able to read it.
            // SAFETY: our hazard slot protects `got`; the concurrent
            // retire parked it on our handover entry instead of freeing.
            assert_eq!(unsafe { *got }, 77);
            ptp2.end_op(); // draining our handover frees it
        });
        protected_rx.recv().unwrap();
        // SAFETY: allocated above, retired once (by this thread only).
        unsafe { ptp.retire(p) };
        assert_eq!(ptp.unreclaimed(), 1, "parked on the reader's slot");
        retired_tx.send(()).unwrap();
        t.join().unwrap();
        assert_eq!(ptp.unreclaimed(), 0);
    }

    #[test]
    fn linear_bound_holds_under_stress() {
        // t threads each with H protections; an adversary retires objects
        // continuously. PTP guarantees unreclaimed <= t*(H+1) at all times.
        let ptp = Arc::new(PassThePointer::new());
        let readers = 3usize;
        let stop = Arc::new(orc_util::atomics::AtomicBool::new(false));
        let shared: Arc<Vec<AtomicPtr<u64>>> = Arc::new(
            (0..MAX_HPS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        );
        for s in shared.iter() {
            s.store(ptp.alloc(0u64), Ordering::SeqCst);
        }
        let mut handles = Vec::new();
        for _ in 0..readers {
            let ptp = ptp.clone();
            let shared = shared.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for idx in 0..MAX_HPS {
                        let p = ptp.protect_ptr(idx, &shared[idx]);
                        if !p.is_null() {
                            // SAFETY: our hazard slot protects `p`; a
                            // concurrent retire parks it rather than
                            // freeing it while the protection stands.
                            unsafe { std::ptr::read_volatile(p) };
                        }
                    }
                    ptp.end_op();
                }
            }));
        }
        let mut max_seen = 0;
        for round in 0..2_000u64 {
            let idx = (round as usize) % MAX_HPS;
            let fresh = ptp.alloc(round);
            let old = shared[idx].swap(fresh, Ordering::SeqCst);
            // SAFETY: the swap made us the unlinker; each object is
            // retired by exactly one thread.
            unsafe { ptp.retire(old) };
            max_seen = max_seen.max(ptp.unreclaimed());
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let bound = (readers + 2) * (MAX_HPS + 1);
        assert!(
            max_seen <= bound,
            "unreclaimed {max_seen} exceeded linear bound {bound}"
        );
        // Cleanup.
        for s in shared.iter() {
            let p = s.swap(std::ptr::null_mut(), Ordering::SeqCst);
            // SAFETY: readers joined; each remaining object is retired
            // exactly once.
            unsafe { ptp.retire(p) };
        }
        ptp.end_op();
        assert_eq!(ptp.unreclaimed(), 0);
    }
}
