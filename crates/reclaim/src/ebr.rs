//! Epoch-based reclamation (Fraser 2004; RCU-style).
//!
//! The quiescence baseline: a global epoch advances only when every pinned
//! thread has observed the current value; objects retired in epoch `e` are
//! freed once the epoch reaches `e + 2`. Reads need no per-pointer
//! publication (`protect` is a plain load), which makes EBR the fastest
//! scheme on read paths — but a single stalled reader halts reclamation
//! entirely, so the unreclaimed bound is **unbounded** (Table 1 lists EBR
//! as *blocking*, the reason it cannot give lock-free structures lock-free
//! reclamation).

use crate::hazard::{ExitHooks, OrphanStack, PerThread};
use crate::header::{
    alloc_tracked, destroy_tracked, mark_retired, record_reclaim_delay, SmrHeader,
};
use crate::Smr;
use orc_util::atomics::{AtomicU64, AtomicUsize, Ordering};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{registry, trace_event_at, track, CachePadded};
use std::sync::Arc;

/// Retires between advance attempts.
const ADVANCE_FREQ: usize = 64;

#[derive(Default)]
struct ThreadState {
    /// Three limbo bins, indexed by `epoch % 3`.
    limbo: [Vec<*mut SmrHeader>; 3],
    retires: usize,
}

// SAFETY: the raw header pointers in the limbo bins are retired objects
// whose ownership was transferred to this state by `retire`; no other
// thread dereferences them until `collect`/`Drop` destroys them here.
unsafe impl Send for ThreadState {}

struct Inner {
    global_epoch: AtomicU64,
    /// `local[tid]`: 0 when unpinned, else the epoch the thread is pinned
    /// at.
    local: Box<[CachePadded<AtomicU64>]>,
    threads: PerThread<ThreadState>,
    orphans: OrphanStack,
    hooks: ExitHooks,
    unreclaimed: AtomicUsize,
    stats: SchemeStats,
}

/// Epoch-based reclamation.
pub struct Ebr {
    inner: Arc<Inner>,
}

impl Ebr {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                // Start at 3 so epoch-2 arithmetic never underflows and 0
                // can mean "unpinned".
                global_epoch: AtomicU64::new(3),
                local: (0..registry::max_threads())
                    .map(|_| CachePadded::new(AtomicU64::new(0)))
                    .collect(),
                threads: PerThread::new(),
                orphans: OrphanStack::new(),
                hooks: ExitHooks::new(),
                unreclaimed: AtomicUsize::new(0),
                stats: SchemeStats::new(),
            }),
        }
    }

    #[inline]
    fn attach(&self) -> usize {
        let tid = registry::tid();
        if self.inner.hooks.attach(tid) {
            // Hold only a Weak reference: the hook must not keep the
            // scheme alive after its last user drops it (Inner::drop then
            // reclaims everything, which is strictly better).
            let inner = Arc::downgrade(&self.inner);
            registry::defer_at_exit(move || {
                if let Some(inner) = inner.upgrade() {
                    inner.thread_exit(tid);
                }
            });
        }
        tid
    }

    /// The epoch this instance is currently at (diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.inner.global_epoch.load(Ordering::SeqCst)
    }
}

impl Default for Ebr {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Ebr {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Inner {
    /// Advances the global epoch if every pinned thread has caught up;
    /// returns the (possibly new) epoch.
    fn try_advance(&self) -> u64 {
        let e = self.global_epoch.load(Ordering::SeqCst);
        let wm = registry::registered_watermark();
        for t in 0..wm {
            let le = self.local[t].load(Ordering::SeqCst);
            if le != 0 && le != e {
                return e; // straggler: cannot advance
            }
        }
        // Multiple threads may race; at most one increment wins per epoch.
        if self
            .global_epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            orc_util::trace_event!(EventKind::EpochAdvance, e + 1);
        }
        self.global_epoch.load(Ordering::SeqCst)
    }

    /// Frees the limbo bin that is two epochs stale.
    fn collect(&self, tid: usize, epoch: u64) {
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        // SAFETY: `tid` is the calling thread's registry slot; only the
        // owner (or its exit hook / `Inner::drop`) touches this state.
        let st = unsafe { self.threads.get_mut(tid) };
        // Adopt orphans into the *current* bin: we don't know their retire
        // epoch, so conservatively treat them as retired now (they wait the
        // full two advances before being freed).
        for h in self.orphans.drain() {
            st.limbo[(epoch % 3) as usize].push(h);
        }
        let stale = &mut st.limbo[((epoch + 1) % 3) as usize];
        // Bin (e+1)%3 == (e-2)%3 holds objects retired at e-2: all threads
        // have since passed through at least one quiescent transition.
        let n = stale.len();
        let delay_now = if orc_util::stats::enabled() {
            trace::now_ns()
        } else {
            0
        };
        for h in stale.drain(..) {
            // SAFETY: `h` is still live here (freed two lines below).
            unsafe { record_reclaim_delay(&self.stats, tid, h, delay_now) };
            // SAFETY: `h` was retired at least two epoch advances ago, so
            // every thread pinned at retire time has since unpinned — no
            // live reference can remain (Fraser's grace-period argument).
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
        self.unreclaimed.fetch_sub(n, Ordering::Relaxed);
        self.stats.add(tid, Event::Reclaim, n as u64);
        self.stats.batch(tid, n as u64);
        if n != 0 {
            trace_event_at!(tid, EventKind::ReclaimBatch, n);
        }
        trace_event_at!(tid, EventKind::ScanEnd, n);
    }

    fn thread_exit(&self, tid: usize) {
        self.local[tid].store(0, Ordering::SeqCst);
        // SAFETY: called by the exiting owner thread (exit hook), the only
        // remaining user of slot `tid`.
        let st = unsafe { self.threads.get_mut(tid) };
        for bin in &mut st.limbo {
            for h in bin.drain(..) {
                // SAFETY: `h` is a retired header drained from our own bin;
                // pushing transfers its ownership to the orphan stack.
                unsafe { self.orphans.push(h) };
            }
        }
        self.hooks.reset(tid);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for tid in 0..self.threads.len() {
            // SAFETY: `&mut self` in `drop` proves no thread is still using
            // the scheme, so taking every per-thread state is exclusive.
            let st = unsafe { self.threads.get_mut(tid) };
            for bin in &mut st.limbo {
                for h in bin.drain(..) {
                    // SAFETY: all users are gone (see above); every retired
                    // object is now unreachable and destroyed exactly once.
                    unsafe { destroy_tracked(h) };
                    track::global().on_reclaim();
                }
            }
        }
        for h in self.orphans.drain() {
            // SAFETY: as above — no users remain; orphaned retirees are
            // exclusively ours.
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
    }
}

impl Smr for Ebr {
    fn name(&self) -> &'static str {
        "EBR"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        alloc_tracked(value, 0)
    }

    /// Pin: publish the current global epoch (with a full fence, via swap).
    fn begin_op(&self) {
        let tid = self.attach();
        let e = self.inner.global_epoch.load(Ordering::SeqCst);
        self.inner.local[tid].swap(e, Ordering::SeqCst);
        // Injection point: the pin is published; a reader stalled here
        // blocks the epoch from ever advancing — EBR's unbounded case.
        orc_util::stall::hit(orc_util::stall::StallPoint::BeginOp);
    }

    /// Unpin.
    fn end_op(&self) {
        let tid = self.attach();
        self.inner.local[tid].store(0, Ordering::Release);
    }

    /// No per-pointer publication: epoch pinning already protects every
    /// object reachable during the operation.
    #[inline]
    fn protect(&self, _idx: usize, addr: &AtomicUsize) -> usize {
        let word = addr.load(Ordering::SeqCst);
        orc_util::stall::hit(orc_util::stall::StallPoint::Protect);
        word
    }

    #[inline]
    fn publish(&self, _idx: usize, _word: usize) {}

    #[inline]
    fn clear(&self, _idx: usize) {}

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let tid = self.attach();
        // SAFETY: `ptr` came from `Smr::alloc` (retire's contract), so it
        // is the value field of a live `SmrLinked` allocation.
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        // SAFETY: `h` is the live header just recovered from `ptr`.
        unsafe { mark_retired(tid, h) };
        let now = self.inner.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.stats.bump(tid, Event::Retire);
        self.inner.stats.note_unreclaimed(now as u64);
        track::global().on_retire();
        let e = self.inner.global_epoch.load(Ordering::SeqCst);
        // SAFETY: `tid` is the calling thread's slot; owner-only access.
        let st = unsafe { self.inner.threads.get_mut(tid) };
        st.limbo[(e % 3) as usize].push(h);
        st.retires += 1;
        if st.retires >= ADVANCE_FREQ {
            st.retires = 0;
            let e = self.inner.try_advance();
            self.inner.collect(tid, e);
        }
    }

    fn flush(&self) {
        let tid = self.attach();
        self.inner.stats.bump(tid, Event::Flush);
        // Unpinned flush can advance up to three times, emptying all bins
        // if no other thread is pinned behind.
        for _ in 0..3 {
            let e = self.inner.try_advance();
            self.inner.collect(tid, e);
        }
    }

    fn unreclaimed(&self) -> usize {
        self.inner.unreclaimed.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// EBR's retire is blocking: a stalled pinned thread stops reclamation.
    fn is_lock_free(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::AtomicPtr;

    #[test]
    fn retire_then_flush_reclaims_when_quiescent() {
        let ebr = Ebr::new();
        for i in 0..10 {
            let p = ebr.alloc(i as u64);
            // SAFETY: `p` came from this scheme's `alloc` and is retired
            // exactly once.
            unsafe { ebr.retire(p) };
        }
        assert!(ebr.unreclaimed() > 0);
        ebr.flush();
        assert_eq!(ebr.unreclaimed(), 0);
    }

    #[test]
    fn pinned_straggler_blocks_reclamation() {
        let ebr = Ebr::new();
        let ebr2 = ebr.clone();
        let (pinned_tx, pinned_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let t = std::thread::spawn(move || {
            ebr2.begin_op(); // pin and stall
            pinned_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            ebr2.end_op();
        });
        pinned_rx.recv().unwrap();
        let p = ebr.alloc(1u64);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { ebr.retire(p) };
        ebr.flush();
        assert_eq!(
            ebr.unreclaimed(),
            1,
            "stalled pinned reader must block epoch advance"
        );
        release_tx.send(()).unwrap();
        t.join().unwrap();
        ebr.flush();
        assert_eq!(ebr.unreclaimed(), 0);
    }

    #[test]
    fn objects_survive_while_reader_pinned_in_same_epoch() {
        let ebr = Ebr::new();
        ebr.begin_op();
        let p = ebr.alloc(5u64);
        let addr = AtomicPtr::new(p);
        let got = ebr.protect_ptr(0, &addr);
        // SAFETY: `got` came from `alloc` above and is retired once.
        unsafe { ebr.retire(got) };
        // We are pinned; even aggressive flushing from this thread cannot
        // free the object out from under us... but flush from the same
        // thread while pinned would deadlock semantics — EBR contract says
        // retire defers. Simply check the object is still readable.
        // SAFETY: we are pinned in the retire epoch, so the object cannot
        // have been freed.
        assert_eq!(unsafe { *got }, 5);
        ebr.end_op();
        ebr.flush();
        assert_eq!(ebr.unreclaimed(), 0);
    }

    #[test]
    fn concurrent_stress() {
        let ebr = Arc::new(Ebr::new());
        let addr = Arc::new(AtomicPtr::new(ebr.alloc(0u64)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ebr = ebr.clone();
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        ebr.begin_op();
                        if t % 2 == 0 {
                            let n = ebr.alloc(i);
                            let old = addr.swap(n, Ordering::SeqCst);
                            // SAFETY: the swap made us the unlinker; each
                            // object is retired by exactly one thread.
                            unsafe { ebr.retire(old) };
                        } else {
                            let p = ebr.protect_ptr(0, &addr);
                            // SAFETY: we are pinned; EBR defers any
                            // concurrent retire of `p` past our `end_op`.
                            assert!(unsafe { *p } < 4_000);
                        }
                        ebr.end_op();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = addr.load(Ordering::SeqCst);
        // SAFETY: all threads joined; `last` is the one live object and is
        // retired exactly once.
        unsafe { ebr.retire(last) };
        ebr.flush();
        assert_eq!(ebr.unreclaimed(), 0);
    }
}
