//! Hazard eras (Ramalhete & Correia 2017).
//!
//! Replaces per-pointer publication with per-*era* reservation: a global
//! era clock stamps each object's birth (at `alloc`) and death (at
//! `retire`). `protect` publishes the current era in a reservation slot —
//! skipping the store entirely when the era has not advanced, which is the
//! scheme's performance advantage over HP. An object can be freed once no
//! reservation falls inside its `[birth_era, del_era]` lifetime interval.
//!
//! The cost is memory: every reservation protects *all* objects alive in
//! that era, so the unreclaimed bound grows to `O(#L·H·t²)` (Table 1), and
//! each object carries two extra words (birth/del era) — which our common
//! [`SmrHeader`] already provides.

use crate::hazard::{ExitHooks, OrphanStack, PerThread, SlotArray};
use crate::header::{
    alloc_tracked, destroy_tracked, mark_retired, record_reclaim_delay, SmrHeader,
};
use crate::{Smr, MAX_HPS};
use orc_util::atomics::{AtomicU64, AtomicUsize, Ordering};
use orc_util::stats::{Event, SchemeStats, StatsSnapshot};
use orc_util::trace::{self, EventKind};
use orc_util::{registry, trace_event_at, track};
use std::sync::Arc;

/// How many retires between era-clock increments (the original paper's
/// "epoch frequency").
const ERA_FREQ: usize = 64;

#[derive(Default)]
struct ThreadState {
    retired: Vec<*mut SmrHeader>,
    retires_since_bump: usize,
    scratch: Vec<u64>,
}

// SAFETY: the raw header pointers in `retired` are objects whose
// ownership was transferred here by `retire`; no other thread touches
// them until `scan`/`Drop` destroys the unprotected ones.
unsafe impl Send for ThreadState {}

struct Inner {
    era_clock: AtomicU64,
    /// Reservation slots hold era values (0 = none), reusing the word-sized
    /// slot array (usize == u64 on the supported 64-bit targets).
    reservations: SlotArray,
    threads: PerThread<ThreadState>,
    orphans: OrphanStack,
    hooks: ExitHooks,
    unreclaimed: AtomicUsize,
    stats: SchemeStats,
    threshold_base: usize,
}

/// Hazard-eras reclamation (SPAA 2017 brief announcement).
pub struct HazardEras {
    inner: Arc<Inner>,
}

impl HazardEras {
    pub fn new() -> Self {
        Self::with_threshold(0)
    }

    pub fn with_threshold(threshold_base: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                era_clock: AtomicU64::new(1),
                reservations: SlotArray::new(),
                threads: PerThread::new(),
                orphans: OrphanStack::new(),
                hooks: ExitHooks::new(),
                unreclaimed: AtomicUsize::new(0),
                stats: SchemeStats::new(),
                threshold_base,
            }),
        }
    }

    #[inline]
    fn attach(&self) -> usize {
        let tid = registry::tid();
        if self.inner.hooks.attach(tid) {
            // Hold only a Weak reference: the hook must not keep the
            // scheme alive after its last user drops it (Inner::drop then
            // reclaims everything, which is strictly better).
            let inner = Arc::downgrade(&self.inner);
            registry::defer_at_exit(move || {
                if let Some(inner) = inner.upgrade() {
                    inner.thread_exit(tid);
                }
            });
        }
        tid
    }

    /// Current era-clock value (exposed for the primitive-cost benches).
    pub fn current_era(&self) -> u64 {
        self.inner.era_clock.load(Ordering::SeqCst)
    }
}

impl Default for HazardEras {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for HazardEras {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Inner {
    fn threshold(&self) -> usize {
        if self.threshold_base != 0 {
            self.threshold_base
        } else {
            2 * MAX_HPS * registry::registered_watermark() + 8
        }
    }

    fn scan(&self, tid: usize) {
        self.stats.bump(tid, Event::Scan);
        trace_event_at!(tid, EventKind::ScanBegin);
        // SAFETY: `tid` is the calling thread's registry slot; only the
        // owner (or its exit hook / `Inner::drop`) touches this state.
        let st = unsafe { self.threads.get_mut(tid) };
        for h in self.orphans.drain() {
            st.retired.push(h);
        }
        let ThreadState {
            retired, scratch, ..
        } = st;
        // Collect active era reservations.
        scratch.clear();
        let wm = registry::registered_watermark();
        for it in 0..wm {
            for idx in 0..MAX_HPS {
                let e = self.reservations.get(it, idx).load(Ordering::SeqCst) as u64;
                if e != 0 {
                    scratch.push(e);
                }
            }
        }
        scratch.sort_unstable();
        let mut kept = Vec::with_capacity(retired.len());
        let mut freed = 0u64;
        let delay_now = if orc_util::stats::enabled() {
            trace::now_ns()
        } else {
            0
        };
        for &h in retired.iter() {
            // SAFETY: `h` sits on our retired list — retired but not yet
            // destroyed, so the header is live and readable.
            let birth = unsafe { (*h).birth_era };
            // SAFETY: as above.
            let del = unsafe { (*h).del_era.load(Ordering::Relaxed) };
            // Freed iff no reservation e with birth <= e <= del.
            let lo = scratch.partition_point(|&e| e < birth);
            let covered = scratch.get(lo).is_some_and(|&e| e <= del);
            if covered {
                kept.push(h);
            } else {
                // SAFETY: `h` is still live here (freed two lines below).
                unsafe { record_reclaim_delay(&self.stats, tid, h, delay_now) };
                // SAFETY: no reservation covers `[birth, del]`, so no
                // thread holds (or can regain) a reference — the HE
                // reclamation condition.
                unsafe { destroy_tracked(h) };
                self.unreclaimed.fetch_sub(1, Ordering::Relaxed);
                track::global().on_reclaim();
                freed += 1;
            }
        }
        self.stats.add(tid, Event::Reclaim, freed);
        self.stats.batch(tid, freed);
        if freed != 0 {
            trace_event_at!(tid, EventKind::ReclaimBatch, freed);
        }
        trace_event_at!(tid, EventKind::ScanEnd, freed);
        *retired = kept;
    }

    fn thread_exit(&self, tid: usize) {
        self.reservations.clear_row(tid);
        self.scan(tid);
        // SAFETY: called by the exiting owner thread (exit hook), the only
        // remaining user of slot `tid`.
        let st = unsafe { self.threads.get_mut(tid) };
        for h in st.retired.drain(..) {
            // SAFETY: `h` is a retired header drained from our own list;
            // pushing transfers its ownership to the orphan stack.
            unsafe { self.orphans.push(h) };
        }
        self.hooks.reset(tid);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for tid in 0..self.threads.len() {
            // SAFETY: `&mut self` in `drop` proves no thread is still using
            // the scheme, so taking every per-thread state is exclusive.
            let st = unsafe { self.threads.get_mut(tid) };
            for h in st.retired.drain(..) {
                // SAFETY: all users are gone (see above); every retired
                // object is now unreachable and destroyed exactly once.
                unsafe { destroy_tracked(h) };
                track::global().on_reclaim();
            }
        }
        for h in self.orphans.drain() {
            // SAFETY: as above — orphaned retirees are exclusively ours.
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
    }
}

impl Smr for HazardEras {
    fn name(&self) -> &'static str {
        "HE"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        let era = self.inner.era_clock.load(Ordering::SeqCst);
        alloc_tracked(value, era)
    }

    fn end_op(&self) {
        let tid = self.attach();
        self.inner.reservations.clear_row(tid);
    }

    /// The HE protect loop: publish the current era (not the pointer) and
    /// re-read until the era is stable across the load.
    #[inline]
    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize {
        let tid = self.attach();
        let res = self.inner.reservations.get(tid, idx);
        let mut prev = res.load(Ordering::Relaxed) as u64;
        loop {
            let word = addr.load(Ordering::SeqCst);
            let era = self.inner.era_clock.load(Ordering::SeqCst);
            if era == prev {
                // Injection point: the era reservation is published; a
                // stalled reader here pins every object alive in `era`.
                orc_util::stall::hit(orc_util::stall::StallPoint::Protect);
                return word;
            }
            // The clock moved past an existing reservation: another
            // publish-and-revalidate round, HE's analogue of the pointer
            // schemes' failed validation. (prev == 0 is the initial
            // publication, not a retry.)
            if prev != 0 {
                self.inner.stats.bump(tid, Event::ProtectRetry);
                trace_event_at!(tid, EventKind::ProtectRetry, word);
            }
            res.swap(era as usize, Ordering::SeqCst);
            prev = era;
        }
    }

    #[inline]
    fn publish(&self, idx: usize, _word: usize) {
        // Reserving the current era protects every object alive now,
        // including the one being republished.
        let tid = self.attach();
        let era = self.inner.era_clock.load(Ordering::SeqCst);
        self.inner
            .reservations
            .get(tid, idx)
            .swap(era as usize, Ordering::SeqCst);
    }

    #[inline]
    fn clear(&self, idx: usize) {
        let tid = self.attach();
        self.inner.reservations.clear(tid, idx);
    }

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let tid = self.attach();
        // SAFETY: `ptr` came from `Smr::alloc` (retire's contract), so it
        // is the value field of a live `SmrLinked` allocation.
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        // SAFETY: `h` is the live header just recovered from `ptr`.
        unsafe { mark_retired(tid, h) };
        let era = self.inner.era_clock.load(Ordering::SeqCst);
        // SAFETY: `h` is live until this scheme destroys it, which cannot
        // happen before it lands on the retired list below.
        unsafe { (*h).del_era.store(era, Ordering::Relaxed) };
        let now = self.inner.unreclaimed.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.stats.bump(tid, Event::Retire);
        self.inner.stats.note_unreclaimed(now as u64);
        track::global().on_retire();
        // SAFETY: `tid` is the calling thread's slot; owner-only access.
        let st = unsafe { self.inner.threads.get_mut(tid) };
        st.retired.push(h);
        st.retires_since_bump += 1;
        if st.retires_since_bump >= ERA_FREQ {
            st.retires_since_bump = 0;
            let new_era = self.inner.era_clock.fetch_add(1, Ordering::SeqCst) + 1;
            trace_event_at!(tid, EventKind::EpochAdvance, new_era);
        }
        if st.retired.len() >= self.inner.threshold() {
            self.inner.scan(tid);
        }
    }

    fn flush(&self) {
        let tid = self.attach();
        self.inner.stats.bump(tid, Event::Flush);
        self.inner.era_clock.fetch_add(1, Ordering::SeqCst);
        self.inner.scan(tid);
    }

    fn unreclaimed(&self) -> usize {
        self.inner.unreclaimed.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn is_lock_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orc_util::atomics::AtomicPtr;

    #[test]
    fn object_lifetime_interval_is_respected() {
        let he = HazardEras::with_threshold(1);
        let p = he.alloc(1u64);
        let addr = AtomicPtr::new(p);
        let got = he.protect_ptr(0, &addr);
        assert_eq!(got, p);
        // SAFETY: `p` came from this scheme's `alloc`, retired once.
        unsafe { he.retire(p) };
        // Our reservation covers [birth, del]: must not be freed.
        he.flush();
        assert_eq!(he.unreclaimed(), 1);
        // SAFETY: our era reservation covers `p`'s lifetime interval, so
        // it cannot have been freed.
        assert_eq!(unsafe { *p }, 1);
        he.end_op();
        he.flush();
        assert_eq!(he.unreclaimed(), 0);
    }

    #[test]
    fn old_reservation_does_not_protect_newer_objects() {
        let he = HazardEras::with_threshold(1);
        // Reserve the current era first.
        let dummy = he.alloc(0u64);
        let daddr = AtomicPtr::new(dummy);
        he.protect_ptr(0, &daddr);
        // Advance the clock well past our reservation, then allocate:
        // the new object's birth era exceeds our reserved era.
        for _ in 0..4 {
            he.inner.era_clock.fetch_add(1, Ordering::SeqCst);
        }
        let newer = he.alloc(9u64);
        // SAFETY: allocated above, unshared, retired once.
        unsafe { he.retire(newer) };
        he.flush();
        // `newer` was born after our reservation; it must be freed even
        // though slot 0 still holds an (older) era.
        assert_eq!(he.unreclaimed(), 0);
        he.end_op();
        // SAFETY: allocated above, unshared, retired once.
        unsafe { he.retire(dummy) };
        he.flush();
        assert_eq!(he.unreclaimed(), 0);
    }

    #[test]
    fn protect_skips_store_when_era_unchanged() {
        let he = HazardEras::new();
        let p = he.alloc(3u64);
        let addr = AtomicPtr::new(p);
        he.protect_ptr(0, &addr);
        let reserved = he
            .inner
            .reservations
            .get(registry::tid(), 0)
            .load(Ordering::SeqCst);
        // Second protect with an unchanged clock must leave the same
        // reservation in place (fast path).
        he.protect_ptr(0, &addr);
        assert_eq!(
            he.inner
                .reservations
                .get(registry::tid(), 0)
                .load(Ordering::SeqCst),
            reserved
        );
        he.end_op();
        // SAFETY: allocated above, unshared, retired once.
        unsafe { he.retire(p) };
        he.flush();
        assert_eq!(he.unreclaimed(), 0);
    }

    #[test]
    fn concurrent_stress_no_use_after_free() {
        let he = Arc::new(HazardEras::new());
        let addr = Arc::new(AtomicPtr::new(he.alloc(0u64)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let he = he.clone();
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        if t % 2 == 0 {
                            let n = he.alloc(i);
                            let old = addr.swap(n, Ordering::SeqCst);
                            // SAFETY: the swap made us the unlinker; each
                            // object is retired by exactly one thread.
                            unsafe { he.retire(old) };
                        } else {
                            let p = he.protect_ptr(0, &addr);
                            // SAFETY: our reservation covers `p`'s era, so
                            // a concurrent retire cannot free it yet.
                            assert!(unsafe { *p } < 4_000);
                            he.end_op();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = addr.load(Ordering::SeqCst);
        // SAFETY: all threads joined; `last` is the one live object and is
        // retired exactly once.
        unsafe { he.retire(last) };
        he.flush();
        assert_eq!(he.unreclaimed(), 0);
    }
}
