//! The scheme axis of the (structure × scheme) matrix, as *data*.
//!
//! The paper's whole evaluation methodology (Figs. 3–4, 7–8) is "the same
//! structure under every scheme". [`SchemeKind`] names the six manual
//! schemes so harnesses can iterate [`SchemeKind::ALL`] (or an
//! `ORC_SCHEMES`-style slice of it) instead of hand-enumerating
//! constructors, and [`AnySmr`] erases the concrete scheme type behind one
//! enum so a single monomorphization of each structure covers the whole
//! axis.
//!
//! `dyn Smr` is impossible — [`Smr::alloc`] and [`Smr::retire`] are
//! generic over the payload type, which rules out object safety — so
//! [`AnySmr`] is the enum-dispatch workaround: every [`Smr`] method
//! matches on the variant and delegates statically. The match is
//! branch-predicted perfectly in a sweep (one variant per section), so
//! the cost over direct monomorphization is a predictable jump —
//! irrelevant for the torture/equivalence harnesses this exists for;
//! throughput benches that care can still monomorphize per scheme.

use crate::stats::StatsSnapshot;
use crate::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use orc_util::atomics::{AtomicPtr, AtomicUsize};

/// One of the six manual reclamation schemes, as a value.
///
/// The order of [`SchemeKind::ALL`] is the paper's Table 1 row order
/// (bounded pointer-based schemes first, then the unbounded baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Hazard pointers (Michael 2004).
    Hp,
    /// Pass-the-buck (Herlihy et al. 2002).
    Ptb,
    /// Pass-the-pointer (§3.1, this paper's manual scheme).
    Ptp,
    /// Hazard eras (Ramalhete & Correia 2017).
    He,
    /// Epoch-based reclamation (Fraser 2004).
    Ebr,
    /// The "None" baseline of Figs. 1–4: never frees until teardown.
    Leaky,
}

impl SchemeKind {
    /// Every scheme, in Table-1 order — the canonical sweep axis.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Hp,
        SchemeKind::Ptb,
        SchemeKind::Ptp,
        SchemeKind::He,
        SchemeKind::Ebr,
        SchemeKind::Leaky,
    ];

    /// Display name, as used in the paper's figure legends (and by the
    /// matching scheme's [`Smr::name`]).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Hp => "HP",
            SchemeKind::Ptb => "PTB",
            SchemeKind::Ptp => "PTP",
            SchemeKind::He => "HE",
            SchemeKind::Ebr => "EBR",
            SchemeKind::Leaky => "None",
        }
    }

    /// Parses a scheme name, case-insensitively. Accepts the figure-legend
    /// names ("HP", "None", ...) and the module names ("hp", "leaky", ...).
    #[allow(clippy::should_implement_trait)] // fallible-by-Option, used via `SchemeKind::from_str`
    pub fn from_str(name: &str) -> Option<SchemeKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "hp" => Some(SchemeKind::Hp),
            "ptb" => Some(SchemeKind::Ptb),
            "ptp" => Some(SchemeKind::Ptp),
            "he" => Some(SchemeKind::He),
            "ebr" => Some(SchemeKind::Ebr),
            "leaky" | "none" => Some(SchemeKind::Leaky),
            _ => None,
        }
    }

    /// Builds a fresh instance of the scheme with its default thresholds.
    pub fn build(self) -> AnySmr {
        match self {
            SchemeKind::Hp => AnySmr::Hp(HazardPointers::new()),
            SchemeKind::Ptb => AnySmr::Ptb(PassTheBuck::new()),
            SchemeKind::Ptp => AnySmr::Ptp(PassThePointer::new()),
            SchemeKind::He => AnySmr::He(HazardEras::new()),
            SchemeKind::Ebr => AnySmr::Ebr(Ebr::new()),
            SchemeKind::Leaky => AnySmr::Leaky(Leaky::new()),
        }
    }

    /// Builds with a fixed scan threshold where the scheme has one (HP,
    /// PTB, HE); the remaining schemes have no threshold knob and build
    /// as [`SchemeKind::build`]. Used by the stall batteries so bounded
    /// ceilings are deterministic rather than dependent on the adaptive
    /// `2·H·t + 8` formula.
    pub fn build_with_threshold(self, threshold: usize) -> AnySmr {
        match self {
            SchemeKind::Hp => AnySmr::Hp(HazardPointers::with_threshold(threshold)),
            SchemeKind::Ptb => AnySmr::Ptb(PassTheBuck::with_threshold(threshold)),
            SchemeKind::He => AnySmr::He(HazardEras::with_threshold(threshold)),
            _ => self.build(),
        }
    }

    /// Whether a stalled reader leaves the scheme's unreclaimed count
    /// bounded (the paper's Table 1 column): true for the pointer-based
    /// schemes, false for EBR and the leaky baseline.
    pub fn is_bounded(self) -> bool {
        !matches!(self, SchemeKind::Ebr | SchemeKind::Leaky)
    }

    /// Whether the scheme ever frees memory before teardown (everything
    /// but the leaky baseline).
    pub fn reclaims(self) -> bool {
        self != SchemeKind::Leaky
    }

    /// Parses a comma-separated scheme filter ("ptp,ebr"). Unknown names
    /// fail fast with the valid list; an empty spec means "all".
    pub fn parse_filter(spec: &str) -> Result<Vec<SchemeKind>, String> {
        let mut out = Vec::new();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let kind = SchemeKind::from_str(tok).ok_or_else(|| {
                format!(
                    "unknown scheme {tok:?}; valid schemes: {}",
                    SchemeKind::ALL
                        .map(|k| k.name().to_ascii_lowercase())
                        .join(", ")
                )
            })?;
            if !out.contains(&kind) {
                out.push(kind);
            }
        }
        if out.is_empty() {
            out.extend(SchemeKind::ALL);
        }
        Ok(out)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Any of the six manual schemes behind one concrete type.
///
/// Clones share the underlying scheme instance (each variant's `Clone` is
/// a handle clone), so a harness can keep one handle for
/// `flush`/`unreclaimed`/`stats` while the structure owns another —
/// exactly the pattern the torture batteries use.
#[derive(Clone)]
pub enum AnySmr {
    Hp(HazardPointers),
    Ptb(PassTheBuck),
    Ptp(PassThePointer),
    He(HazardEras),
    Ebr(Ebr),
    Leaky(Leaky),
}

/// Statically dispatches one expression over every [`AnySmr`] variant.
macro_rules! on_scheme {
    ($any:expr, $s:ident => $body:expr) => {
        match $any {
            AnySmr::Hp($s) => $body,
            AnySmr::Ptb($s) => $body,
            AnySmr::Ptp($s) => $body,
            AnySmr::He($s) => $body,
            AnySmr::Ebr($s) => $body,
            AnySmr::Leaky($s) => $body,
        }
    };
}

impl AnySmr {
    /// The [`SchemeKind`] this instance was built from.
    pub fn kind(&self) -> SchemeKind {
        match self {
            AnySmr::Hp(_) => SchemeKind::Hp,
            AnySmr::Ptb(_) => SchemeKind::Ptb,
            AnySmr::Ptp(_) => SchemeKind::Ptp,
            AnySmr::He(_) => SchemeKind::He,
            AnySmr::Ebr(_) => SchemeKind::Ebr,
            AnySmr::Leaky(_) => SchemeKind::Leaky,
        }
    }
}

impl Smr for AnySmr {
    fn name(&self) -> &'static str {
        on_scheme!(self, s => s.name())
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        on_scheme!(self, s => s.alloc(value))
    }

    #[inline]
    fn begin_op(&self) {
        on_scheme!(self, s => s.begin_op())
    }

    fn end_op(&self) {
        on_scheme!(self, s => s.end_op())
    }

    fn protect(&self, idx: usize, addr: &AtomicUsize) -> usize {
        on_scheme!(self, s => s.protect(idx, addr))
    }

    #[inline]
    fn protect_ptr<T>(&self, idx: usize, addr: &AtomicPtr<T>) -> *mut T {
        on_scheme!(self, s => s.protect_ptr(idx, addr))
    }

    fn publish(&self, idx: usize, word: usize) {
        on_scheme!(self, s => s.publish(idx, word))
    }

    fn clear(&self, idx: usize) {
        on_scheme!(self, s => s.clear(idx))
    }

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        // SAFETY: forwards this method's own contract to the inner scheme.
        on_scheme!(self, s => unsafe { s.retire(ptr) })
    }

    unsafe fn dealloc_now<T>(&self, ptr: *mut T) {
        // SAFETY: forwards this method's own contract to the inner scheme.
        on_scheme!(self, s => unsafe { s.dealloc_now(ptr) })
    }

    fn flush(&self) {
        on_scheme!(self, s => s.flush())
    }

    fn unreclaimed(&self) -> usize {
        on_scheme!(self, s => s.unreclaimed())
    }

    fn stats(&self) -> StatsSnapshot {
        on_scheme!(self, s => s.stats())
    }

    fn is_lock_free(&self) -> bool {
        on_scheme!(self, s => s.is_lock_free())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MAX_HPS;

    #[test]
    fn all_covers_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for kind in SchemeKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn from_str_roundtrips_names() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::from_str(kind.name()), Some(kind));
            assert_eq!(
                SchemeKind::from_str(&kind.name().to_ascii_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(SchemeKind::from_str("leaky"), Some(SchemeKind::Leaky));
        assert_eq!(SchemeKind::from_str(" ptp "), Some(SchemeKind::Ptp));
        assert_eq!(SchemeKind::from_str("hazard"), None);
    }

    #[test]
    fn parse_filter_slices_and_fails_fast() {
        assert_eq!(
            SchemeKind::parse_filter("ptp,ebr").unwrap(),
            vec![SchemeKind::Ptp, SchemeKind::Ebr]
        );
        assert_eq!(
            SchemeKind::parse_filter("ptp, ptp ,PTP").unwrap(),
            vec![SchemeKind::Ptp],
            "duplicates collapse"
        );
        assert_eq!(
            SchemeKind::parse_filter("").unwrap(),
            SchemeKind::ALL.to_vec()
        );
        let err = SchemeKind::parse_filter("ptp,bogus").unwrap_err();
        assert!(err.contains("bogus") && err.contains("ebr"), "{err}");
    }

    #[test]
    fn build_matches_kind_and_name() {
        for kind in SchemeKind::ALL {
            let smr = kind.build();
            assert_eq!(smr.kind(), kind);
            assert_eq!(smr.name(), kind.name());
            let smr = kind.build_with_threshold(32);
            assert_eq!(smr.kind(), kind);
        }
    }

    #[test]
    fn any_smr_runs_the_full_protocol() {
        for kind in SchemeKind::ALL {
            let smr = kind.build();
            let slot = AtomicUsize::new(smr.alloc(7u64) as usize);
            smr.begin_op();
            let w = smr.protect(0, &slot);
            // SAFETY: slot 0 protects `w` (and this test is
            // single-threaded anyway).
            assert_eq!(unsafe { *(w as *const u64) }, 7);
            let fresh = smr.alloc(9u64) as usize;
            let old = slot.swap(fresh, orc_util::atomics::Ordering::SeqCst);
            // SAFETY: `old` came from this scheme's `alloc`, retired once.
            unsafe { smr.retire(old as *mut u64) };
            smr.end_op();
            smr.flush();
            if kind.reclaims() {
                assert_eq!(smr.unreclaimed(), 0, "{}", kind.name());
                assert!(smr.stats().retires >= 1);
            } else {
                assert_eq!(smr.unreclaimed(), 1, "the leaky baseline holds it");
            }
            let last = slot.load(orc_util::atomics::Ordering::SeqCst);
            // SAFETY: single-threaded — quiescent, exclusive ownership.
            unsafe { smr.dealloc_now(last as *mut u64) };
        }
    }

    #[test]
    fn bounded_and_reclaiming_flags() {
        assert!(SchemeKind::Hp.is_bounded());
        assert!(SchemeKind::Ptb.is_bounded());
        assert!(SchemeKind::Ptp.is_bounded());
        assert!(SchemeKind::He.is_bounded());
        assert!(!SchemeKind::Ebr.is_bounded());
        assert!(!SchemeKind::Leaky.is_bounded());
        assert!(SchemeKind::ALL.iter().filter(|k| !k.reclaims()).count() == 1);
    }

    #[test]
    fn max_hps_is_respected_by_any_smr() {
        // AnySmr adds no slot indirection: every slot the concrete schemes
        // expose is reachable through the enum.
        let smr = SchemeKind::Hp.build();
        let slot = AtomicUsize::new(smr.alloc(1u64) as usize);
        smr.begin_op();
        for idx in 0..MAX_HPS {
            let _ = smr.protect(idx, &slot);
        }
        smr.end_op();
        // SAFETY: single-threaded — quiescent, exclusive ownership.
        unsafe { smr.dealloc_now(slot.load(orc_util::atomics::Ordering::SeqCst) as *mut u64) };
    }
}
