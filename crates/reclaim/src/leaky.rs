//! The "None" baseline: no reclamation at all.
//!
//! The paper's queue figures (Figs. 1–2) normalize every scheme against a
//! leaky run, and the list figures include a `None` series. Retired nodes
//! are simply abandoned *for the lifetime of the scheme*; `protect`
//! degenerates to a plain load. This is the upper bound on throughput and
//! the lower bound on memory hygiene.
//!
//! Retired nodes are parked on an intrusive stack and freed only when the
//! last handle to the scheme drops — never during the run, preserving the
//! baseline's semantics, but leaving the process (and the torture
//! harness's leak ledger) clean at teardown.

use crate::hazard::OrphanStack;
use crate::header::{destroy_tracked, mark_retired, SmrHeader};
use crate::Smr;
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::stats::{self, Event, SchemeStats, StatsSnapshot};
use orc_util::{registry, stall, track};
use std::sync::Arc;

struct Inner {
    /// Everything ever retired; freed wholesale in `Drop`.
    retired: OrphanStack,
    count: AtomicUsize,
    stats: SchemeStats,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Exclusive access at teardown: the leak ends with the scheme.
        for h in self.retired.drain() {
            // SAFETY: `&mut self` in `drop` proves no user remains; every
            // parked retiree is exclusively ours and freed exactly once.
            unsafe { destroy_tracked(h) };
            track::global().on_reclaim();
        }
    }
}

/// No-op reclamation scheme (leaks every retired node until teardown).
pub struct Leaky {
    inner: Arc<Inner>,
}

impl Leaky {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                retired: OrphanStack::new(),
                count: AtomicUsize::new(0),
                stats: SchemeStats::new(),
            }),
        }
    }
}

impl Default for Leaky {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Leaky {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Smr for Leaky {
    fn name(&self) -> &'static str {
        "None"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        crate::header::alloc_tracked(value, 0)
    }

    #[inline]
    fn end_op(&self) {}

    #[inline]
    fn protect(&self, _idx: usize, addr: &AtomicUsize) -> usize {
        let word = addr.load(Ordering::SeqCst);
        stall::hit(stall::StallPoint::Protect);
        word
    }

    #[inline]
    fn publish(&self, _idx: usize, _word: usize) {}

    #[inline]
    fn clear(&self, _idx: usize) {}

    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let now = self.inner.count.fetch_add(1, Ordering::Relaxed) + 1;
        if stats::enabled() {
            let tid = registry::tid();
            self.inner.stats.bump(tid, Event::Retire);
            self.inner.stats.note_unreclaimed(now as u64);
        }
        track::global().on_retire();
        // SAFETY: `ptr` came from `Smr::alloc` (retire's contract), so it
        // is the value field of a live `SmrLinked` allocation.
        let h = unsafe { SmrHeader::of_value(ptr) };
        orc_util::chk_hooks::on_retire(h as usize);
        if stats::enabled() || orc_util::trace::enabled() {
            // SAFETY: `h` is the live header just recovered from `ptr`.
            unsafe { mark_retired(registry::tid(), h) };
        }
        // SAFETY: pushing transfers the retired object's ownership to the
        // parked stack; it is never freed before `Inner::drop`.
        unsafe { self.inner.retired.push(h) };
    }

    unsafe fn dealloc_now<T>(&self, ptr: *mut T) {
        // SAFETY: `ptr` came from `Smr::alloc` and the caller guarantees
        // exclusive ownership (dealloc_now's contract).
        unsafe { crate::header::destroy_tracked(SmrHeader::of_value(ptr)) };
    }

    fn flush(&self) {
        // Nothing to reclaim — the pass is still counted so consumers can
        // see the baseline was flushed like every other scheme.
        if stats::enabled() {
            self.inner.stats.bump(registry::tid(), Event::Flush);
        }
    }

    fn unreclaimed(&self) -> usize {
        self.inner.count.load(Ordering::Relaxed)
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn is_lock_free(&self) -> bool {
        // Trivially non-blocking, but provides no reclamation guarantee:
        // the unreclaimed bound is infinite for the scheme's lifetime.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protect_is_plain_load() {
        let l = Leaky::new();
        let a = AtomicUsize::new(77);
        assert_eq!(l.protect(0, &a), 77);
    }

    #[test]
    fn retire_counts_but_never_frees_while_alive() {
        let l = Leaky::new();
        let p = l.alloc(123u64);
        // SAFETY: `p` came from this scheme's `alloc`, retired once.
        unsafe { l.retire(p) };
        assert_eq!(l.unreclaimed(), 1);
        l.flush();
        assert_eq!(l.unreclaimed(), 1);
        // The object is still readable — that is the point of the baseline.
        // SAFETY: Leaky never frees while alive, so `p` is still live.
        assert_eq!(unsafe { *p }, 123);
    }

    #[test]
    fn teardown_frees_the_leak() {
        struct Probe(std::sync::Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = std::sync::Arc::new(AtomicUsize::new(0));
        {
            let l = Leaky::new();
            let l2 = l.clone();
            for _ in 0..10 {
                let p = l.alloc(Probe(drops.clone()));
                // SAFETY: allocated above, unshared, retired once.
                unsafe { l2.retire(p) };
            }
            assert_eq!(drops.load(Ordering::SeqCst), 0, "no frees while alive");
            assert_eq!(l.unreclaimed(), 10);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            10,
            "teardown must free every parked retiree"
        );
    }

    #[test]
    fn dealloc_now_frees_immediately() {
        struct Probe(std::sync::Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let l = Leaky::new();
        let drops = std::sync::Arc::new(AtomicUsize::new(0));
        let p = l.alloc(Probe(drops.clone()));
        // SAFETY: allocated above and never shared — exclusive ownership.
        unsafe { l.dealloc_now(p) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
