//! The "None" baseline: no reclamation at all.
//!
//! The paper's queue figures (Figs. 1–2) normalize every scheme against a
//! leaky run, and the list figures include a `None` series. Retired nodes
//! are simply abandoned; `protect` degenerates to a plain load. This is the
//! upper bound on throughput and the lower bound on memory hygiene.

use crate::header::SmrHeader;
use crate::Smr;
use orc_util::track;
use std::sync::atomic::{AtomicUsize, Ordering};

/// No-op reclamation scheme (leaks every retired node).
#[derive(Default)]
pub struct Leaky {
    retired: AtomicUsize,
}

impl Leaky {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Smr for Leaky {
    fn name(&self) -> &'static str {
        "None"
    }

    fn alloc<T: Send>(&self, value: T) -> *mut T {
        crate::header::alloc_tracked(value, 0)
    }

    #[inline]
    fn end_op(&self) {}

    #[inline]
    fn protect(&self, _idx: usize, addr: &AtomicUsize) -> usize {
        addr.load(Ordering::SeqCst)
    }

    #[inline]
    fn publish(&self, _idx: usize, _word: usize) {}

    #[inline]
    fn clear(&self, _idx: usize) {}

    unsafe fn retire<T: Send>(&self, _ptr: *mut T) {
        self.retired.fetch_add(1, Ordering::Relaxed);
        track::global().on_retire();
    }

    unsafe fn dealloc_now<T>(&self, ptr: *mut T) {
        unsafe { crate::header::destroy_tracked(SmrHeader::of_value(ptr)) };
    }

    fn flush(&self) {}

    fn unreclaimed(&self) -> usize {
        self.retired.load(Ordering::Relaxed)
    }

    fn is_lock_free(&self) -> bool {
        // Trivially non-blocking, but provides no reclamation guarantee:
        // the unreclaimed bound is infinite.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protect_is_plain_load() {
        let l = Leaky::new();
        let a = AtomicUsize::new(77);
        assert_eq!(l.protect(0, &a), 77);
    }

    #[test]
    fn retire_counts_but_never_frees() {
        let l = Leaky::new();
        let p = l.alloc(123u64);
        unsafe { l.retire(p) };
        assert_eq!(l.unreclaimed(), 1);
        l.flush();
        assert_eq!(l.unreclaimed(), 1);
        // The object is still readable — that is the point of the baseline.
        assert_eq!(unsafe { *p }, 123);
    }

    #[test]
    fn dealloc_now_frees_immediately() {
        struct Probe(std::sync::Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let l = Leaky::new();
        let drops = std::sync::Arc::new(AtomicUsize::new(0));
        let p = l.alloc(Probe(drops.clone()));
        unsafe { l.dealloc_now(p) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
