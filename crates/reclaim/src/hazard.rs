//! Shared hazard-slot machinery.
//!
//! HP, PTB, PTP and HE all keep a `[maxThreads][maxHPs]` array of published
//! words (value pointers for the pointer-based schemes, era reservations for
//! HE), per-thread retired lists, and an orphan stack that adopts the
//! retired lists of exiting threads. This module factors those pieces out.

use crate::header::SmrHeader;
use crate::MAX_HPS;
use orc_util::atomics::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use orc_util::registry;
use orc_util::stats::{Event, SchemeStats};
use orc_util::CachePadded;
use std::cell::UnsafeCell;

#[cfg(not(target_pointer_width = "64"))]
compile_error!("the reclamation schemes assume a 64-bit platform (u64 eras stored in usize slots)");

/// A `[MAX_THREADS][MAX_HPS]` array of atomically published words, one
/// cache-line-padded row per thread. Row `tid` is written only by thread
/// `tid` but read by every scanner.
pub struct SlotArray {
    rows: Box<[CachePadded<[AtomicUsize; MAX_HPS]>]>,
}

impl SlotArray {
    pub fn new() -> Self {
        let rows = (0..registry::max_threads())
            .map(|_| CachePadded::new(std::array::from_fn(|_| AtomicUsize::new(0))))
            .collect();
        Self { rows }
    }

    #[inline]
    pub fn get(&self, tid: usize, idx: usize) -> &AtomicUsize {
        &self.rows[tid][idx]
    }

    /// Publishes `word` in `(tid, idx)` with an `xchg` — the paper's chosen
    /// publication instruction (§5 discusses `exchange` vs `mfence`); on
    /// x86 a SeqCst store compiles to the same `xchg`, so both give the
    /// required store-load fence before the validation load.
    #[inline]
    pub fn publish(&self, tid: usize, idx: usize, word: usize) {
        self.rows[tid][idx].swap(word, Ordering::SeqCst);
    }

    #[inline]
    pub fn clear(&self, tid: usize, idx: usize) {
        self.rows[tid][idx].store(0, Ordering::Release);
    }

    /// Publishes a *copy* of an existing protection. A release store
    /// suffices (no validation follows): the copy is ordered before the
    /// source slot's later overwrite, so an ascending scan that misses the
    /// source necessarily sees the copy.
    #[inline]
    pub fn publish_copy(&self, tid: usize, idx: usize, word: usize) {
        self.rows[tid][idx].store(word, Ordering::Release);
    }

    /// The paper's `get_protected` loop (Algorithm 2, lines 4–11): publish
    /// the unmarked pointer, re-read `addr`, repeat until stable. Returns
    /// the full word including tag bits.
    ///
    /// Carries the stalled-reader injection point of HP, PTB and PTP: the
    /// stall fires *after* the protection is published and validated, i.e.
    /// while the victim demonstrably pins the object.
    ///
    /// Each failed validation (the link moved under the reader) is
    /// recorded as an [`Event::ProtectRetry`] on `stats`.
    #[inline]
    pub fn protect_loop(
        &self,
        tid: usize,
        idx: usize,
        addr: &AtomicUsize,
        stats: &SchemeStats,
    ) -> usize {
        let mut word = addr.load(Ordering::SeqCst);
        loop {
            self.publish(tid, idx, orc_util::marked::unmark(word));
            let cur = addr.load(Ordering::SeqCst);
            if cur == word {
                orc_util::stall::hit(orc_util::stall::StallPoint::Protect);
                return word;
            }
            stats.bump(tid, Event::ProtectRetry);
            orc_util::trace_event_at!(
                tid,
                orc_util::trace::EventKind::ProtectRetry,
                orc_util::marked::unmark(word)
            );
            word = cur;
        }
    }

    /// Collects every nonzero published word into `out` (cleared first).
    pub fn collect(&self, out: &mut Vec<usize>) {
        out.clear();
        let wm = registry::registered_watermark();
        for row in self.rows.iter().take(wm) {
            for slot in row.iter() {
                let w = slot.load(Ordering::SeqCst);
                if w != 0 {
                    out.push(w);
                }
            }
        }
    }

    /// True if `word` is currently published anywhere.
    pub fn is_published(&self, word: usize) -> bool {
        let wm = registry::registered_watermark();
        self.rows
            .iter()
            .take(wm)
            .any(|row| row.iter().any(|s| s.load(Ordering::SeqCst) == word))
    }

    /// Clears every slot of `tid`'s row.
    pub fn clear_row(&self, tid: usize) {
        for idx in 0..MAX_HPS {
            self.clear(tid, idx);
        }
    }
}

impl Default for SlotArray {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread mutable state, owner-access only (indexed by the registry
/// tid). `Sync` because each cell is only ever touched by its owning
/// thread; the exit hook runs on the owner thread before the tid is
/// released, and `&mut self` access at teardown is exclusive by borrowck.
pub struct PerThread<T> {
    cells: Box<[CachePadded<UnsafeCell<T>>]>,
}

// SAFETY: each cell is only ever touched by its owning thread (the
// `get_mut` contract); `T: Send` lets ownership follow tid reuse across OS
// threads.
unsafe impl<T: Send> Sync for PerThread<T> {}
// SAFETY: as for `Sync` — the cells hold `Send` data and no thread-affine
// state.
unsafe impl<T: Send> Send for PerThread<T> {}

impl<T: Default> PerThread<T> {
    pub fn new() -> Self {
        let cells = (0..registry::max_threads())
            .map(|_| CachePadded::new(UnsafeCell::new(T::default())))
            .collect();
        Self { cells }
    }
}

impl<T: Default> Default for PerThread<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PerThread<T> {
    /// # Safety
    /// Caller must be the thread owning `tid` (or hold exclusive access to
    /// the whole scheme, as in `Drop`).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self, tid: usize) -> &mut T {
        // SAFETY: the caller owns `tid` (this function's contract), so no
        // other reference to this cell can exist.
        unsafe { &mut *self.cells[tid].get() }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Lock-free Treiber stack of retired objects, chained through
/// `SmrHeader::next`. Exiting threads push their leftover retired objects
/// here; scanning threads adopt them.
pub struct OrphanStack {
    head: AtomicPtr<SmrHeader>,
    len: AtomicUsize,
}

impl OrphanStack {
    pub const fn new() -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    /// # Safety
    /// `h` must be a live, exclusively owned retired header.
    pub unsafe fn push(&self, h: *mut SmrHeader) {
        let mut cur = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `h` is live and exclusively ours until the CAS below
            // publishes it (this function's contract).
            unsafe { (*h).next.store(cur, Ordering::Relaxed) };
            match self
                .head
                .compare_exchange_weak(cur, h, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(c) => cur = c,
            }
        }
    }

    /// Takes the whole stack; returns the headers as a vector.
    pub fn drain(&self) -> Vec<*mut SmrHeader> {
        let mut h = self.head.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !h.is_null() {
            // SAFETY: the swap above made this chain exclusively ours; every
            // header on it is a live retired object.
            let next = unsafe { (*h).next.load(Ordering::Relaxed) };
            out.push(h);
            h = next;
        }
        self.len.fetch_sub(out.len(), Ordering::Relaxed);
        out
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for OrphanStack {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks which threads have installed their exit hook for a given scheme
/// instance, so the hook is registered exactly once per (thread, instance).
pub struct ExitHooks {
    installed: Box<[AtomicBool]>,
}

impl ExitHooks {
    pub fn new() -> Self {
        Self {
            installed: (0..registry::max_threads())
                .map(|_| AtomicBool::new(false))
                .collect(),
        }
    }

    /// Returns `true` the first time thread `tid` attaches; the caller then
    /// registers its `defer_at_exit` callback (which must call
    /// [`ExitHooks::reset`] so a later thread reusing the tid re-installs).
    #[inline]
    pub fn attach(&self, tid: usize) -> bool {
        if self.installed[tid].load(Ordering::Relaxed) {
            false
        } else {
            self.installed[tid].store(true, Ordering::Relaxed);
            true
        }
    }

    #[inline]
    pub fn reset(&self, tid: usize) {
        self.installed[tid].store(false, Ordering::Relaxed);
    }
}

impl Default for ExitHooks {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_array_publish_and_collect() {
        let tid = registry::tid();
        let s = SlotArray::new();
        s.publish(tid, 0, 0x1000);
        s.publish(tid, 3, 0x2000);
        let mut v = Vec::new();
        s.collect(&mut v);
        assert!(v.contains(&0x1000));
        assert!(v.contains(&0x2000));
        assert!(s.is_published(0x1000));
        s.clear(tid, 0);
        assert!(!s.is_published(0x1000));
        s.clear_row(tid);
        assert!(!s.is_published(0x2000));
    }

    #[test]
    fn protect_loop_returns_stable_word() {
        let tid = registry::tid();
        let s = SlotArray::new();
        let stats = SchemeStats::new();
        let addr = AtomicUsize::new(0xAB00);
        let w = s.protect_loop(tid, 1, &addr, &stats);
        assert_eq!(w, 0xAB00);
        assert_eq!(s.get(tid, 1).load(Ordering::SeqCst), 0xAB00);
        assert_eq!(
            stats.snapshot().protect_retries,
            0,
            "a stable word validates first try"
        );
    }

    #[test]
    fn protect_loop_strips_marks_from_publication() {
        let tid = registry::tid();
        let s = SlotArray::new();
        let stats = SchemeStats::new();
        let addr = AtomicUsize::new(orc_util::marked::mark(0xAB00));
        let w = s.protect_loop(tid, 2, &addr, &stats);
        assert!(orc_util::marked::is_marked(w));
        assert_eq!(s.get(tid, 2).load(Ordering::SeqCst), 0xAB00);
    }

    #[test]
    fn orphan_stack_roundtrip() {
        let st = OrphanStack::new();
        let a = SmrHeader::alloc(1u32, 0);
        let b = SmrHeader::alloc(2u32, 0);
        // SAFETY: both came from `alloc` above, unshared; pushing hands
        // their ownership to the stack.
        unsafe {
            st.push(SmrHeader::of_value(a));
            st.push(SmrHeader::of_value(b));
        }
        assert_eq!(st.len(), 2);
        let drained = st.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(st.len(), 0);
        for h in drained {
            // SAFETY: draining took the ownership back; destroyed once.
            unsafe { SmrHeader::destroy(h) };
        }
    }

    #[test]
    fn exit_hooks_attach_once() {
        let h = ExitHooks::new();
        assert!(h.attach(5));
        assert!(!h.attach(5));
        h.reset(5);
        assert!(h.attach(5));
    }

    #[test]
    fn per_thread_is_isolated() {
        let p: PerThread<Vec<u32>> = PerThread::new();
        // SAFETY: single-threaded test — this thread owns every slot.
        unsafe {
            p.get_mut(0).push(1);
            p.get_mut(1).push(2);
            assert_eq!(p.get_mut(0).as_slice(), &[1]);
            assert_eq!(p.get_mut(1).as_slice(), &[2]);
        }
    }
}
