//! Telemetry (orc-stats) integration tests for the manual schemes.
//!
//! Exercises every scheme through a small churn and checks the snapshot is
//! populated and satisfies the quiescence invariants documented on
//! [`Smr::stats`]: `reclaims <= retires` and
//! `retires - reclaims == unreclaimed()`.

use orc_util::atomics::{AtomicPtr, Ordering};
use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};

/// Swap-and-retire churn through one shared location, with a protected
/// read per round, then flush to quiescence.
fn churn<S: Smr>(s: &S, rounds: u64) {
    let addr = AtomicPtr::new(s.alloc(0u64));
    for i in 0..rounds {
        s.begin_op();
        let p = s.protect_ptr(0, &addr);
        // SAFETY: slot 0 protects `p` (single-threaded churn: nothing is
        // freed out from under us anyway).
        assert!(unsafe { *p } <= i);
        s.end_op();
        let n = s.alloc(i + 1);
        let old = addr.swap(n, Ordering::SeqCst);
        // SAFETY: the swap unlinked `old`; retired exactly once.
        unsafe { s.retire(old) };
    }
    let last = addr.swap(std::ptr::null_mut(), Ordering::SeqCst);
    // SAFETY: as above — the final occupant, retired exactly once.
    unsafe { s.retire(last) };
    s.flush();
}

fn check_quiescent_invariants<S: Smr>(s: &S, rounds: u64) {
    let snap = s.stats();
    let retired = rounds + 1; // churn retires rounds swapped-out nodes + the last
    assert_eq!(snap.retires, retired, "{}: every retire counted", s.name());
    assert!(
        snap.reclaims <= snap.retires,
        "{}: reclaims {} > retires {}",
        s.name(),
        snap.reclaims,
        snap.retires
    );
    assert_eq!(
        snap.retires - snap.reclaims,
        s.unreclaimed() as u64,
        "{}: outstanding mismatch",
        s.name()
    );
    assert_eq!(snap.outstanding(), s.unreclaimed() as u64);
    assert!(
        snap.peak_unreclaimed >= snap.outstanding(),
        "{}: peak below current outstanding",
        s.name()
    );
    assert!(snap.peak_unreclaimed >= 1, "{}: peak never noted", s.name());
    // Everything the histogram accounts for was really reclaimed.
    if snap.reclaims > 0 {
        assert!(snap.batches() > 0, "{}: reclaims but no batches", s.name());
    }
}

#[test]
fn hp_stats_are_populated_and_consistent() {
    let s = HazardPointers::with_threshold(8);
    churn(&s, 64);
    check_quiescent_invariants(&s, 64);
    let snap = s.stats();
    assert_eq!(snap.reclaims, snap.retires, "HP flush drains everything");
    assert!(snap.scans >= 1);
    assert!(snap.flushes >= 1);
}

#[test]
fn ptb_stats_are_populated_and_consistent() {
    let s = PassTheBuck::with_threshold(8);
    churn(&s, 64);
    check_quiescent_invariants(&s, 64);
    let snap = s.stats();
    assert_eq!(snap.reclaims, snap.retires, "PTB flush drains everything");
    assert!(snap.scans >= 1);
}

#[test]
fn ptp_stats_are_populated_and_consistent() {
    let s = PassThePointer::new();
    churn(&s, 64);
    check_quiescent_invariants(&s, 64);
    let snap = s.stats();
    // PTP frees on the spot (single-threaded churn clears its own slots).
    assert_eq!(snap.reclaims, snap.retires);
    assert!(snap.scans >= 64, "every retire walks the matrix");
}

#[test]
fn he_stats_are_populated_and_consistent() {
    let s = HazardEras::with_threshold(8);
    churn(&s, 64);
    check_quiescent_invariants(&s, 64);
    let snap = s.stats();
    assert_eq!(snap.reclaims, snap.retires, "HE flush drains everything");
    assert!(snap.scans >= 1);
}

#[test]
fn ebr_stats_are_populated_and_consistent() {
    let s = Ebr::new();
    churn(&s, 64);
    check_quiescent_invariants(&s, 64);
    let snap = s.stats();
    assert_eq!(snap.reclaims, snap.retires, "EBR flush drains everything");
    assert!(snap.scans >= 3, "flush runs three advance+collect passes");
    assert!(snap.flushes >= 1);
}

#[test]
fn leaky_stats_count_retires_but_never_reclaims() {
    let s = Leaky::new();
    churn(&s, 16);
    check_quiescent_invariants(&s, 16);
    let snap = s.stats();
    assert_eq!(snap.reclaims, 0, "the None baseline never frees");
    assert_eq!(snap.outstanding(), 17);
    assert_eq!(snap.peak_unreclaimed, 17);
    assert!(snap.flushes >= 1, "flush pass still counted");
}

#[test]
fn ptp_handover_is_counted() {
    let s = PassThePointer::new();
    let p = s.alloc(5u32);
    let addr = AtomicPtr::new(p);
    s.protect_ptr(0, &addr);
    // Retiring while our own slot protects it parks the pointer in the
    // handover matrix — exactly one handover event.
    // SAFETY: `p` came from this scheme's `alloc`, retired once.
    unsafe { s.retire(p) };
    assert_eq!(s.stats().handovers, 1);
    assert_eq!(s.stats().outstanding(), 1);
    s.end_op(); // drains the handover, freeing the object
    assert_eq!(s.stats().outstanding(), 0);
    assert_eq!(s.unreclaimed(), 0);
}

#[test]
fn ptb_handover_is_counted() {
    let s = PassTheBuck::with_threshold(1);
    let p = s.alloc(5u32);
    let addr = AtomicPtr::new(p);
    s.protect_ptr(0, &addr);
    // SAFETY: `p` came from this scheme's `alloc`, retired once.
    unsafe { s.retire(p) }; // liberate hands p to our own guard
    assert!(s.stats().handovers >= 1);
    s.end_op();
    assert_eq!(s.stats().outstanding(), 0);
}

/// Retire→reclaim latency invariants shared by every freeing scheme:
/// the histogram never accounts for more frees than happened, and the
/// quantiles are ordered p50 ≤ p99 ≤ max.
fn check_delay_invariants<S: Smr>(s: &S) {
    let snap = s.stats();
    assert!(
        snap.delays() <= snap.reclaims,
        "{}: delay samples {} > reclaims {}",
        s.name(),
        snap.delays(),
        snap.reclaims
    );
    assert!(
        snap.delays() > 0,
        "{}: churn freed objects but recorded no delay samples",
        s.name()
    );
    let (p50, p99, max) = (snap.delay_p50(), snap.delay_p99(), snap.max_delay_ns);
    assert!(p50 <= p99, "{}: p50 {p50} > p99 {p99}", s.name());
    assert!(p99 <= max, "{}: p99 {p99} > max {max}", s.name());
    assert!(max > 0, "{}: max delay never noted", s.name());
}

#[test]
fn reclaim_delay_histograms_populate_under_churn() {
    let hp = HazardPointers::with_threshold(8);
    churn(&hp, 64);
    check_delay_invariants(&hp);

    let ebr = Ebr::new();
    churn(&ebr, 64);
    check_delay_invariants(&ebr);

    let he = HazardEras::with_threshold(8);
    churn(&he, 64);
    check_delay_invariants(&he);

    let ptb = PassTheBuck::with_threshold(8);
    churn(&ptb, 64);
    check_delay_invariants(&ptb);

    let ptp = PassThePointer::new();
    churn(&ptp, 64);
    check_delay_invariants(&ptp);

    // The None baseline frees nothing while alive, so it must record no
    // delay samples and render the '-' placeholder.
    let leaky = Leaky::new();
    churn(&leaky, 16);
    assert_eq!(leaky.stats().delays(), 0);
    assert_eq!(leaky.stats().max_delay_ns, 0);
}

#[test]
fn snapshot_deltas_are_monotone_across_churn() {
    let s = HazardPointers::with_threshold(8);
    let base = s.stats();
    churn(&s, 32);
    let mid = s.stats();
    assert!(mid.is_monotone_since(&base));
    churn(&s, 32);
    let end = s.stats();
    assert!(end.is_monotone_since(&mid));
    let delta = end.since(&mid);
    assert_eq!(delta.retires, 33);
    assert_eq!(delta.reclaims, 33);
}
