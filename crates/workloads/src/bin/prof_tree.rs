//! Quick single-thread profiling helper for the set structures'
//! `contains` paths (not part of the figure suite; useful when tuning).
use std::time::Instant;
use structures::list::MichaelListOrc;
use structures::skiplist::CrfSkipListOrc;
use structures::tree::NmTreeOrc;
use workloads::throughput::prefill_set;

fn main() {
    let t = NmTreeOrc::new();
    prefill_set(&t, 50_000);
    let start = Instant::now();
    let n = 200_000u64;
    let mut hits = 0u64;
    for i in 0..n {
        if t.contains(&(i % 50_000)) {
            hits += 1;
        }
    }
    println!(
        "tree contains: {:.3} Mops/s (hits {hits})",
        n as f64 / start.elapsed().as_secs_f64() / 1e6
    );

    let s = CrfSkipListOrc::new();
    prefill_set(&s, 50_000);
    let start = Instant::now();
    for i in 0..n {
        if s.contains(&(i % 50_000)) {
            hits += 1;
        }
    }
    println!(
        "skip contains: {:.3} Mops/s",
        n as f64 / start.elapsed().as_secs_f64() / 1e6
    );

    let l = MichaelListOrc::new();
    for k in (0..1000u64).step_by(2) {
        l.add(k);
    }
    let start = Instant::now();
    let n2 = 50_000u64;
    for i in 0..n2 {
        if l.contains(&(i % 1000)) {
            hits += 1;
        }
    }
    println!(
        "list contains: {:.3} Mops/s (hits {hits})",
        n2 as f64 / start.elapsed().as_secs_f64() / 1e6
    );
}
