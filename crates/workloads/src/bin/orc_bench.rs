//! orc-bench: run the paper-figure benchmark matrix, or gate a new
//! report against a committed baseline.
//!
//! ```text
//! orc-bench [--profile short|full] [--out PATH]
//! orc-bench --compare BASELINE NEW [--tolerance PCT] [--cross-tolerance PCT]
//! ```
//!
//! Run mode sweeps the registry matrix (sliceable with `ORC_SCHEMES` /
//! `ORC_STRUCTS`, sized with the `ORC_BENCH_*` knobs) and writes one
//! schema-versioned JSON report (default `BENCH_run.json`). Compare
//! mode joins two reports per cell and exits non-zero on throughput
//! regressions beyond tolerance; a *missing baseline file* skips the
//! gate with exit 0 (first run has nothing to compare against).
//!
//! Exit codes: 0 ok/skip, 1 regressions found, 2 usage or input error.

use std::path::Path;
use std::process::ExitCode;
use structures::registry::MatrixFilter;
use workloads::compare::{compare_files, CompareConfig, GateOutcome};
use workloads::runner::{Profile, Report, RunnerConfig};
use workloads::{print_header, print_row};

const USAGE: &str = "usage:
  orc-bench [--profile short|full] [--out PATH]
  orc-bench --compare BASELINE NEW [--tolerance PCT] [--cross-tolerance PCT]

run mode respects ORC_SCHEMES / ORC_STRUCTS (matrix slicing) and the
ORC_BENCH_* sizing knobs; see EXPERIMENTS.md \"Reproducing the paper
figures\".";

fn fail(msg: &str) -> ExitCode {
    eprintln!("orc-bench: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--compare") {
        compare_main(&args)
    } else {
        run_main(&args)
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn run_main(args: &[String]) -> ExitCode {
    let profile = match flag_value(args, "--profile") {
        Err(e) => return fail(&e),
        Ok(None) => Profile::Short,
        Ok(Some(p)) => match Profile::parse(p) {
            Some(p) => p,
            None => return fail(&format!("unknown profile {p:?} (short|full)")),
        },
    };
    let out = match flag_value(args, "--out") {
        Err(e) => return fail(&e),
        Ok(v) => v.unwrap_or("BENCH_run.json").to_string(),
    };
    // Unknown positional/flag tokens are user error, not silence.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" | "--out" => i += 2,
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let filter = match MatrixFilter::from_env() {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let cfg = RunnerConfig::new(profile);
    eprintln!(
        "orc-bench: profile {} — {} thread counts, {} runs/cell (+{} warmup), {:.2}s/set-point",
        profile.name(),
        cfg.threads.len(),
        cfg.runs,
        cfg.warmup,
        cfg.seconds_per_point.as_secs_f64()
    );
    let report = Report::generate(&cfg, &filter, &mut |done, total, id| {
        eprintln!("orc-bench: [{:>3}/{total}] {id}", done + 1);
    });
    print_header(&format!(
        "orc-bench {} profile — median of {} runs (IQR-trimmed)",
        profile.name(),
        cfg.runs
    ));
    for cell in &report.cells {
        print_row(&cell.measurement);
    }
    match std::fs::write(&out, report.json()) {
        Ok(()) => {
            println!(
                "\norc-bench: wrote {} ({} cells, machine {}, sha {})",
                out,
                report.cells.len(),
                report.machine.cpu_model,
                &report.git_sha[..report.git_sha.len().min(12)]
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("cannot write {out}: {e}")),
    }
}

fn compare_main(args: &[String]) -> ExitCode {
    let pos = args.iter().position(|a| a == "--compare").unwrap();
    let (Some(baseline), Some(current)) = (args.get(pos + 1), args.get(pos + 2)) else {
        return fail("--compare needs BASELINE and NEW report paths");
    };
    let mut cfg = CompareConfig::default();
    match flag_value(args, "--tolerance") {
        Err(e) => return fail(&e),
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(t) if t >= 0.0 && t.is_finite() => cfg.tolerance_pct = t,
            _ => return fail(&format!("invalid --tolerance {v:?}")),
        },
        Ok(None) => {}
    }
    match flag_value(args, "--cross-tolerance") {
        Err(e) => return fail(&e),
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(t) if t >= 0.0 && t.is_finite() => cfg.cross_tolerance_pct = t,
            _ => return fail(&format!("invalid --cross-tolerance {v:?}")),
        },
        Ok(None) => {}
    }
    match compare_files(Path::new(baseline), Path::new(current), &cfg) {
        Err(e) => fail(&e),
        Ok(GateOutcome::SkippedNoBaseline { baseline }) => {
            println!("perf gate: no baseline at {baseline} — skipping (first run?)");
            ExitCode::SUCCESS
        }
        Ok(GateOutcome::Compared(report)) => {
            print!("{}", report.render());
            if report.regressions().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
