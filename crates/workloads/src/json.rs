//! A minimal JSON value and recursive-descent parser.
//!
//! The workspace builds with zero external dependencies, so the bench
//! comparator cannot reach for serde. This is the read side of the
//! hand-rolled JSON the harness already writes ([`crate::record`],
//! `orc_util::stats`): objects, arrays, strings with the escapes the
//! writers emit, numbers parsed as `f64`, booleans and `null`.
//!
//! It is a strict parser for *our own* output plus the obvious
//! surrounding grammar — not a general validator. Errors carry a byte
//! offset so a truncated `BENCH_*.json` points at the damage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse as `f64` (the harness never writes integers a
    /// f64 cannot hold exactly below 2⁵³; ops counts stay well under).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered map — key order is irrelevant to the comparator, and a
    /// BTreeMap gives deterministic iteration for error messages.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogates never appear in our own output;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let j = Json::parse(r#"{"a":1,"b":[true,null,-2.5e1],"c":"x"}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_f64(), Some(1.0));
        let b = j.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_f64(), Some(-25.0));
        assert_eq!(j.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn roundtrips_own_measurement_output() {
        // The parser must accept exactly what the harness writes.
        let m = crate::record::Measurement::new(
            "fig3-4",
            "HP/MichaelList",
            "50i-50r",
            4,
            1000,
            std::time::Duration::from_millis(50),
        )
        .with_mem(1024)
        .with_stats(orc_util::stats::StatsSnapshot {
            retires: 3,
            reclaims: 2,
            ..Default::default()
        });
        let j = Json::parse(&m.json()).unwrap();
        assert_eq!(j.get("series").unwrap().as_str(), Some("HP/MichaelList"));
        assert_eq!(j.get("ops").unwrap().as_u64(), Some(1000));
        assert_eq!(
            j.get("stats").unwrap().get("retires").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let j = Json::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{'single':1}",
            "nulll",
            "--3",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.contains("JSON parse error"), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn u64_conversion_is_strict() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }
}
