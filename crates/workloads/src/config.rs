//! Environment-tunable benchmark configuration.
//!
//! The paper's full evaluation takes ~30 hours (Appendix A); defaults here
//! are scaled so `cargo bench` completes in minutes on a small machine
//! while preserving the comparisons' *shape*. Every knob can be restored
//! to paper scale through environment variables:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `ORC_BENCH_THREADS` | comma list of thread counts to sweep | `1,2,4,8` |
//! | `ORC_BENCH_OPS` | enq/deq pairs per queue data point | `200000` (paper: 10⁷) |
//! | `ORC_BENCH_SECONDS` | seconds per set data point | `0.4` (paper: 20 × 5 runs) |
//! | `ORC_BENCH_KEYS_SMALL` | key range for list benches | `1000` (paper: 10³) |
//! | `ORC_BENCH_KEYS_LARGE` | key range for tree/skip-list benches | `100000` (paper: 10⁶) |
//! | `ORC_BENCH_RUNS` | repetitions per point (mean reported) | `1` (paper: 5) |

use std::time::Duration;

#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub threads: Vec<usize>,
    pub queue_pairs: u64,
    pub seconds_per_point: Duration,
    pub keys_small: u64,
    pub keys_large: u64,
    pub runs: usize,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let threads = std::env::var("ORC_BENCH_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        Self {
            threads,
            queue_pairs: env_u64("ORC_BENCH_OPS", 200_000),
            seconds_per_point: Duration::from_secs_f64(env_f64("ORC_BENCH_SECONDS", 0.4)),
            keys_small: env_u64("ORC_BENCH_KEYS_SMALL", 1_000),
            keys_large: env_u64("ORC_BENCH_KEYS_LARGE", 100_000),
            runs: env_u64("ORC_BENCH_RUNS", 1) as usize,
        }
    }
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BenchConfig::from_env();
        assert!(!c.threads.is_empty());
        assert!(c.queue_pairs > 0);
        assert!(c.seconds_per_point > Duration::ZERO);
        assert!(c.keys_small >= 2);
        assert!(c.keys_large >= c.keys_small);
        assert!(c.runs >= 1);
    }
}
