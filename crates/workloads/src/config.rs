//! Environment-tunable benchmark configuration.
//!
//! The paper's full evaluation takes ~30 hours (Appendix A); defaults here
//! are scaled so `cargo bench` completes in minutes on a small machine
//! while preserving the comparisons' *shape*. Every knob can be restored
//! to paper scale through environment variables:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `ORC_BENCH_THREADS` | comma list of thread counts to sweep | `1,2,4,8` |
//! | `ORC_BENCH_OPS` | enq/deq pairs per queue data point | `200000` (paper: 10⁷) |
//! | `ORC_BENCH_SECONDS` | seconds per set data point | `0.4` (paper: 20 × 5 runs) |
//! | `ORC_BENCH_KEYS_SMALL` | key range for list benches | `1000` (paper: 10³) |
//! | `ORC_BENCH_KEYS_LARGE` | key range for tree/skip-list benches | `100000` (paper: 10⁶) |
//! | `ORC_BENCH_RUNS` | repetitions per point (mean reported) | `1` (paper: 5) |
//!
//! Every knob is floored to its smallest useful value (like the torture
//! harness's `Config::from_env`): a typo'd `ORC_BENCH_RUNS=0` or
//! `ORC_BENCH_OPS=0` must degrade to the tiniest real run, not divide by
//! zero or produce an empty sweep.

use std::time::Duration;

#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub threads: Vec<usize>,
    pub queue_pairs: u64,
    pub seconds_per_point: Duration,
    pub keys_small: u64,
    pub keys_large: u64,
    pub runs: usize,
}

impl BenchConfig {
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// Builds the config from any `name -> value` lookup (the process
    /// environment in production; a closure in tests, avoiding the
    /// process-global `set_var` race between parallel tests).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let u64_knob = |name: &str, default: u64| -> u64 {
            lookup(name)
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        let f64_knob = |name: &str, default: f64| -> f64 {
            lookup(name)
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        let threads = lookup("ORC_BENCH_THREADS")
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t: &usize| t > 0)
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        // Floors: `0` (or a negative/NaN duration) would divide per-run op
        // counts by zero or run zero-length sweeps. NaN loses against the
        // floor in f64::max, so `ORC_BENCH_SECONDS=nan` also lands on it.
        let seconds = f64_knob("ORC_BENCH_SECONDS", 0.4).max(1e-3);
        let keys_small = u64_knob("ORC_BENCH_KEYS_SMALL", 1_000).max(2);
        Self {
            threads,
            queue_pairs: u64_knob("ORC_BENCH_OPS", 200_000).max(1),
            seconds_per_point: Duration::from_secs_f64(seconds),
            keys_small,
            keys_large: u64_knob("ORC_BENCH_KEYS_LARGE", 100_000).max(keys_small),
            runs: (u64_knob("ORC_BENCH_RUNS", 1) as usize).max(1),
        }
    }
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BenchConfig::from_lookup(|_| None);
        assert_eq!(c.threads, vec![1, 2, 4, 8]);
        assert!(c.queue_pairs > 0);
        assert!(c.seconds_per_point > Duration::ZERO);
        assert!(c.keys_small >= 2);
        assert!(c.keys_large >= c.keys_small);
        assert!(c.runs >= 1);
    }

    #[test]
    fn zero_knobs_are_floored_not_propagated() {
        // Regression: `ORC_BENCH_RUNS=0` used to reach the per-run
        // `ops / runs` division in the bench drivers.
        let c = BenchConfig::from_lookup(|name| match name {
            "ORC_BENCH_RUNS"
            | "ORC_BENCH_OPS"
            | "ORC_BENCH_SECONDS"
            | "ORC_BENCH_KEYS_SMALL"
            | "ORC_BENCH_KEYS_LARGE" => Some("0".into()),
            _ => None,
        });
        assert_eq!(c.runs, 1);
        assert_eq!(c.queue_pairs, 1);
        assert!(c.seconds_per_point >= Duration::from_millis(1));
        assert_eq!(c.keys_small, 2);
        assert_eq!(c.keys_large, 2, "large floors to small, keeping the order");
    }

    #[test]
    fn pathological_floats_and_threads_are_floored() {
        let c = BenchConfig::from_lookup(|name| match name {
            "ORC_BENCH_SECONDS" => Some("NaN".into()),
            "ORC_BENCH_THREADS" => Some("0,0,3".into()),
            _ => None,
        });
        assert!(c.seconds_per_point >= Duration::from_millis(1));
        assert_eq!(c.threads, vec![3], "zero thread counts are dropped");
        let c = BenchConfig::from_lookup(|name| match name {
            "ORC_BENCH_SECONDS" => Some("-5".into()),
            "ORC_BENCH_THREADS" => Some("0".into()),
            _ => None,
        });
        assert!(c.seconds_per_point >= Duration::from_millis(1));
        assert_eq!(c.threads, vec![1, 2, 4, 8], "all-zero list falls back");
    }

    #[test]
    fn unparseable_values_fall_back_to_defaults() {
        let c = BenchConfig::from_lookup(|name| match name {
            "ORC_BENCH_OPS" => Some("lots".into()),
            "ORC_BENCH_RUNS" => Some(" 3 ".into()),
            _ => None,
        });
        assert_eq!(c.queue_pairs, 200_000);
        assert_eq!(c.runs, 3, "whitespace is trimmed before parsing");
    }
}
