//! Memory probes for the §5 footprint experiment (HS-skip ≈19 GB vs
//! CRF-skip <1 GB on the paper's machines).
//!
//! Two complementary measurements:
//!
//! * **Exact tracked bytes** — every scheme in this workspace reports its
//!   allocations to [`orc_util::track`], so live-object/byte deltas are
//!   precise and allocator-independent (what the paper *means*).
//! * **Process RSS** — read from `/proc/self/statm` (what the paper
//!   *measured*); noisy but included for fidelity.

use orc_util::track;

/// Resident set size in bytes, or 0 when `/proc` is unavailable.
pub fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    let Some(resident_pages) = statm.split_whitespace().nth(1) else {
        return 0;
    };
    let Ok(pages): Result<u64, _> = resident_pages.parse() else {
        return 0;
    };
    pages * page_size()
}

/// Page size from the ELF auxiliary vector (`AT_PAGESZ`), read without
/// libc so the workspace stays dependency-free; falls back to 4 KiB where
/// `/proc/self/auxv` is unavailable (non-Linux, locked-down containers).
pub fn page_size() -> u64 {
    const AT_PAGESZ: u64 = 6;
    if let Ok(auxv) = std::fs::read("/proc/self/auxv") {
        for pair in auxv.chunks_exact(16) {
            let key = u64::from_ne_bytes(pair[..8].try_into().unwrap());
            let val = u64::from_ne_bytes(pair[8..].try_into().unwrap());
            if key == AT_PAGESZ && val != 0 {
                return val;
            }
        }
    }
    4096
}

/// Snapshot of both memory views.
#[derive(Debug, Clone, Copy)]
pub struct MemSnapshot {
    pub live_objects: i64,
    pub live_bytes: i64,
    pub rss: u64,
}

pub fn snapshot() -> MemSnapshot {
    let s = track::global().snapshot();
    MemSnapshot {
        live_objects: s.live_objects,
        live_bytes: s.live_bytes,
        rss: rss_bytes(),
    }
}

impl MemSnapshot {
    /// Tracked-byte growth since `base`.
    pub fn bytes_since(&self, base: &MemSnapshot) -> i64 {
        self.live_bytes - base.live_bytes
    }

    pub fn objects_since(&self, base: &MemSnapshot) -> i64 {
        self.live_objects - base.live_objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `rss_bytes` returns 0 where /proc/self/statm does not exist; the
    // positivity claim only holds on Linux.
    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_nonzero_on_linux() {
        assert!(rss_bytes() > 0, "/proc/self/statm should be readable");
    }

    #[test]
    fn snapshot_deltas_track_allocations() {
        // ≤ MAX_HPS guards may be live per thread; stay well below.
        let base = snapshot();
        let guards: Vec<_> = (0..50).map(|i| orcgc::make_orc([i as u8; 64])).collect();
        let grown = snapshot();
        assert!(grown.objects_since(&base) >= 50);
        assert!(grown.bytes_since(&base) >= 50 * 64);
        drop(guards);
        orcgc::flush_thread();
    }
}
