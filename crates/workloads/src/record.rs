//! Benchmark result records and output.
//!
//! Each data point becomes a [`Measurement`]; bench binaries print an
//! aligned human-readable table (mirroring the paper's figure series) and
//! can dump JSON lines for plotting.

use reclaim::StatsSnapshot;
use std::io::Write;
use std::time::Duration;

/// One benchmark data point (one figure series entry).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Which experiment (e.g. "fig1-queues").
    pub experiment: String,
    /// Series label (structure and/or scheme, as in the figure legend).
    pub series: String,
    /// Workload label (e.g. "50i-50r", "enq-deq-pairs").
    pub workload: String,
    pub threads: usize,
    pub ops: u64,
    pub elapsed_s: f64,
    /// Million operations per second.
    pub mops: f64,
    /// Optional memory metric (bytes) for the footprint experiments.
    pub mem_bytes: Option<i64>,
    /// Optional unreclaimed-objects metric for the bound experiments.
    pub max_unreclaimed: Option<i64>,
    /// Optional orc-stats snapshot (delta over the measured interval).
    pub stats: Option<StatsSnapshot>,
    /// Optional orc-trace summary (retire→reclaim latency + ring losses).
    pub trace: Option<TraceSummary>,
}

/// Condensed orc-trace telemetry attached to a measurement: the
/// retire→reclaim latency quantiles (from the scheme's delay histogram)
/// and how many events the bounded trace rings overwrote.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSummary {
    pub reclaim_delay_p50_ns: u64,
    pub reclaim_delay_p99_ns: u64,
    pub reclaim_delay_max_ns: u64,
    pub events_dropped: u64,
}

impl Measurement {
    pub fn new(
        experiment: &str,
        series: &str,
        workload: &str,
        threads: usize,
        ops: u64,
        elapsed: Duration,
    ) -> Self {
        let secs = elapsed.as_secs_f64().max(1e-9);
        Self {
            experiment: experiment.to_string(),
            series: series.to_string(),
            workload: workload.to_string(),
            threads,
            ops,
            elapsed_s: secs,
            mops: ops as f64 / secs / 1e6,
            mem_bytes: None,
            max_unreclaimed: None,
            stats: None,
            trace: None,
        }
    }

    pub fn with_mem(mut self, bytes: i64) -> Self {
        self.mem_bytes = Some(bytes);
        self
    }

    pub fn with_unreclaimed(mut self, n: i64) -> Self {
        self.max_unreclaimed = Some(n);
        self
    }

    /// Attaches an orc-stats snapshot; its scalar counters join the JSON
    /// output as a nested `"stats"` object.
    pub fn with_stats(mut self, s: StatsSnapshot) -> Self {
        self.stats = Some(s);
        self
    }

    /// Attaches an orc-trace summary derived from a stats snapshot's delay
    /// histogram plus the trace rings' overwrite counter; joins the JSON
    /// output as a nested `"trace"` object.
    pub fn with_trace(mut self, s: &StatsSnapshot, events_dropped: u64) -> Self {
        self.trace = Some(TraceSummary {
            reclaim_delay_p50_ns: s.delay_p50(),
            reclaim_delay_p99_ns: s.delay_p99(),
            reclaim_delay_max_ns: s.max_delay_ns,
            events_dropped,
        });
        self
    }

    /// Serializes to one JSON object (hand-rolled: the workspace builds
    /// without external dependencies, so there is no serde). `None`
    /// metrics are omitted, matching the previous serde output.
    pub fn json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        json_str(&mut out, "experiment", &self.experiment);
        out.push(',');
        json_str(&mut out, "series", &self.series);
        out.push(',');
        json_str(&mut out, "workload", &self.workload);
        out.push_str(&format!(
            ",\"threads\":{},\"ops\":{},\"elapsed_s\":{},\"mops\":{}",
            self.threads,
            self.ops,
            json_f64(self.elapsed_s),
            json_f64(self.mops)
        ));
        if let Some(b) = self.mem_bytes {
            out.push_str(&format!(",\"mem_bytes\":{b}"));
        }
        if let Some(n) = self.max_unreclaimed {
            out.push_str(&format!(",\"max_unreclaimed\":{n}"));
        }
        if let Some(s) = &self.stats {
            out.push_str(",\"stats\":");
            out.push_str(&s.json());
        }
        if let Some(t) = &self.trace {
            out.push_str(&format!(
                ",\"trace\":{{\"reclaim_delay_p50_ns\":{},\"reclaim_delay_p99_ns\":{},\
                 \"reclaim_delay_max_ns\":{},\"events_dropped\":{}}}",
                t.reclaim_delay_p50_ns,
                t.reclaim_delay_p99_ns,
                t.reclaim_delay_max_ns,
                t.events_dropped
            ));
        }
        out.push('}');
        out
    }
}

/// Formats an `f64` as a JSON number. `{}` on a non-finite f64 prints
/// `NaN`/`inf`, which no JSON parser accepts — emit `null` instead (the
/// zero-elapsed / zero-ops corner cases of degenerate bench configs).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Appends `"key":"value"` with JSON string escaping.
fn json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Prints the table header for a figure.
pub fn print_header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!(
        "{:<28} {:<12} {:>7} {:>12} {:>10} {:>12} {:>12}",
        "series", "workload", "threads", "ops", "Mops/s", "mem", "unreclaimed"
    );
}

/// Prints one measurement row, aligned under [`print_header`].
pub fn print_row(m: &Measurement) {
    let mem = m
        .mem_bytes
        .map(human_bytes)
        .unwrap_or_else(|| "-".to_string());
    let unr = m
        .max_unreclaimed
        .map(|v| v.to_string())
        .unwrap_or_else(|| "-".to_string());
    println!(
        "{:<28} {:<12} {:>7} {:>12} {:>10.3} {:>12} {:>12}",
        m.series, m.workload, m.threads, m.ops, m.mops, mem, unr
    );
    let _ = std::io::stdout().flush();
}

/// Appends JSON lines to `$ORC_BENCH_JSON` if set.
pub fn maybe_dump_json(ms: &[Measurement]) {
    let env_path = std::env::var("ORC_BENCH_JSON").ok();
    maybe_dump_json_to(env_path.as_deref(), ms);
}

/// Appends JSON lines to `path` when given, else to `$ORC_BENCH_JSON`
/// when set. Bins route their `--json <path>` flag here so a CLI flag
/// always beats the environment.
pub fn maybe_dump_json_to(path: Option<&str>, ms: &[Measurement]) {
    let path = match path
        .map(str::to_owned)
        .or_else(|| std::env::var("ORC_BENCH_JSON").ok())
    {
        Some(p) => p,
        None => return,
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            for m in ms {
                let _ = writeln!(f, "{}", m.json());
            }
        }
        Err(e) => eprintln!("warning: could not append JSON lines to {path}: {e}"),
    }
}

fn human_bytes(b: i64) -> String {
    let abs = b.unsigned_abs() as f64;
    let sign = if b < 0 { "-" } else { "" };
    if abs >= 1e9 {
        format!("{sign}{:.2}GB", abs / 1e9)
    } else if abs >= 1e6 {
        format!("{sign}{:.2}MB", abs / 1e6)
    } else if abs >= 1e3 {
        format!("{sign}{:.1}KB", abs / 1e3)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mops_math() {
        let m = Measurement::new("e", "s", "w", 4, 2_000_000, Duration::from_secs(2));
        assert!((m.mops - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let m = Measurement::new("e", "s", "w", 1, 10, Duration::from_millis(5)).with_mem(1024);
        let j = m.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"experiment\":\"e\""));
        assert!(j.contains("\"series\":\"s\""));
        assert!(j.contains("\"threads\":1"));
        assert!(j.contains("\"mem_bytes\":1024"));
        assert!(!j.contains("max_unreclaimed"), "None metrics are omitted");
    }

    #[test]
    fn json_emits_null_for_non_finite_floats() {
        // Regression: `{}` interpolation printed `NaN`/`inf`, which no
        // JSON parser accepts.
        let mut m = Measurement::new("e", "s", "w", 1, 1, Duration::from_millis(1));
        m.mops = f64::NAN;
        m.elapsed_s = f64::INFINITY;
        let j = m.json();
        assert!(j.contains("\"elapsed_s\":null"), "inf -> null: {j}");
        assert!(j.contains("\"mops\":null"), "NaN -> null: {j}");
        assert!(
            !j.contains("NaN") && !j.contains("inf"),
            "invalid JSON: {j}"
        );
    }

    #[test]
    fn json_includes_stats_when_attached() {
        let s = reclaim::StatsSnapshot {
            retires: 10,
            reclaims: 7,
            peak_unreclaimed: 4,
            ..Default::default()
        };
        let m = Measurement::new("e", "s", "w", 1, 1, Duration::from_millis(1)).with_stats(s);
        let j = m.json();
        assert!(
            j.contains("\"stats\":{\"retires\":10,\"reclaims\":7"),
            "{j}"
        );
        assert!(j.contains("\"peak_unreclaimed\":4"), "{j}");
        assert!(
            !j.contains("NaN"),
            "zero batches must not leak a NaN mean: {j}"
        );
    }

    #[test]
    fn json_includes_trace_when_attached() {
        let mut s = reclaim::StatsSnapshot::default();
        // One delayed reclaim in the exact-value bucket "2ns".
        s.delay_hist[2] = 1;
        s.max_delay_ns = 2;
        let m = Measurement::new("e", "s", "w", 1, 1, Duration::from_millis(1)).with_trace(&s, 7);
        let j = m.json();
        assert!(
            j.contains("\"trace\":{\"reclaim_delay_p50_ns\":2,\"reclaim_delay_p99_ns\":2"),
            "{j}"
        );
        assert!(j.contains("\"reclaim_delay_max_ns\":2"), "{j}");
        assert!(j.contains("\"events_dropped\":7"), "{j}");
        // A measurement without the summary omits the key entirely.
        let bare = Measurement::new("e", "s", "w", 1, 1, Duration::from_millis(1));
        assert!(!bare.json().contains("\"trace\""));
    }

    #[test]
    fn json_escapes_strings() {
        let m = Measurement::new("e\"q", "s\\b", "w\n", 1, 1, Duration::from_millis(1));
        let j = m.json();
        assert!(j.contains("e\\\"q"), "quote escaped: {j}");
        assert!(j.contains("s\\\\b"), "backslash escaped: {j}");
        assert!(j.contains("w\\n"), "newline escaped: {j}");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2_048), "2.0KB");
        assert_eq!(human_bytes(3_000_000), "3.00MB");
        assert_eq!(human_bytes(19_000_000_000), "19.00GB");
    }
}
