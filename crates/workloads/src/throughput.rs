//! Multi-threaded throughput measurement loops.
//!
//! * [`queue_pairs`] — the Figures 1–2 workload: every thread alternates
//!   enqueue/dequeue until the global pair budget is exhausted.
//! * [`set_mix`] — the Figures 3–8 workload: each thread draws uniform
//!   keys from the range and applies the (insert, remove, lookup) mix for
//!   a fixed duration. The structure is prefilled to half the key range,
//!   as in the paper's artifact.

use crate::record::Measurement;
use orc_util::atomics::{AtomicBool, AtomicU64, Ordering};
use orc_util::rng::XorShift64;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use structures::{ConcurrentQueue, ConcurrentSet};

/// Read/write mix: permille of inserts and removes (rest are lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    pub insert_pm: u64,
    pub remove_pm: u64,
}

impl Mix {
    /// The paper's three list/tree workloads.
    pub const WRITE_HEAVY: Mix = Mix {
        insert_pm: 500,
        remove_pm: 500,
    }; // 50i/50r
    pub const MIXED: Mix = Mix {
        insert_pm: 50,
        remove_pm: 50,
    }; // 5i/5r/90l
    pub const READ_ONLY: Mix = Mix {
        insert_pm: 0,
        remove_pm: 0,
    }; // 100l

    pub fn label(&self) -> &'static str {
        if *self == Mix::WRITE_HEAVY {
            "50i-50r"
        } else if *self == Mix::MIXED {
            "5i-5r-90l"
        } else if *self == Mix::READ_ONLY {
            "100l"
        } else {
            "custom"
        }
    }
}

/// Figures 1–2 workload: `pairs` enqueue/dequeue pairs split across
/// `threads` threads; returns ops (= 2 × pairs completed) over wall time.
pub fn queue_pairs<Q: ConcurrentQueue<u64> + 'static>(
    experiment: &str,
    series: &str,
    queue: Arc<Q>,
    threads: usize,
    pairs: u64,
) -> Measurement {
    let per_thread = pairs / threads as u64;
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let queue = queue.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    queue.enqueue(t as u64 * per_thread + i);
                    // Tolerate transient emptiness from sibling dequeues.
                    while queue.dequeue().is_none() {
                        std::hint::spin_loop();
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let ops = per_thread * threads as u64 * 2;
    Measurement::new(experiment, series, "enq-deq-pairs", threads, ops, elapsed)
}

/// Prefills `set` with every other key of `0..key_range` (half full), as
/// the paper's set benchmarks do. Keys are inserted in shuffled order —
/// essential for the (unbalanced) external BST, which degenerates to a
/// linked list under sorted insertion.
pub fn prefill_set<S: ConcurrentSet<u64> + ?Sized>(set: &S, key_range: u64) {
    let mut keys: Vec<u64> = (0..key_range).step_by(2).collect();
    // Fisher–Yates with the in-tree generator (deterministic per range).
    let mut rng = XorShift64::new(0x07C6C ^ key_range);
    for i in (1..keys.len()).rev() {
        let j = rng.next_bounded(i as u64 + 1) as usize;
        keys.swap(i, j);
    }
    for k in keys {
        set.add(k);
    }
}

/// Figures 3–8 workload: run the mix for `duration`, all threads pounding
/// uniform random keys in `0..key_range`.
pub fn set_mix<S: ConcurrentSet<u64> + 'static>(
    experiment: &str,
    series: &str,
    set: Arc<S>,
    threads: usize,
    key_range: u64,
    mix: Mix,
    duration: Duration,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let set = set.clone();
            let stop = stop.clone();
            let total_ops = total_ops.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut rng = XorShift64::for_thread(t, 0xBE7C4);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Batch between stop-flag checks to keep loop overhead low.
                    for _ in 0..64 {
                        let key = rng.next_bounded(key_range);
                        let dice = rng.next_bounded(1000);
                        if dice < mix.insert_pm {
                            set.add(key);
                        } else if dice < mix.insert_pm + mix.remove_pm {
                            set.remove(&key);
                        } else {
                            set.contains(&key);
                        }
                    }
                    ops += 64;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
                orcgc::flush_thread();
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    Measurement::new(
        experiment,
        series,
        mix.label(),
        threads,
        total_ops.load(Ordering::Relaxed),
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use structures::list::MichaelListOrc;
    use structures::queue::MsQueueOrc;

    #[test]
    fn queue_pairs_complete_and_balance() {
        let q = Arc::new(MsQueueOrc::new());
        let m = queue_pairs("t", "ms", q.clone(), 2, 2_000);
        assert_eq!(m.ops, 4_000);
        assert!(m.mops > 0.0);
        assert_eq!(q.dequeue(), None, "paired workload must drain the queue");
    }

    #[test]
    fn set_mix_runs_and_counts() {
        let set = Arc::new(MichaelListOrc::new());
        prefill_set(&*set, 64);
        let m = set_mix("t", "ml", set, 2, 64, Mix::MIXED, Duration::from_millis(50));
        assert!(m.ops > 0);
        assert_eq!(m.workload, "5i-5r-90l");
    }

    #[test]
    fn prefill_is_half_full() {
        let set = MichaelListOrc::new();
        prefill_set(&set, 100);
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn mix_labels() {
        assert_eq!(Mix::WRITE_HEAVY.label(), "50i-50r");
        assert_eq!(Mix::MIXED.label(), "5i-5r-90l");
        assert_eq!(Mix::READ_ONLY.label(), "100l");
    }
}
