//! Benchmark harness for the OrcGC reproduction.
//!
//! Provides everything the per-figure bench targets share:
//!
//! * [`throughput`] — multi-threaded run loops for queues (enq/deq pairs,
//!   Figures 1–2) and sets (read/write mixes over a key range,
//!   Figures 3–8), with monotonic-clock timing and per-thread op counts.
//! * [`config`] — environment-variable–tunable parameters
//!   (`ORC_BENCH_THREADS`, `ORC_BENCH_OPS`, `ORC_BENCH_SECONDS`,
//!   `ORC_BENCH_KEYS`, `ORC_BENCH_RUNS`), defaulting to laptop-scale values.
//! * [`record`] — result records, JSON-lines output and aligned tables.
//! * [`memprobe`] — process RSS plus the exact live-object/byte counters
//!   every scheme feeds (for the §5 memory experiment).
//! * [`bound`] — the stalled-reader adversary that measures each scheme's
//!   maximum retired-but-unreclaimed backlog (the empirical Table 1).
//! * [`runner`] — orc-bench: the registry-matrix sweep with warmup,
//!   repeated runs and IQR outlier trimming, emitting the
//!   schema-versioned `BENCH_<n>.json` perf-trajectory reports.
//! * [`compare`] — the baseline comparator behind the CI
//!   perf-regression gate (`orc-bench --compare`).
//! * [`json`] — the dependency-free JSON parser the comparator reads
//!   reports with.

pub mod bound;
pub mod compare;
pub mod config;
pub mod json;
pub mod memprobe;
pub mod record;
pub mod runner;
pub mod throughput;

pub use config::BenchConfig;
pub use record::{print_header, print_row, Measurement, TraceSummary};
