//! orc-bench: the in-tree benchmark runner.
//!
//! Regenerates the paper's figure workloads over the registry matrix
//! (`SchemeAxis` × sets × queues, [`structures::registry`]) with real
//! methodology — pinned warmup runs, N timed runs, IQR outlier
//! discard, median-of-runs reporting — and emits one schema-versioned
//! JSON report (`BENCH_<n>.json` at the repo root) carrying a machine
//! fingerprint, the git sha, the exact config, and per-cell
//! ops/sec + peak-unreclaimed + retire→reclaim latency quantiles.
//!
//! Experiments, mapped to the paper:
//!
//! * `fig1-2`  — queues, enq/deq pairs (MS/LCRQ/KP/Turn × schemes).
//! * `fig3-6`  — list sets × schemes × mixes, small key range.
//! * `fig7-8`  — tree/skip-list sets, large key range.
//! * `table1`  — stalled-reader max-unreclaimed bound per scheme
//!   (informational: never gated by the comparator — it measures a
//!   ceiling, not a speed).
//! * `mem-skip` — the §5 footprint claim (HS-skip ≫ CRF-skip under a
//!   pinned reader + generation churn); full profile only, also
//!   informational.
//!
//! The committed-baseline comparator lives in [`crate::compare`]; the
//! CLI around both is the `orc-bench` bin.

use crate::bound::stalled_reader_bound_axis;
use crate::config::BenchConfig;
use crate::record::Measurement;
use crate::throughput::{prefill_set, queue_pairs, set_mix, Mix};
use reclaim::Smr;
use std::sync::Arc;
use std::time::Duration;
use structures::registry::{MakeQueue, MakeSet, MatrixFilter, QueueCell, SetCell};

/// Report schema identifier. Bump on any breaking change to the JSON
/// layout; the comparator refuses files whose schema does not match.
pub const SCHEMA: &str = "orc-bench/v1";

/// Which measurement a cell carries, and therefore how the comparator
/// treats it: throughput cells gate on `mops`, bound cells are
/// reported but never gated (the stalled-reader ceiling is inherently
/// schedule-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    Throughput,
    Bound,
    Memory,
}

impl CellKind {
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Throughput => "throughput",
            CellKind::Bound => "bound",
            CellKind::Memory => "memory",
        }
    }
}

/// Runner profile: how much wall-clock to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: two thread counts, one mix, MichaelList + MSQueue
    /// only, sub-second points. Minutes total on a cold runner.
    Short,
    /// Every registry structure, all three mixes, the full
    /// `ORC_BENCH_THREADS` sweep — the committed-baseline profile.
    Full,
}

impl Profile {
    pub fn name(self) -> &'static str {
        match self {
            Profile::Short => "short",
            Profile::Full => "full",
        }
    }

    pub fn parse(s: &str) -> Option<Profile> {
        match s.trim().to_ascii_lowercase().as_str() {
            "short" => Some(Profile::Short),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

/// Fully resolved runner parameters: a [`Profile`] applied on top of
/// the environment-driven [`BenchConfig`] knobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    pub profile: Profile,
    pub threads: Vec<usize>,
    pub queue_pairs: u64,
    pub seconds_per_point: Duration,
    pub keys_small: u64,
    pub keys_large: u64,
    /// Timed runs per cell (median reported after IQR discard).
    pub runs: usize,
    /// Untimed warmup runs per cell (page in code + heap, settle the
    /// scheme's thread registrations) before the timed runs.
    pub warmup: usize,
    pub mixes: Vec<Mix>,
    /// Writer ops for the table1 stalled-reader bound experiment.
    pub bound_ops: u64,
    /// Structure-name prefixes to sweep; `None` = whole registry.
    pub structures: Option<Vec<&'static str>>,
    /// Run the §5 skip-list memory-footprint experiment (full profile).
    pub mem_experiment: bool,
}

impl RunnerConfig {
    /// Applies `profile` on top of the process environment's
    /// [`BenchConfig`] (env knobs can shrink the short profile further
    /// but never grow it past its CI budget).
    pub fn new(profile: Profile) -> Self {
        Self::from_bench(profile, &BenchConfig::from_env())
    }

    /// Testable constructor from an explicit base config.
    pub fn from_bench(profile: Profile, cfg: &BenchConfig) -> Self {
        match profile {
            Profile::Short => {
                let mut threads: Vec<usize> =
                    cfg.threads.iter().copied().filter(|&t| t <= 2).collect();
                if threads.is_empty() {
                    threads = vec![1, 2];
                }
                Self {
                    profile,
                    threads,
                    queue_pairs: cfg.queue_pairs.min(60_000),
                    seconds_per_point: cfg.seconds_per_point.min(Duration::from_millis(150)),
                    keys_small: cfg.keys_small.clamp(2, 512),
                    keys_large: cfg.keys_large.clamp(2, 8_192),
                    runs: cfg.runs.clamp(2, 3),
                    warmup: 1,
                    mixes: vec![Mix::WRITE_HEAVY],
                    bound_ops: 20_000,
                    structures: Some(vec!["MichaelList", "MSQueue"]),
                    mem_experiment: false,
                }
            }
            Profile::Full => Self {
                profile,
                threads: cfg.threads.clone(),
                queue_pairs: cfg.queue_pairs,
                seconds_per_point: cfg.seconds_per_point,
                keys_small: cfg.keys_small,
                keys_large: cfg.keys_large,
                runs: cfg.runs.max(3),
                warmup: 1,
                mixes: vec![Mix::WRITE_HEAVY, Mix::MIXED, Mix::READ_ONLY],
                bound_ops: 50_000,
                structures: None,
                mem_experiment: true,
            },
        }
    }

    fn wants(&self, structure: &str) -> bool {
        match &self.structures {
            None => true,
            Some(list) => list.iter().any(|p| structure.starts_with(p)),
        }
    }

    /// Config echo for the report header.
    fn json(&self) -> String {
        format!(
            "{{\"threads\":[{}],\"queue_pairs\":{},\"seconds_per_point\":{},\
             \"keys_small\":{},\"keys_large\":{},\"runs\":{},\"warmup\":{},\
             \"mixes\":[{}],\"bound_ops\":{}}}",
            self.threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.queue_pairs,
            self.seconds_per_point.as_secs_f64(),
            self.keys_small,
            self.keys_large,
            self.runs,
            self.warmup,
            self.mixes
                .iter()
                .map(|m| format!("\"{}\"", m.label()))
                .collect::<Vec<_>>()
                .join(","),
            self.bound_ops,
        )
    }
}

/// One benchmarked matrix cell: the trimmed-median summary plus the
/// median run's full [`Measurement`] (with its nested stats/trace).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub kind: CellKind,
    /// Stable comparator key: `experiment/scheme/structure/workload/tN`.
    pub id: String,
    /// Timed runs executed.
    pub runs: usize,
    /// Runs surviving the IQR discard (the median is over these).
    pub kept: usize,
    pub mops_median: f64,
    pub mops_min: f64,
    pub mops_max: f64,
    /// The run whose throughput sits closest to the trimmed median.
    pub measurement: Measurement,
}

impl CellResult {
    fn from_runs(kind: CellKind, id: String, runs: Vec<Measurement>) -> CellResult {
        let samples: Vec<f64> = runs.iter().map(|m| m.mops).collect();
        let (median, kept) = trimmed_median(&samples);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        // Representative run: closest throughput to the trimmed median.
        let rep = runs
            .iter()
            .min_by(|a, b| (a.mops - median).abs().total_cmp(&(b.mops - median).abs()))
            .expect("at least one run")
            .clone();
        CellResult {
            kind,
            id,
            runs: runs.len(),
            kept,
            mops_median: median,
            mops_min: lo,
            mops_max: hi,
            measurement: rep,
        }
    }

    pub fn json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"runs\":{},\"kept\":{},\
             \"mops_median\":{},\"mops_min\":{},\"mops_max\":{},\"measurement\":{}}}",
            self.id,
            self.kind.name(),
            self.runs,
            self.kept,
            finite_or_null(self.mops_median),
            finite_or_null(self.mops_min),
            finite_or_null(self.mops_max),
            self.measurement.json(),
        )
    }
}

fn finite_or_null(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Median of the samples surviving a Tukey IQR discard (outliers
/// outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` dropped). Returns the median
/// and how many samples were kept. With < 4 samples the discard is a
/// no-op (quartiles of tiny samples are meaningless); non-finite
/// samples are always dropped first.
pub fn trimmed_median(samples: &[f64]) -> (f64, usize) {
    let mut s: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if s.is_empty() {
        return (f64::NAN, 0);
    }
    s.sort_by(f64::total_cmp);
    if s.len() >= 4 {
        let q1 = quantile_sorted(&s, 0.25);
        let q3 = quantile_sorted(&s, 0.75);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let kept: Vec<f64> = s.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
        if !kept.is_empty() {
            s = kept;
        }
    }
    (median_sorted(&s), s.len())
}

fn median_sorted(s: &[f64]) -> f64 {
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

/// Linear-interpolated quantile of an ascending slice.
fn quantile_sorted(s: &[f64], q: f64) -> f64 {
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    s[lo] + (s[hi] - s[lo]) * (pos - lo as f64)
}

/// One timed (or warmup) execution of a set cell. A fresh structure and
/// — for manual cells — a fresh scheme instance per run, so per-run
/// stats snapshots are clean deltas.
fn run_set_cell_once(
    cell: &SetCell,
    experiment: &str,
    threads: usize,
    keys: u64,
    mix: Mix,
    duration: Duration,
) -> Measurement {
    let series = cell.label();
    match cell.make {
        MakeSet::Manual(make) => {
            let smr = cell.scheme.manual().expect("manual cell").build();
            let set = Arc::new(make(smr.clone()));
            prefill_set(&*set, keys);
            let m = set_mix(experiment, &series, set, threads, keys, mix, duration);
            // Quiesce before snapshotting so outstanding == unreclaimed.
            smr.flush();
            let s = smr.stats();
            m.with_unreclaimed(s.peak_unreclaimed as i64)
                .with_trace(&s, orc_util::trace::events_dropped())
                .with_stats(s)
        }
        MakeSet::Orc(make) => {
            let base = orcgc::domain_stats();
            let set = Arc::new(make());
            prefill_set(&*set, keys);
            let m = set_mix(experiment, &series, set, threads, keys, mix, duration);
            orcgc::flush_thread();
            let s = orcgc::domain_stats().since(&base);
            m.with_unreclaimed(s.peak_unreclaimed as i64)
                .with_trace(&s, orc_util::trace::events_dropped())
                .with_stats(s)
        }
    }
}

/// One timed (or warmup) execution of a queue cell; see
/// [`run_set_cell_once`].
fn run_queue_cell_once(
    cell: &QueueCell,
    experiment: &str,
    threads: usize,
    pairs: u64,
) -> Measurement {
    let series = cell.label();
    match cell.make {
        MakeQueue::Manual(make) => {
            let smr = cell.scheme.manual().expect("manual cell").build();
            let queue = Arc::new(make(smr.clone()));
            let m = queue_pairs(experiment, &series, queue, threads, pairs);
            smr.flush();
            let s = smr.stats();
            m.with_unreclaimed(s.peak_unreclaimed as i64)
                .with_trace(&s, orc_util::trace::events_dropped())
                .with_stats(s)
        }
        MakeQueue::Orc(make) => {
            let base = orcgc::domain_stats();
            let queue = Arc::new(make());
            let m = queue_pairs(experiment, &series, queue, threads, pairs);
            orcgc::flush_thread();
            let s = orcgc::domain_stats().since(&base);
            m.with_unreclaimed(s.peak_unreclaimed as i64)
                .with_trace(&s, orc_util::trace::events_dropped())
                .with_stats(s)
        }
    }
}

/// Sets use the paper's small key range for lists and the large range
/// for trees/skip lists; the experiment id follows the figure split.
fn set_experiment(structure: &str) -> (&'static str, bool) {
    let is_list = structure.contains("List");
    (if is_list { "fig3-6" } else { "fig7-8" }, is_list)
}

/// Progress callback: `(done_cells, total_cells, cell_id)` before each
/// cell runs. The bin prints a line; tests pass a no-op.
pub type Progress<'a> = &'a mut dyn FnMut(usize, usize, &str);

/// Runs the full benchmark sweep for `cfg`, restricted by the registry
/// `filter` (`ORC_SCHEMES` / `ORC_STRUCTS` slicing works here exactly
/// as in the torture harness).
pub fn run_matrix(
    cfg: &RunnerConfig,
    filter: &MatrixFilter,
    progress: Progress,
) -> Vec<CellResult> {
    let set_cells: Vec<SetCell> = filter
        .set_cells()
        .into_iter()
        .filter(|c| cfg.wants(c.structure))
        .collect();
    let queue_cells: Vec<QueueCell> = filter
        .queue_cells()
        .into_iter()
        .filter(|c| cfg.wants(c.structure))
        .collect();
    let bound_axes: Vec<_> = filter
        .schemes()
        .iter()
        .copied()
        // The leaky baseline never reclaims; its "bound" is the op count.
        .filter(|a| a.manual().is_none_or(|k| k.reclaims()))
        .collect();
    let total = (set_cells.len() * cfg.mixes.len() + queue_cells.len()) * cfg.threads.len()
        + bound_axes.len()
        + if cfg.mem_experiment { 2 } else { 0 };
    let mut done = 0usize;
    let mut out = Vec::new();

    for cell in &set_cells {
        let (experiment, is_list) = set_experiment(cell.structure);
        let keys = if is_list {
            cfg.keys_small
        } else {
            cfg.keys_large
        };
        for &mix in &cfg.mixes {
            for &threads in &cfg.threads {
                let id = format!("{experiment}/{}/{}/t{threads}", cell.label(), mix.label());
                progress(done, total, &id);
                for _ in 0..cfg.warmup {
                    run_set_cell_once(cell, experiment, threads, keys, mix, cfg.seconds_per_point);
                }
                let runs: Vec<Measurement> = (0..cfg.runs)
                    .map(|_| {
                        run_set_cell_once(
                            cell,
                            experiment,
                            threads,
                            keys,
                            mix,
                            cfg.seconds_per_point,
                        )
                    })
                    .collect();
                out.push(CellResult::from_runs(CellKind::Throughput, id, runs));
                done += 1;
            }
        }
    }

    for cell in &queue_cells {
        for &threads in &cfg.threads {
            let id = format!("fig1-2/{}/enq-deq-pairs/t{threads}", cell.label());
            progress(done, total, &id);
            for _ in 0..cfg.warmup {
                run_queue_cell_once(cell, "fig1-2", threads, cfg.queue_pairs);
            }
            let runs: Vec<Measurement> = (0..cfg.runs)
                .map(|_| run_queue_cell_once(cell, "fig1-2", threads, cfg.queue_pairs))
                .collect();
            out.push(CellResult::from_runs(CellKind::Throughput, id, runs));
            done += 1;
        }
    }

    // Table 1: single run per scheme — the adversary measures a ceiling,
    // not a rate, and its threads stall deliberately (no warmup needed).
    for axis in bound_axes {
        let id = format!("table1/{}/stalled-reader/t4", axis.name());
        progress(done, total, &id);
        let start = std::time::Instant::now();
        let readers = 3;
        let r = stalled_reader_bound_axis(axis, readers, reclaim::MAX_HPS, cfg.bound_ops);
        let m = Measurement::new(
            "table1",
            axis.name(),
            "stalled-reader",
            readers + 1,
            r.writer_ops,
            start.elapsed().max(Duration::from_nanos(1)),
        )
        .with_unreclaimed(r.max_unreclaimed as i64);
        out.push(CellResult::from_runs(CellKind::Bound, id, vec![m]));
        done += 1;
    }

    // §5 memory footprint: HS-skip ≫ CRF-skip under a pinned reader +
    // generation churn. Peak *tracked live bytes* over the prefilled
    // baseline — exact and allocator-independent. Single-threaded and
    // single-run: the probe is deterministic up to scheduler timing of
    // the background reclaimer, and the comparator never gates it.
    if cfg.mem_experiment {
        for m in run_mem_skip(cfg.keys_large, &mut |id| progress(done, total, id)) {
            let id = format!("mem-skip/{}/pinned-churn/t1", m.series);
            out.push(CellResult::from_runs(CellKind::Memory, id, vec![m]));
        }
    }

    out
}

/// One pinned-reader churn pass over a skip list, tracking peak live
/// bytes; see the module docs' `mem-skip` experiment.
fn mem_waves<S: structures::ConcurrentSet<u64>>(set: &S, keys: u64, waves: usize) -> (u64, i64) {
    let baseline = crate::memprobe::snapshot().live_bytes;
    let mut peak = 0i64;
    let mut ops = 0u64;
    for _ in 0..waves {
        let mut k = 0;
        while k < keys {
            set.remove(&k);
            ops += 1;
            k += 2;
        }
        let mut k = 0;
        while k < keys {
            set.add(k);
            ops += 1;
            k += 2;
            if k % 4096 == 0 {
                peak = peak.max(crate::memprobe::snapshot().live_bytes - baseline);
            }
        }
        peak = peak.max(crate::memprobe::snapshot().live_bytes - baseline);
    }
    (ops, peak)
}

fn run_mem_skip(keys: u64, progress: &mut dyn FnMut(&str)) -> Vec<Measurement> {
    use structures::skiplist::{CrfSkipListOrc, HsSkipListOrc};
    let waves = 2;
    let mut out = Vec::new();
    macro_rules! run {
        ($ctor:expr, $name:expr) => {{
            progress(&format!("mem-skip/{}/pinned-churn/t1", $name));
            let set = Arc::new($ctor);
            prefill_set(&*set, keys);
            let pin = set.stalled_reader_at_front();
            let start = std::time::Instant::now();
            let (ops, peak) = mem_waves(&*set, keys, waves);
            let m = Measurement::new("mem-skip", $name, "pinned-churn", 1, ops, start.elapsed())
                .with_mem(peak);
            drop(pin);
            drop(set);
            orcgc::flush_thread();
            out.push(m);
        }};
    }
    run!(HsSkipListOrc::new(), "HS-skip");
    run!(CrfSkipListOrc::new(), "CRF-skip");
    out
}

/// Machine fingerprint: enough to decide whether two reports came from
/// comparable hardware. The comparator widens its tolerance when
/// fingerprints differ (see `compare`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    pub hostname: String,
    pub os: String,
    pub arch: String,
    pub cpus: usize,
    pub cpu_model: String,
}

impl Machine {
    pub fn detect() -> Machine {
        let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .ok()
            .or_else(|| std::env::var("HOSTNAME").ok())
            .unwrap_or_else(|| "unknown".into());
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".into());
        Machine {
            hostname,
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cpu_model,
        }
    }

    /// Two reports are host-comparable when CPU model, core count and
    /// architecture all match (hostname alone is too weak — CI runners
    /// share names across wildly different hardware generations).
    pub fn comparable_to(&self, other: &Machine) -> bool {
        self.cpu_model == other.cpu_model && self.cpus == other.cpus && self.arch == other.arch
    }

    fn json(&self) -> String {
        format!(
            "{{\"hostname\":{},\"os\":{},\"arch\":{},\"cpus\":{},\"cpu_model\":{}}}",
            json_string(&self.hostname),
            json_string(&self.os),
            json_string(&self.arch),
            self.cpus,
            json_string(&self.cpu_model),
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The git sha of the working tree, best-effort: `GITHUB_SHA` (CI) or
/// `git rev-parse HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().into();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// A complete bench report, ready to serialize as `BENCH_<n>.json`.
#[derive(Debug, Clone)]
pub struct Report {
    pub profile: Profile,
    pub machine: Machine,
    pub git_sha: String,
    pub generated_unix: u64,
    pub config_json: String,
    pub cells: Vec<CellResult>,
}

impl Report {
    /// Runs the sweep and assembles the report.
    pub fn generate(cfg: &RunnerConfig, filter: &MatrixFilter, progress: Progress) -> Report {
        let cells = run_matrix(cfg, filter, progress);
        Report {
            profile: cfg.profile,
            machine: Machine::detect(),
            git_sha: git_sha(),
            generated_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            config_json: cfg.json(),
            cells,
        }
    }

    /// Serializes the whole report (pretty enough to diff: one cell per
    /// line).
    pub fn json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\n\"schema\":\"{SCHEMA}\",\n\"profile\":\"{}\",\n\"git_sha\":{},\n\
             \"generated_unix\":{},\n\"machine\":{},\n\"config\":{},\n\"cells\":[\n",
            self.profile.name(),
            json_string(&self.git_sha),
            self.generated_unix,
            self.machine.json(),
            self.config_json,
        ));
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&c.json());
            if i + 1 != self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_median_basics() {
        assert_eq!(trimmed_median(&[3.0]), (3.0, 1));
        assert_eq!(trimmed_median(&[1.0, 3.0]), (2.0, 2));
        assert_eq!(trimmed_median(&[1.0, 2.0, 9.0]), (2.0, 3));
    }

    #[test]
    fn trimmed_median_discards_outliers() {
        // 100.0 sits far outside Q3 + 1.5·IQR of the cluster.
        let (m, kept) = trimmed_median(&[10.0, 10.5, 11.0, 10.2, 100.0]);
        assert_eq!(kept, 4);
        assert!((m - 10.35).abs() < 1e-9, "median over the cluster: {m}");
    }

    #[test]
    fn trimmed_median_handles_pathologies() {
        let (m, kept) = trimmed_median(&[]);
        assert!(m.is_nan());
        assert_eq!(kept, 0);
        let (m, kept) = trimmed_median(&[f64::NAN, 5.0, f64::INFINITY]);
        assert_eq!((m, kept), (5.0, 1), "non-finite samples dropped");
        // All-identical samples: IQR 0, nothing discarded.
        assert_eq!(trimmed_median(&[2.0; 6]), (2.0, 6));
    }

    #[test]
    fn short_profile_fits_ci_budget() {
        let cfg = RunnerConfig::from_bench(Profile::Short, &BenchConfig::from_lookup(|_| None));
        assert!(cfg.threads.iter().all(|&t| t <= 2));
        assert!(cfg.seconds_per_point <= Duration::from_millis(150));
        assert!(cfg.queue_pairs <= 60_000);
        assert_eq!(cfg.mixes.len(), 1);
        assert!(cfg.wants("MichaelList-OrcGC") && cfg.wants("MSQueue"));
        assert!(!cfg.wants("NMTree") && !cfg.wants("LCRQ-OrcGC"));
    }

    #[test]
    fn full_profile_covers_everything() {
        let cfg = RunnerConfig::from_bench(Profile::Full, &BenchConfig::from_lookup(|_| None));
        assert_eq!(cfg.mixes.len(), 3);
        assert!(cfg.runs >= 3);
        assert!(cfg.wants("CRF-skip-OrcGC") && cfg.wants("TurnQueue-OrcGC"));
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        // A micro-run over one scheme+structure slice: proves the whole
        // emit path produces valid JSON with the schema and nested
        // stats/trace objects intact.
        let mut cfg = RunnerConfig::from_bench(
            Profile::Short,
            &BenchConfig::from_lookup(|name| match name {
                "ORC_BENCH_SECONDS" => Some("0.02".into()),
                "ORC_BENCH_OPS" => Some("500".into()),
                "ORC_BENCH_THREADS" => Some("1".into()),
                _ => None,
            }),
        );
        cfg.runs = 2;
        cfg.warmup = 0;
        cfg.bound_ops = 300;
        let filter = MatrixFilter::full();
        let report = Report::generate(&cfg, &filter, &mut |_, _, _| {});
        let text = report.json();
        let j = crate::json::Json::parse(&text).expect("report JSON parses");
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(j.get("profile").unwrap().as_str(), Some("short"));
        let cells = j.get("cells").unwrap().as_arr().unwrap();
        // 7 scheme-axis points × (MichaelList set + MSQueue queue) minus
        // nothing, 1 thread count, 1 mix → 14 throughput cells, plus the
        // reclaiming schemes' bound cells.
        assert!(cells.len() >= 14, "got {} cells", cells.len());
        let first = &cells[0];
        assert!(first.get("id").unwrap().as_str().is_some());
        assert!(first.get("mops_median").unwrap().as_f64().is_some());
        let m = first.get("measurement").unwrap();
        assert!(m.get("stats").is_some(), "nested stats object present");
        // Every id is unique (the comparator keys on it).
        let mut ids: Vec<&str> = cells
            .iter()
            .map(|c| c.get("id").unwrap().as_str().unwrap())
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "duplicate cell ids");
    }
}
