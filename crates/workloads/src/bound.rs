//! The Table-1 bound experiment: how many retired-but-unreclaimed objects
//! can each scheme accumulate when readers stall while holding
//! protections?
//!
//! Setup: `readers` threads each protect (and then *hold*) a pointer from
//! a shared array of `slots` locations; a writer continuously swaps fresh
//! objects in and retires the displaced ones. The maximum backlog observed
//! approximates the scheme's bound:
//!
//! * HP/PTB — per-thread retired lists ⇒ grows with the threshold × t (O(Ht²)).
//! * PTP    — no retired lists at all ⇒ stays ≤ t·(H+1) (O(Ht), linear).
//! * HE     — era reservations also protect unrelated objects ⇒ largest.
//! * EBR    — one stalled pinned reader halts reclamation ⇒ unbounded
//!   (grows with the writer's op count).
//! * OrcGC  — pass-the-pointer hand-over ⇒ linear, like PTP.

use orc_util::atomics::{AtomicBool, AtomicPtr, Ordering};
use orcgc::{make_orc, OrcAtomic};
use reclaim::Smr;
use std::sync::{Arc, Barrier};

/// Outcome of one adversary run.
#[derive(Debug, Clone, Copy)]
pub struct BoundResult {
    pub writer_ops: u64,
    pub max_unreclaimed: u64,
}

/// Runs the stalled-reader adversary against a manual scheme.
pub fn stalled_reader_bound<S: Smr + Clone>(
    smr: &S,
    readers: usize,
    slots: usize,
    writer_ops: u64,
) -> BoundResult {
    let shared: Arc<Vec<AtomicPtr<u64>>> = Arc::new(
        (0..slots)
            .map(|i| AtomicPtr::new(smr.alloc(i as u64)))
            .collect(),
    );
    let hold = Arc::new(AtomicBool::new(true));
    let ready = Arc::new(Barrier::new(readers + 1));
    let mut handles = Vec::new();
    for _ in 0..readers {
        let smr = smr.clone();
        let shared = shared.clone();
        let hold = hold.clone();
        let ready = ready.clone();
        handles.push(std::thread::spawn(move || {
            // EBR-style schemes stall inside an operation; pointer-based
            // schemes stall holding their hazard slots.
            smr.begin_op();
            for (idx, slot) in shared.iter().enumerate().take(reclaim::MAX_HPS) {
                let p = smr.protect_ptr(idx, slot);
                assert!(!p.is_null());
            }
            ready.wait();
            while hold.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
            smr.end_op();
        }));
    }
    ready.wait();
    // Writer: swap + retire as fast as possible, recording the backlog.
    let mut max_unreclaimed = 0u64;
    for i in 0..writer_ops {
        let idx = (i as usize) % slots;
        let fresh = smr.alloc(i);
        let old = shared[idx].swap(fresh, Ordering::SeqCst);
        unsafe { smr.retire(old) };
        max_unreclaimed = max_unreclaimed.max(smr.unreclaimed() as u64);
    }
    hold.store(false, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    // Cleanup.
    for slot in shared.iter() {
        let p = slot.swap(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { smr.retire(p) };
    }
    smr.flush();
    BoundResult {
        writer_ops,
        max_unreclaimed,
    }
}

/// Runs the adversary for one point of the registry scheme axis: manual
/// kinds are built fresh via [`SchemeKind::build`]; the OrcGC point runs
/// [`stalled_reader_bound_orc`]. Lets callers sweep every scheme
/// (`for axis in SchemeAxis::ALL`) without naming concrete types.
///
/// [`SchemeKind::build`]: reclaim::SchemeKind::build
pub fn stalled_reader_bound_axis(
    axis: structures::registry::SchemeAxis,
    readers: usize,
    slots: usize,
    writer_ops: u64,
) -> BoundResult {
    match axis.manual() {
        Some(kind) => stalled_reader_bound(&kind.build(), readers, slots, writer_ops),
        None => stalled_reader_bound_orc(readers, slots, writer_ops),
    }
}

/// Runs the stalled-reader adversary against OrcGC: readers hold `OrcPtr`
/// guards; the writer replaces links (automatic retirement).
pub fn stalled_reader_bound_orc(readers: usize, slots: usize, writer_ops: u64) -> BoundResult {
    let shared: Arc<Vec<OrcAtomic<u64>>> = Arc::new(
        (0..slots)
            .map(|i| {
                let p = make_orc(i as u64);
                OrcAtomic::new(&p)
            })
            .collect(),
    );
    let hold = Arc::new(AtomicBool::new(true));
    let ready = Arc::new(Barrier::new(readers + 1));
    let mut handles = Vec::new();
    for _ in 0..readers {
        let shared = shared.clone();
        let hold = hold.clone();
        let ready = ready.clone();
        handles.push(std::thread::spawn(move || {
            let guards: Vec<_> = shared.iter().take(16).map(|s| s.load()).collect();
            ready.wait();
            while hold.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
            drop(guards);
            orcgc::flush_thread();
        }));
    }
    ready.wait();
    // The OrcGC domain is global, so this metric includes any concurrent
    // OrcGC activity in the process — still faithful for a dedicated
    // bench run.
    let domain = orcgc::domain();
    domain.reset_max_unreclaimed();
    for i in 0..writer_ops {
        let idx = (i as usize) % slots;
        let fresh = make_orc(i);
        shared[idx].store(&fresh);
    }
    let max_unreclaimed = domain.max_unreclaimed();
    hold.store(false, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    drop(shared);
    orcgc::flush_thread();
    BoundResult {
        writer_ops,
        max_unreclaimed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim::SchemeKind;
    use structures::registry::SchemeAxis;

    #[test]
    fn ptp_backlog_is_linear_in_threads() {
        let readers = 3;
        let r = stalled_reader_bound_axis(
            SchemeAxis::Manual(SchemeKind::Ptp),
            readers,
            reclaim::MAX_HPS,
            5_000,
        );
        let linear_bound = ((readers + 2) * (reclaim::MAX_HPS + 1)) as u64;
        assert!(
            r.max_unreclaimed <= linear_bound,
            "PTP backlog {} exceeded linear bound {}",
            r.max_unreclaimed,
            linear_bound
        );
    }

    #[test]
    fn ebr_backlog_grows_with_writer_ops() {
        let r = stalled_reader_bound_axis(SchemeAxis::Manual(SchemeKind::Ebr), 1, 4, 3_000);
        assert!(
            r.max_unreclaimed > 2_000,
            "a stalled pinned reader should block EBR reclamation (got {})",
            r.max_unreclaimed
        );
    }

    #[test]
    fn hp_backlog_stays_bounded_but_above_ptp() {
        let r = stalled_reader_bound_axis(
            SchemeAxis::Manual(SchemeKind::Hp),
            2,
            reclaim::MAX_HPS,
            5_000,
        );
        // HP defers up to its scan threshold; far below the EBR blowup.
        assert!(
            r.max_unreclaimed < 4_000,
            "HP backlog {} looks unbounded",
            r.max_unreclaimed
        );
    }

    #[test]
    fn orcgc_backlog_is_small() {
        let r = stalled_reader_bound_axis(SchemeAxis::Orc, 2, 16, 5_000);
        assert!(
            r.max_unreclaimed < 1_000,
            "OrcGC backlog {} exceeds the linear regime",
            r.max_unreclaimed
        );
    }
}
