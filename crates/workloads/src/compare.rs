//! Baseline comparison for `BENCH_<n>.json` reports — the CI
//! perf-regression gate.
//!
//! Two reports are joined on cell `id`; every throughput cell's
//! `mops_median` is compared against the baseline with a tolerance
//! band. The gate fails (non-zero exit in the bin) only on regressions
//! beyond tolerance; improvements, new cells and cells that vanished
//! are reported but never fail the gate.
//!
//! # Cross-machine tolerance
//!
//! Absolute Mops/s do not transfer between hosts: the committed
//! baseline typically comes from a dev box while the gate runs on a CI
//! runner. Each report carries a machine fingerprint (CPU model, core
//! count, arch); when the fingerprints differ the comparator widens
//! the band to `cross_tolerance_pct`, which should be set so only
//! catastrophic regressions (an order-of-magnitude cliff, a scheme
//! accidentally serialized) trip it. Same-fingerprint comparisons use
//! the tight `tolerance_pct`.

use crate::json::Json;
use crate::runner::SCHEMA;
use std::path::Path;

/// Comparator knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Allowed throughput drop, percent, when both reports come from
    /// the same machine fingerprint.
    pub tolerance_pct: f64,
    /// Allowed drop when fingerprints differ (dev box vs CI runner).
    pub cross_tolerance_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            tolerance_pct: 25.0,
            cross_tolerance_pct: 90.0,
        }
    }
}

/// Per-cell comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum CellDelta {
    /// Within the band (or an improvement): `delta_pct` is signed,
    /// negative = slower than baseline.
    Ok { id: String, delta_pct: f64 },
    /// Slower than baseline by more than the tolerance.
    Regressed {
        id: String,
        base_mops: f64,
        new_mops: f64,
        delta_pct: f64,
    },
    /// In the new report only (new structure/scheme): informational.
    New { id: String },
    /// In the baseline only (structure/scheme removed): informational.
    Missing { id: String },
    /// Not comparable (bound cell, zero/NaN baseline, zero-ops run):
    /// skipped with a reason, never gated.
    Skipped { id: String, reason: String },
}

/// Result of comparing two reports.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Whether the machine fingerprints matched.
    pub same_machine: bool,
    /// The tolerance actually applied (percent).
    pub applied_tolerance_pct: f64,
    pub deltas: Vec<CellDelta>,
}

impl CompareReport {
    pub fn regressions(&self) -> Vec<&CellDelta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d, CellDelta::Regressed { .. }))
            .collect()
    }

    /// Human-readable summary, one line per noteworthy cell plus a
    /// verdict footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate: tolerance {:.1}% ({} machine)\n",
            self.applied_tolerance_pct,
            if self.same_machine {
                "same"
            } else {
                "DIFFERENT — widened cross-machine band"
            }
        ));
        let mut ok = 0usize;
        for d in &self.deltas {
            match d {
                CellDelta::Ok { id, delta_pct } => {
                    ok += 1;
                    if *delta_pct > self.applied_tolerance_pct {
                        out.push_str(&format!("  IMPROVED  {id}  +{delta_pct:.1}%\n"));
                    }
                }
                CellDelta::Regressed {
                    id,
                    base_mops,
                    new_mops,
                    delta_pct,
                } => out.push_str(&format!(
                    "  REGRESSED {id}  {base_mops:.3} -> {new_mops:.3} Mops/s ({delta_pct:.1}%)\n"
                )),
                CellDelta::New { id } => out.push_str(&format!("  NEW       {id}\n")),
                CellDelta::Missing { id } => out.push_str(&format!("  MISSING   {id}\n")),
                CellDelta::Skipped { id, reason } => {
                    out.push_str(&format!("  SKIPPED   {id}  ({reason})\n"))
                }
            }
        }
        let regs = self.regressions().len();
        out.push_str(&format!(
            "perf gate: {ok} within band, {regs} regression(s)\n"
        ));
        out
    }
}

/// A parsed report, reduced to what the comparator needs.
#[derive(Debug, Clone)]
pub struct ParsedReport {
    pub machine_key: String,
    /// `(id, kind, mops_median)` per cell.
    pub cells: Vec<(String, String, Option<f64>)>,
}

/// Parses and validates one report document. Rejects anything that is
/// not this crate's schema version with an actionable error.
pub fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let j = Json::parse(text)?;
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "not an orc-bench report: missing \"schema\" field".to_string())?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?} (this binary reads {SCHEMA:?}); \
             regenerate the baseline with the current orc-bench"
        ));
    }
    let machine = j
        .get("machine")
        .ok_or_else(|| "report is missing the \"machine\" fingerprint".to_string())?;
    let field = |k: &str| {
        machine
            .get(k)
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    let cpus = machine.get("cpus").and_then(Json::as_u64).unwrap_or(0);
    let machine_key = format!("{}/{}/{}", field("cpu_model"), cpus, field("arch"));
    let cells_json = j
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| "report is missing the \"cells\" array".to_string())?;
    let mut cells = Vec::with_capacity(cells_json.len());
    for (i, c) in cells_json.iter().enumerate() {
        let id = c
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell #{i} has no \"id\""))?
            .to_string();
        let kind = c
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or("throughput")
            .to_string();
        // `null` (a NaN/zero-elapsed run) parses as None — skipped later.
        let mops = c.get("mops_median").and_then(Json::as_f64);
        cells.push((id, kind, mops));
    }
    Ok(ParsedReport { machine_key, cells })
}

/// Compares two parsed reports.
pub fn compare(
    baseline: &ParsedReport,
    current: &ParsedReport,
    cfg: &CompareConfig,
) -> CompareReport {
    let same_machine =
        baseline.machine_key == current.machine_key && !baseline.machine_key.starts_with("unknown");
    let tol = if same_machine {
        cfg.tolerance_pct
    } else {
        cfg.cross_tolerance_pct
    };
    let mut deltas = Vec::new();
    for (id, kind, mops) in &current.cells {
        let base = baseline.cells.iter().find(|(bid, _, _)| bid == id);
        let Some((_, _, base_mops)) = base else {
            deltas.push(CellDelta::New { id: id.clone() });
            continue;
        };
        if kind != "throughput" {
            deltas.push(CellDelta::Skipped {
                id: id.clone(),
                reason: format!("{kind} cells are informational"),
            });
            continue;
        }
        let (Some(b), Some(n)) = (*base_mops, *mops) else {
            deltas.push(CellDelta::Skipped {
                id: id.clone(),
                reason: "missing mops_median (degenerate run)".into(),
            });
            continue;
        };
        // A zero or non-finite baseline cannot anchor a ratio: a
        // zero-ops cell must never divide-by-zero its way into a gate
        // verdict.
        if !b.is_finite() || !n.is_finite() || b <= 0.0 {
            deltas.push(CellDelta::Skipped {
                id: id.clone(),
                reason: format!("non-comparable mops (base {b}, new {n})"),
            });
            continue;
        }
        let delta_pct = (n - b) / b * 100.0;
        if delta_pct < -tol {
            deltas.push(CellDelta::Regressed {
                id: id.clone(),
                base_mops: b,
                new_mops: n,
                delta_pct,
            });
        } else {
            deltas.push(CellDelta::Ok {
                id: id.clone(),
                delta_pct,
            });
        }
    }
    for (id, _, _) in &baseline.cells {
        if !current.cells.iter().any(|(cid, _, _)| cid == id) {
            deltas.push(CellDelta::Missing { id: id.clone() });
        }
    }
    CompareReport {
        same_machine,
        applied_tolerance_pct: tol,
        deltas,
    }
}

/// File-level gate outcome, as the bin surfaces it.
#[derive(Debug)]
pub enum GateOutcome {
    /// Baseline absent — first run on a fresh branch: the gate passes.
    SkippedNoBaseline { baseline: String },
    /// Comparison ran; regressions (if any) are inside.
    Compared(CompareReport),
}

/// Compares two report files. A missing *baseline* file skips the gate
/// gracefully (exit 0 in the bin — first run has nothing to compare
/// against); every other failure (missing current file, malformed or
/// old-schema JSON) is an error.
pub fn compare_files(
    baseline: &Path,
    current: &Path,
    cfg: &CompareConfig,
) -> Result<GateOutcome, String> {
    if !baseline.exists() {
        return Ok(GateOutcome::SkippedNoBaseline {
            baseline: baseline.display().to_string(),
        });
    }
    let base_text = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline.display()))?;
    let cur_text = std::fs::read_to_string(current)
        .map_err(|e| format!("cannot read report {}: {e}", current.display()))?;
    let base =
        parse_report(&base_text).map_err(|e| format!("baseline {}: {e}", baseline.display()))?;
    let cur = parse_report(&cur_text).map_err(|e| format!("report {}: {e}", current.display()))?;
    Ok(GateOutcome::Compared(compare(&base, &cur, cfg)))
}
