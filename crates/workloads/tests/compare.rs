//! Comparator battery: the CI perf-regression gate must fail on real
//! regressions, pass improvements, skip gracefully when no baseline
//! exists, reject malformed or old-schema input with a clear error,
//! and never divide by zero on degenerate cells.

use workloads::compare::{
    compare, compare_files, parse_report, CellDelta, CompareConfig, GateOutcome,
};
use workloads::runner::SCHEMA;

/// Builds a minimal schema-valid report document.
fn report_json(machine_model: &str, cells: &[(&str, &str, &str)]) -> String {
    let cells: Vec<String> = cells
        .iter()
        .map(|(id, kind, mops)| {
            format!(
                "{{\"id\":\"{id}\",\"kind\":\"{kind}\",\"runs\":3,\"kept\":3,\
                 \"mops_median\":{mops},\"mops_min\":{mops},\"mops_max\":{mops},\
                 \"measurement\":{{\"experiment\":\"e\",\"series\":\"s\",\
                 \"workload\":\"w\",\"threads\":1,\"ops\":10,\"elapsed_s\":0.1,\
                 \"mops\":{mops}}}}}"
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"profile\":\"short\",\"git_sha\":\"abc\",\
         \"generated_unix\":1,\"machine\":{{\"hostname\":\"h\",\"os\":\"linux\",\
         \"arch\":\"x86_64\",\"cpus\":8,\"cpu_model\":\"{machine_model}\"}},\
         \"config\":{{}},\"cells\":[{}]}}",
        cells.join(",")
    )
}

fn cfg() -> CompareConfig {
    CompareConfig {
        tolerance_pct: 20.0,
        cross_tolerance_pct: 90.0,
    }
}

#[test]
fn regression_beyond_tolerance_fails() {
    let base = parse_report(&report_json(
        "cpu",
        &[("fig1-2/HP/MSQueue/t1", "throughput", "10.0")],
    ))
    .unwrap();
    let new = parse_report(&report_json(
        "cpu",
        &[("fig1-2/HP/MSQueue/t1", "throughput", "7.0")],
    ))
    .unwrap();
    let r = compare(&base, &new, &cfg());
    assert!(r.same_machine);
    assert_eq!(r.applied_tolerance_pct, 20.0);
    let regs = r.regressions();
    assert_eq!(regs.len(), 1, "-30% must trip a 20% band: {:?}", r.deltas);
    match regs[0] {
        CellDelta::Regressed { delta_pct, .. } => assert!((delta_pct + 30.0).abs() < 1e-9),
        other => panic!("expected Regressed, got {other:?}"),
    }
    // The rendered report names the cell and the verdict.
    let text = r.render();
    assert!(
        text.contains("REGRESSED") && text.contains("fig1-2/HP/MSQueue/t1"),
        "{text}"
    );
}

#[test]
fn within_band_and_improvement_pass() {
    let base = parse_report(&report_json(
        "cpu",
        &[("a", "throughput", "10.0"), ("b", "throughput", "10.0")],
    ))
    .unwrap();
    // a: −10% (inside 20% band); b: +300% (improvements never fail).
    let new = parse_report(&report_json(
        "cpu",
        &[("a", "throughput", "9.0"), ("b", "throughput", "40.0")],
    ))
    .unwrap();
    let r = compare(&base, &new, &cfg());
    assert!(r.regressions().is_empty(), "{:?}", r.deltas);
}

#[test]
fn identical_reports_have_zero_regressions() {
    // The acceptance-criterion shape: two runs of the same profile with
    // identical numbers → zero regressions at any tolerance.
    let text = report_json(
        "cpu",
        &[
            ("fig3-6/HP/MichaelList/50i-50r/t1", "throughput", "1.5"),
            ("fig1-2/OrcGC/MSQueue-OrcGC/t2", "throughput", "3.25"),
            ("table1/PTP/stalled-reader/t4", "bound", "0.1"),
        ],
    );
    let base = parse_report(&text).unwrap();
    let new = parse_report(&text).unwrap();
    let r = compare(
        &base,
        &new,
        &CompareConfig {
            tolerance_pct: 0.001,
            ..cfg()
        },
    );
    assert!(r.regressions().is_empty(), "{:?}", r.deltas);
}

#[test]
fn cross_machine_widens_tolerance() {
    let base = parse_report(&report_json("dev-box-cpu", &[("a", "throughput", "10.0")])).unwrap();
    let new = parse_report(&report_json("ci-runner-cpu", &[("a", "throughput", "4.0")])).unwrap();
    // −60%: trips the 20% same-machine band, passes the 90% cross band.
    let r = compare(&base, &new, &cfg());
    assert!(!r.same_machine);
    assert_eq!(r.applied_tolerance_pct, 90.0);
    assert!(r.regressions().is_empty(), "{:?}", r.deltas);
    // A catastrophic cliff still fails across machines.
    let new = parse_report(&report_json("ci-runner-cpu", &[("a", "throughput", "0.5")])).unwrap();
    let r = compare(&base, &new, &cfg());
    assert_eq!(r.regressions().len(), 1, "-95% must trip the cross band");
}

#[test]
fn bound_cells_and_new_or_missing_cells_never_gate() {
    let base = parse_report(&report_json(
        "cpu",
        &[("t1/bound", "bound", "10.0"), ("gone", "throughput", "1.0")],
    ))
    .unwrap();
    let new = parse_report(&report_json(
        "cpu",
        &[
            ("t1/bound", "bound", "0.01"),
            ("brand-new", "throughput", "1.0"),
        ],
    ))
    .unwrap();
    let r = compare(&base, &new, &cfg());
    assert!(r.regressions().is_empty(), "{:?}", r.deltas);
    assert!(r
        .deltas
        .iter()
        .any(|d| matches!(d, CellDelta::New { id } if id == "brand-new")));
    assert!(r
        .deltas
        .iter()
        .any(|d| matches!(d, CellDelta::Missing { id } if id == "gone")));
    assert!(r
        .deltas
        .iter()
        .any(|d| matches!(d, CellDelta::Skipped { id, .. } if id == "t1/bound")));
}

#[test]
fn zero_and_null_cells_never_divide_by_zero() {
    // Baseline mops 0 (zero-ops run) and null (NaN serialized): both
    // must be skipped, not gated or panicked on.
    let base = parse_report(&report_json(
        "cpu",
        &[("z", "throughput", "0"), ("n", "throughput", "null")],
    ))
    .unwrap();
    let new = parse_report(&report_json(
        "cpu",
        &[("z", "throughput", "5.0"), ("n", "throughput", "5.0")],
    ))
    .unwrap();
    let r = compare(&base, &new, &cfg());
    assert!(r.regressions().is_empty());
    let skipped = r
        .deltas
        .iter()
        .filter(|d| matches!(d, CellDelta::Skipped { .. }))
        .count();
    assert_eq!(skipped, 2, "{:?}", r.deltas);
}

#[test]
fn missing_baseline_file_skips_gracefully() {
    let dir = std::env::temp_dir().join("orc-bench-test-missing-baseline");
    let _ = std::fs::create_dir_all(&dir);
    let current = dir.join("current.json");
    std::fs::write(&current, report_json("cpu", &[("a", "throughput", "1.0")])).unwrap();
    let out = compare_files(&dir.join("does-not-exist.json"), &current, &cfg()).unwrap();
    assert!(matches!(out, GateOutcome::SkippedNoBaseline { .. }));
}

#[test]
fn missing_current_file_is_an_error() {
    let dir = std::env::temp_dir().join("orc-bench-test-missing-current");
    let _ = std::fs::create_dir_all(&dir);
    let baseline = dir.join("baseline.json");
    std::fs::write(&baseline, report_json("cpu", &[("a", "throughput", "1.0")])).unwrap();
    let err = compare_files(&baseline, &dir.join("nope.json"), &cfg()).unwrap_err();
    assert!(err.contains("cannot read report"), "{err}");
}

#[test]
fn malformed_json_is_rejected_with_position() {
    let err = parse_report("{\"schema\":").unwrap_err();
    assert!(err.contains("JSON parse error"), "{err}");
    let err = parse_report("not json at all").unwrap_err();
    assert!(err.contains("JSON parse error"), "{err}");
}

#[test]
fn old_or_foreign_schema_is_rejected_clearly() {
    let old = report_json("cpu", &[]).replace(SCHEMA, "orc-bench/v0");
    let err = parse_report(&old).unwrap_err();
    assert!(
        err.contains("unsupported schema") && err.contains("orc-bench/v0"),
        "{err}"
    );
    let err = parse_report("{\"cells\":[]}").unwrap_err();
    assert!(err.contains("missing \"schema\""), "{err}");
}

#[test]
fn real_runner_report_self_compares_clean() {
    // End-to-end: generate a real (tiny) report through the runner and
    // gate it against itself — the acceptance criterion's "two runs of
    // the same profile report zero regressions" in its deterministic
    // form (identical file both sides).
    use structures::registry::MatrixFilter;
    use workloads::runner::{Profile, Report, RunnerConfig};
    let mut cfg_r = RunnerConfig::from_bench(
        Profile::Short,
        &workloads::BenchConfig::from_lookup(|name| match name {
            "ORC_BENCH_SECONDS" => Some("0.02".into()),
            "ORC_BENCH_OPS" => Some("400".into()),
            "ORC_BENCH_THREADS" => Some("1".into()),
            _ => None,
        }),
    );
    cfg_r.runs = 2;
    cfg_r.warmup = 0;
    cfg_r.bound_ops = 200;
    let report = Report::generate(&cfg_r, &MatrixFilter::full(), &mut |_, _, _| {});
    let text = report.json();
    let parsed = parse_report(&text).expect("runner output parses as a report");
    let r = compare(
        &parsed,
        &parsed,
        &CompareConfig {
            tolerance_pct: 0.0,
            ..cfg()
        },
    );
    assert!(r.same_machine, "fingerprint must match itself");
    assert!(r.regressions().is_empty());
    // Every throughput cell landed in the Ok bucket (nothing silently
    // skipped except the table1 bound rows).
    let oks = r
        .deltas
        .iter()
        .filter(|d| matches!(d, CellDelta::Ok { .. }))
        .count();
    assert!(oks >= 14, "expected ≥14 gated throughput cells, got {oks}");
}
