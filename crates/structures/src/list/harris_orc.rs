//! Harris's *original* lock-free list (DISC 2001) under OrcGC.
//!
//! Unlike Michael's reformulation, Harris's search traverses *through*
//! marked nodes and snips whole marked segments with a single CAS. A
//! snipped segment is unreachable from the list but its interior nodes
//! still point at each other and at the reachable `right` node — which is
//! precisely why "the correctness [of Harris's list] is lost when
//! integrated with most reclamation schemes" (paper §2, second obstacle):
//! a traverser standing inside the segment keeps walking links of nodes a
//! manual scheme would already have freed. Under OrcGC the traverser's
//! guards keep the segment alive, the segment's own hard links keep its
//! suffix alive, and the whole chain collapses automatically once the last
//! guard leaves. (Segments are bounded, satisfying §4's chain condition.)

use crate::ConcurrentSet;
use orc_util::marked::{mark, unmark};
use orcgc::{make_orc, OrcAtomic, OrcPtr};

struct Node<K: Send + Sync> {
    key: K,
    next: OrcAtomic<Node<K>>,
}

/// Harris's original lock-free ordered set with OrcGC annotations.
pub struct HarrisListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
}

struct SearchResult<K: Send + Sync> {
    /// Last unmarked node with key < target (null guard = head).
    left: OrcPtr<Node<K>>,
    /// `left`'s successor at observation time (start of any marked
    /// segment), as an unmarked word.
    left_next: usize,
    /// First unmarked node with key >= target (null = end of list).
    right: OrcPtr<Node<K>>,
}

impl<K> HarrisListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        Self {
            head: OrcAtomic::null(),
        }
    }

    fn link_of<'a>(&'a self, node: &'a OrcPtr<Node<K>>) -> &'a OrcAtomic<Node<K>> {
        match node.as_ref() {
            None => &self.head,
            Some(n) => &n.next,
        }
    }

    /// Harris `search`: find adjacent (left, right); snip the marked
    /// segment between them if there is one.
    fn search(&self, key: &K) -> SearchResult<K> {
        'retry: loop {
            let mut left: OrcPtr<Node<K>> = OrcPtr::null();
            let mut left_next_word;
            let right;
            // 1. Traverse, tracking the last unmarked node < key. The
            //    traversal walks THROUGH marked nodes (their guards keep
            //    them alive even if concurrently unlinked).
            let mut t = self.head.load();
            left_next_word = unmark(t.raw());
            loop {
                let Some(node) = t.as_ref() else {
                    right = t;
                    break;
                };
                let next = node.next.load();
                if !next.is_marked() {
                    if &node.key >= key {
                        right = t;
                        break;
                    }
                    left = t;
                    left_next_word = unmark(next.raw());
                }
                t = next;
            }
            // 2. If left and right are adjacent, no snip needed.
            if left_next_word == unmark(right.raw()) {
                if right
                    .as_ref()
                    .is_some_and(|r| orc_util::marked::is_marked(r.next.load_raw()))
                {
                    continue 'retry; // right got marked under us
                }
                return SearchResult {
                    left,
                    left_next: left_next_word,
                    right,
                };
            }
            // 3. Snip the whole marked segment [left_next, right) with one
            //    CAS on left's link.
            if self.link_of(&left).cas_tagged(left_next_word, &right, 0) {
                if right
                    .as_ref()
                    .is_some_and(|r| orc_util::marked::is_marked(r.next.load_raw()))
                {
                    continue 'retry;
                }
                return SearchResult {
                    left,
                    left_next: unmark(right.raw()),
                    right,
                };
            }
        }
    }

    pub fn add(&self, key: K) -> bool {
        let node = make_orc(Node {
            key,
            next: OrcAtomic::null(),
        });
        loop {
            let w = self.search(&key);
            if w.right.as_ref().is_some_and(|r| r.key == key) {
                return false;
            }
            node.next.store_tagged(&w.right, 0);
            if self.link_of(&w.left).cas_tagged(w.left_next, &node, 0) {
                return true;
            }
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        loop {
            let w = self.search(key);
            let Some(rnode) = w.right.as_ref() else {
                return false;
            };
            if &rnode.key != key {
                return false;
            }
            let right_next = rnode.next.load();
            if right_next.is_marked() {
                continue;
            }
            // Logical delete.
            if !rnode
                .next
                .cas_tag_only(right_next.raw(), mark(right_next.raw()))
            {
                continue;
            }
            // Best-effort physical snip; otherwise the next search does it.
            if !self
                .link_of(&w.left)
                .cas_tagged(unmark(w.right.raw()), &right_next, 0)
            {
                let _ = self.search(key);
            }
            return true;
        }
    }

    pub fn contains(&self, key: &K) -> bool {
        let w = self.search(key);
        w.right.as_ref().is_some_and(|r| &r.key == key)
    }

    /// Unmarked-node count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load();
        while let Some(node) = curr.as_ref() {
            let next = node.next.load();
            if !next.is_marked() {
                n += 1;
            }
            curr = next;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for HarrisListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for HarrisListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        HarrisListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        HarrisListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        HarrisListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "HarrisList-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&HarrisListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&HarrisListOrc::new(), 11, 5_000);
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(HarrisListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(HarrisListOrc::new()), 4);
    }

    #[test]
    fn segment_snip_under_batch_removal() {
        // Build a long run of keys, mark-delete them all (logically), then
        // verify a single search snips the segment and the set is empty.
        let list = HarrisListOrc::new();
        for k in 0..128u64 {
            assert!(list.add(k));
        }
        for k in (0..128u64).rev() {
            assert!(list.remove(&k));
        }
        assert!(list.is_empty());
        for k in 0..128u64 {
            assert!(!list.contains(&k));
        }
    }

    #[test]
    fn no_leak_after_churn() {
        let live_before = orc_util::track::global().live_objects();
        {
            let list = HarrisListOrc::new();
            for round in 0..4 {
                for k in 0..200u64 {
                    list.add(k * 2 + round);
                }
                for k in 0..200u64 {
                    list.remove(&(k * 2 + round));
                }
            }
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        assert!(
            live_after - live_before < 64,
            "Harris list leaked nodes: {live_before} -> {live_after}"
        );
    }
}
