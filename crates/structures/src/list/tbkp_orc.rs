//! TBKP — the Timnat–Braginsky–Kogan–Petrank wait-free linked list
//! (PPoPP 2012) under OrcGC: a documented **reconstruction**.
//!
//! The original achieves wait-free `insert`/`delete` by announcing every
//! operation in a per-thread `state` array of descriptors and having all
//! threads help pending operations through the Timnat–Petrank normalized
//! form (phase numbers, per-node success bits, a three-step delete). The
//! full helping protocol is specified across the original paper and its
//! technical report; this reconstruction keeps what the *OrcGC evaluation*
//! depends on and simplifies the rest:
//!
//! * **kept** — wait-free `contains` (single pass, walks through marked
//!   and even already-unlinked nodes); per-operation descriptor objects
//!   announced in a shared `state` array (the allocation/reclamation
//!   pattern that makes TBKP hostile to manual schemes: descriptors and
//!   nodes acquire multiple incoming hard links released in
//!   interleaving-dependent order — OrcGC collects both kinds
//!   automatically); Harris-style marked links and physical snipping.
//! * **simplified** — `insert`/`remove` are executed lock-free by their
//!   owning thread (announce → execute → complete) instead of the
//!   normalized-form wait-free helping.
//!
//! DESIGN.md records this substitution; the benchmark role of the
//! structure (fourth list of Figures 5–6, descriptor-heavy) is preserved.

use crate::ConcurrentSet;
use orc_util::atomics::{AtomicU8, Ordering};
use orc_util::marked::{mark, unmark};
use orc_util::registry;
use orcgc::{make_orc, OrcAtomic, OrcPtr};

struct Node<K: Send + Sync> {
    key: K,
    next: OrcAtomic<Node<K>>,
}

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const PENDING: u8 = 2;
const SUCCESS: u8 = 3;
const FAILURE: u8 = 4;

/// Announced operation descriptor (reclaimed by OrcGC once superseded).
struct OpDesc<K: Send + Sync> {
    #[allow(dead_code)]
    op: u8,
    #[allow(dead_code)]
    key: K,
    outcome: AtomicU8,
    /// The node being inserted (insert ops); the hard link pins the node's
    /// lifetime to the announcement (never read back by this
    /// reconstruction, but part of the original's descriptor layout).
    #[allow(dead_code)]
    node: OrcAtomic<Node<K>>,
}

struct Window<K: Send + Sync> {
    found: bool,
    prev: OrcPtr<Node<K>>,
    curr: OrcPtr<Node<K>>,
}

/// TBKP wait-free-lookup list (reconstruction) with OrcGC.
pub struct TbkpListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
    state: Box<[OrcAtomic<OpDesc<K>>]>,
}

impl<K> TbkpListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        Self {
            head: OrcAtomic::null(),
            state: (0..registry::max_threads())
                .map(|_| OrcAtomic::null())
                .collect(),
        }
    }

    fn link_of<'a>(&'a self, node: &'a OrcPtr<Node<K>>) -> &'a OrcAtomic<Node<K>> {
        match node.as_ref() {
            None => &self.head,
            Some(n) => &n.next,
        }
    }

    fn find(&self, key: &K) -> Window<K> {
        'retry: loop {
            let mut prev: OrcPtr<Node<K>> = OrcPtr::null();
            let mut curr = self.head.load();
            loop {
                let Some(cnode) = curr.as_ref() else {
                    return Window {
                        found: false,
                        prev,
                        curr,
                    };
                };
                let next = cnode.next.load();
                if self.link_of(&prev).load_raw() != unmark(curr.raw()) {
                    continue 'retry;
                }
                if next.is_marked() {
                    if !self.link_of(&prev).cas_tagged(unmark(curr.raw()), &next, 0) {
                        continue 'retry;
                    }
                    curr = next;
                } else {
                    if &cnode.key >= key {
                        return Window {
                            found: &cnode.key == key,
                            prev,
                            curr,
                        };
                    }
                    prev = curr;
                    curr = next;
                }
            }
        }
    }

    /// Announce `desc` in our state slot; the previous descriptor loses its
    /// hard link and is collected once unreferenced.
    fn announce(&self, desc: &OrcPtr<OpDesc<K>>) {
        let tid = registry::tid();
        self.state[tid].store(desc);
    }

    fn complete(desc: &OrcPtr<OpDesc<K>>, ok: bool) {
        desc.outcome
            .store(if ok { SUCCESS } else { FAILURE }, Ordering::SeqCst);
    }

    pub fn add(&self, key: K) -> bool {
        let node = make_orc(Node {
            key,
            next: OrcAtomic::null(),
        });
        let desc = make_orc(OpDesc {
            op: OP_INSERT,
            key,
            outcome: AtomicU8::new(PENDING),
            node: OrcAtomic::new(&node),
        });
        self.announce(&desc);
        let ok = loop {
            let w = self.find(&key);
            if w.found {
                break false;
            }
            node.next.store_tagged(&w.curr, 0);
            if self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &node, 0)
            {
                break true;
            }
        };
        Self::complete(&desc, ok);
        ok
    }

    pub fn remove(&self, key: &K) -> bool {
        let desc = make_orc(OpDesc {
            op: OP_DELETE,
            key: *key,
            outcome: AtomicU8::new(PENDING),
            node: OrcAtomic::null(),
        });
        self.announce(&desc);
        let ok = loop {
            let w = self.find(key);
            if !w.found {
                break false;
            }
            let node = w.curr.as_ref().unwrap();
            let next = node.next.load();
            if next.is_marked() {
                continue;
            }
            if !node.next.cas_tag_only(next.raw(), mark(next.raw())) {
                continue;
            }
            if !self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &next, 0)
            {
                let _ = self.find(key);
            }
            break true;
        };
        Self::complete(&desc, ok);
        ok
    }

    /// Wait-free membership test (single pass, never restarts).
    pub fn contains(&self, key: &K) -> bool {
        let mut curr = self.head.load();
        loop {
            let Some(node) = curr.as_ref() else {
                return false;
            };
            if &node.key >= key {
                return &node.key == key && !orc_util::marked::is_marked(node.next.load_raw());
            }
            curr = node.next.load();
        }
    }

    /// Unmarked-node count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load();
        while let Some(node) = curr.as_ref() {
            let next = node.next.load();
            if !next.is_marked() {
                n += 1;
            }
            curr = next;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for TbkpListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for TbkpListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        TbkpListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        TbkpListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        TbkpListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "TBKPList-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&TbkpListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&TbkpListOrc::new(), 17, 5_000);
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(TbkpListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(TbkpListOrc::new()), 4);
    }

    #[test]
    fn descriptors_are_collected_not_accumulated() {
        let live_before = orc_util::track::global().live_objects();
        {
            let list = TbkpListOrc::new();
            // 2k ops => 2k descriptors; all but the last announcement per
            // thread must be collected.
            for k in 0..1_000u64 {
                list.add(k % 50);
                list.remove(&(k % 50));
            }
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        assert!(
            live_after - live_before < 64,
            "descriptors leaked: {live_before} -> {live_after}"
        );
    }
}
