//! Michael's list under OrcGC: identical algorithm to
//! [`MichaelList`](crate::list::MichaelList), with the paper's type
//! annotations instead of protect/retire calls. Unlinking a marked node is
//! just a CAS — the node's hard-link count drops to zero and OrcGC does
//! the rest.

use crate::ConcurrentSet;
use orc_util::marked::{mark, unmark};
use orcgc::{make_orc, OrcAtomic, OrcPtr};

pub(crate) struct Node<K: Send + Sync> {
    pub(crate) key: K,
    pub(crate) next: OrcAtomic<Node<K>>,
}

pub(crate) struct Window<K: Send + Sync> {
    pub(crate) found: bool,
    /// Node whose `next` links to `curr`; null guard = the list head.
    pub(crate) prev: OrcPtr<Node<K>>,
    pub(crate) curr: OrcPtr<Node<K>>,
}

/// Michael's lock-free ordered set with OrcGC annotations.
pub struct MichaelListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
}

impl<K> MichaelListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        Self {
            head: OrcAtomic::null(),
        }
    }

    fn link_of<'a>(&'a self, prev: &'a OrcPtr<Node<K>>) -> &'a OrcAtomic<Node<K>> {
        match prev.as_ref() {
            None => &self.head,
            Some(node) => &node.next,
        }
    }

    fn search(&self, key: &K) -> Window<K> {
        'retry: loop {
            let mut prev: OrcPtr<Node<K>> = OrcPtr::null();
            let mut curr = self.head.load();
            loop {
                let Some(cnode) = curr.as_ref() else {
                    return Window {
                        found: false,
                        prev,
                        curr,
                    };
                };
                let next = cnode.next.load();
                // Validate: prev must still link to curr, unmarked.
                if self.link_of(&prev).load_raw() != unmark(curr.raw()) {
                    continue 'retry;
                }
                if next.is_marked() {
                    // Unlink the logically deleted curr (tag bits cleared
                    // on the installed word).
                    if !self.link_of(&prev).cas_tagged(unmark(curr.raw()), &next, 0) {
                        continue 'retry;
                    }
                    curr = next;
                } else {
                    let nkey = &cnode.key;
                    if nkey >= key {
                        return Window {
                            found: nkey == key,
                            prev,
                            curr,
                        };
                    }
                    prev = curr;
                    curr = next;
                }
            }
        }
    }

    pub fn add(&self, key: K) -> bool {
        let node = make_orc(Node {
            key,
            next: OrcAtomic::null(),
        });
        loop {
            let w = self.search(&key);
            if w.found {
                return false; // node guard drops -> collected automatically
            }
            node.next.store_tagged(&w.curr, 0);
            if self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &node, 0)
            {
                return true;
            }
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        loop {
            let w = self.search(key);
            if !w.found {
                return false;
            }
            let node = w.curr.as_ref().unwrap();
            let next = node.next.load();
            if next.is_marked() {
                continue;
            }
            if !node.next.cas_tag_only(next.raw(), mark(next.raw())) {
                continue;
            }
            // Physical unlink; if it fails, a later search cleans up.
            if !self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &next, 0)
            {
                let _ = self.search(key);
            }
            return true;
        }
    }

    pub fn contains(&self, key: &K) -> bool {
        self.search(key).found
    }

    /// Unmarked-node count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load();
        while let Some(node) = curr.as_ref() {
            let next = node.next.load();
            if !next.is_marked() {
                n += 1;
            }
            curr = next;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for MichaelListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for MichaelListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        MichaelListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        MichaelListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        MichaelListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "MichaelList-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&MichaelListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&MichaelListOrc::new(), 7, 5_000);
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(MichaelListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(MichaelListOrc::new()), 4);
    }

    #[test]
    fn removed_nodes_are_collected() {
        let list = MichaelListOrc::new();
        let live_before = orc_util::track::global().live_objects();
        for k in 0..256u64 {
            assert!(list.add(k));
        }
        for k in 0..256u64 {
            assert!(list.remove(&k));
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        // Parallel tests add noise; the check is that ~256 nodes did not
        // accumulate.
        assert!(
            live_after - live_before < 64,
            "removed nodes leaked: {} -> {}",
            live_before,
            live_after
        );
        assert!(list.is_empty());
    }

    #[test]
    fn drop_collects_whole_list() {
        let live_before = orc_util::track::global().live_objects();
        {
            let list = MichaelListOrc::new();
            for k in 0..300u64 {
                list.add(k);
            }
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        assert!(
            live_after - live_before < 64,
            "list drop leaked nodes: {live_before} -> {live_after}"
        );
    }
}
