//! Herlihy–Shavit lock-free list with **wait-free lookups** under OrcGC.
//!
//! The Art of Multiprocessor Programming's `LockFreeList`: add/remove use
//! a Harris/Michael-style `find` that snips marked nodes, but `contains`
//! walks the list exactly once — never restarting, skipping marked nodes
//! by value — so it is wait-free. That guarantee requires that a node's
//! links stay meaningful *after* the node has been unlinked and (under a
//! manual scheme) retired: a lookup standing on a removed node keeps
//! following its `next`. The paper (§2, second obstacle) lists this as a
//! structure only B&C, FreeAccess and OrcGC can serve.

use crate::ConcurrentSet;
use orc_util::marked::{mark, unmark};
use orcgc::{make_orc, OrcAtomic, OrcPtr};

struct Node<K: Send + Sync> {
    key: K,
    next: OrcAtomic<Node<K>>,
}

struct Window<K: Send + Sync> {
    found: bool,
    prev: OrcPtr<Node<K>>,
    curr: OrcPtr<Node<K>>,
}

/// Herlihy–Shavit lock-free list (wait-free lookups) with OrcGC.
pub struct HsListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
}

impl<K> HsListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        Self {
            head: OrcAtomic::null(),
        }
    }

    fn link_of<'a>(&'a self, node: &'a OrcPtr<Node<K>>) -> &'a OrcAtomic<Node<K>> {
        match node.as_ref() {
            None => &self.head,
            Some(n) => &n.next,
        }
    }

    /// `find` (HS book): position on the first unmarked node ≥ key,
    /// physically removing marked nodes on the way.
    fn find(&self, key: &K) -> Window<K> {
        'retry: loop {
            let mut prev: OrcPtr<Node<K>> = OrcPtr::null();
            let mut curr = self.head.load();
            loop {
                let Some(cnode) = curr.as_ref() else {
                    return Window {
                        found: false,
                        prev,
                        curr,
                    };
                };
                let next = cnode.next.load();
                if self.link_of(&prev).load_raw() != unmark(curr.raw()) {
                    continue 'retry;
                }
                if next.is_marked() {
                    if !self.link_of(&prev).cas_tagged(unmark(curr.raw()), &next, 0) {
                        continue 'retry;
                    }
                    curr = next;
                } else {
                    if &cnode.key >= key {
                        return Window {
                            found: &cnode.key == key,
                            prev,
                            curr,
                        };
                    }
                    prev = curr;
                    curr = next;
                }
            }
        }
    }

    pub fn add(&self, key: K) -> bool {
        let node = make_orc(Node {
            key,
            next: OrcAtomic::null(),
        });
        loop {
            let w = self.find(&key);
            if w.found {
                return false;
            }
            node.next.store_tagged(&w.curr, 0);
            if self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &node, 0)
            {
                return true;
            }
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        loop {
            let w = self.find(key);
            if !w.found {
                return false;
            }
            let node = w.curr.as_ref().unwrap();
            let next = node.next.load();
            if next.is_marked() {
                continue;
            }
            if !node.next.cas_tag_only(next.raw(), mark(next.raw())) {
                continue;
            }
            if !self
                .link_of(&w.prev)
                .cas_tagged(unmark(w.curr.raw()), &next, 0)
            {
                // Leave physical removal to a later find().
            }
            return true;
        }
    }

    /// Wait-free membership test: one pass, no restarts, walking straight
    /// through marked — possibly already-unlinked — nodes.
    pub fn contains(&self, key: &K) -> bool {
        let mut curr = self.head.load();
        loop {
            let Some(node) = curr.as_ref() else {
                return false;
            };
            if &node.key >= key {
                return &node.key == key && !orc_util::marked::is_marked(node.next.load_raw());
            }
            curr = node.next.load();
        }
    }

    /// Unmarked-node count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load();
        while let Some(node) = curr.as_ref() {
            let next = node.next.load();
            if !next.is_marked() {
                n += 1;
            }
            curr = next;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for HsListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for HsListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        HsListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        HsListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        HsListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "HSList-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&HsListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&HsListOrc::new(), 13, 5_000);
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(HsListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(HsListOrc::new()), 4);
    }

    #[test]
    fn lookups_survive_concurrent_removal_of_their_position() {
        // Readers walk the full key range while writers delete and
        // re-insert everything; wait-free contains must never miss a key
        // that is stably present.
        let list = Arc::new(HsListOrc::new());
        let stable = 5_000u64; // never removed
        list.add(stable);
        for k in 0..200u64 {
            list.add(k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let list = list.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..200u64 {
                        list.remove(&k);
                    }
                    for k in 0..200u64 {
                        list.add(k);
                    }
                }
                orcgc::flush_thread();
            }));
        }
        for _ in 0..20_000 {
            assert!(list.contains(&stable), "stable key vanished from lookup");
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
    }
}
