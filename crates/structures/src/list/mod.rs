//! The linked-list sets of the paper's Figures 3–6.
//!
//! * [`MichaelList`] — Michael 2002, generic over the manual schemes
//!   (the structure of Figures 3–4: HP/PTB/PTP/HE/... comparison).
//! * [`MichaelListOrc`] — the same algorithm with OrcGC annotations.
//! * [`HarrisListOrc`] — Harris 2001 *original*: searches traverse marked
//!   (possibly already-retired) nodes and snip whole segments, which
//!   breaks under most manual schemes (paper §2, second obstacle).
//! * [`HsListOrc`] — Herlihy–Shavit variant with wait-free lookups that
//!   never restart; retired nodes' links must stay intact.
//! * [`TbkpListOrc`] — the Timnat–Braginsky–Kogan–Petrank wait-free list,
//!   reconstructed (see its module docs for the exact scope).

mod harris_orc;
mod hs_orc;
mod michael;
mod michael_orc;
mod tbkp_orc;

pub use harris_orc::HarrisListOrc;
pub use hs_orc::HsListOrc;
pub use michael::MichaelList;
pub use michael_orc::MichaelListOrc;
pub use tbkp_orc::TbkpListOrc;

/// Shared correctness tests run against every set implementation (lists,
/// trees and skip lists alike).
#[cfg(test)]
pub(crate) mod set_tests {
    use crate::ConcurrentSet;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    pub fn sequential_semantics<S: ConcurrentSet<u64>>(set: &S) {
        assert!(!set.contains(&5));
        assert!(set.add(5));
        assert!(!set.add(5), "duplicate add must fail");
        assert!(set.contains(&5));
        assert!(set.add(3));
        assert!(set.add(7));
        assert!(set.contains(&3));
        assert!(set.contains(&7));
        assert!(!set.contains(&4));
        assert!(set.remove(&5));
        assert!(!set.remove(&5), "double remove must fail");
        assert!(!set.contains(&5));
        assert!(set.contains(&3));
        assert!(set.add(5));
        assert!(set.contains(&5));
    }

    pub fn randomized_against_model<S: ConcurrentSet<u64>>(set: &S, seed: u64, ops: usize) {
        let mut model = BTreeSet::new();
        let mut rng = orc_util::rng::XorShift64::new(seed);
        for _ in 0..ops {
            let key = rng.next_bounded(64);
            match rng.next_bounded(3) {
                0 => assert_eq!(set.add(key), model.insert(key), "add({key})"),
                1 => assert_eq!(set.remove(&key), model.remove(&key), "remove({key})"),
                _ => assert_eq!(set.contains(&key), model.contains(&key), "contains({key})"),
            }
        }
        for key in 0..64 {
            assert_eq!(set.contains(&key), model.contains(&key), "final({key})");
        }
    }

    /// Each thread owns a disjoint key range; all operations on owned keys
    /// must behave as if sequential, while the shared structure is hammered.
    pub fn disjoint_key_stress<S: ConcurrentSet<u64> + 'static>(set: Arc<S>, threads: usize) {
        let per = 400u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = set.clone();
                std::thread::spawn(move || {
                    let base = t as u64 * per;
                    for round in 0..3 {
                        for k in base..base + per {
                            assert!(set.add(k), "round {round}: add({k})");
                        }
                        for k in base..base + per {
                            assert!(set.contains(&k), "round {round}: contains({k})");
                        }
                        for k in base..base + per {
                            assert!(set.remove(&k), "round {round}: remove({k})");
                        }
                        for k in base..base + per {
                            assert!(!set.contains(&k), "round {round}: gone({k})");
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Threads race on the SAME keys; add/remove return values must
    /// balance exactly per key.
    pub fn contended_key_stress<S: ConcurrentSet<u64> + 'static>(set: Arc<S>, threads: usize) {
        let keys = 16u64;
        let ops = 3_000;
        let adds = Arc::new(AtomicU64::new(0));
        let removes = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = set.clone();
                let adds = adds.clone();
                let removes = removes.clone();
                std::thread::spawn(move || {
                    let mut rng = orc_util::rng::XorShift64::for_thread(t, 99);
                    for _ in 0..ops {
                        let k = rng.next_bounded(keys);
                        if rng.next_bounded(2) == 0 {
                            if set.add(k) {
                                adds.fetch_add(1, Ordering::SeqCst);
                            }
                        } else if set.remove(&k) {
                            removes.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let residual = (0..keys).filter(|k| set.contains(k)).count() as u64;
        assert_eq!(
            adds.load(Ordering::SeqCst),
            removes.load(Ordering::SeqCst) + residual,
            "successful adds must equal successful removes plus residents"
        );
    }
}
