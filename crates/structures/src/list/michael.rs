//! Michael's lock-free list-based set (SPAA 2002), generic over the
//! manual reclamation schemes — the structure of the paper's Figures 3–4.
//!
//! This is the hazard-pointer-compatible reformulation of the Harris list:
//! searches *physically unlink* every marked node they pass (so a node is
//! retired as soon as it becomes unreachable, and traversals never walk
//! through retired nodes), using three hazard slots rotated in scan order:
//! slot 0 = next, slot 1 = curr, slot 2 = prev. Rotations only ever copy a
//! protection to a *higher* slot index, as pass-the-pointer requires.

use crate::ConcurrentSet;
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::marked::{is_marked, mark, unmark};
use reclaim::Smr;

struct Node<K> {
    key: K,
    /// Link word: pointer to the successor plus the Harris deletion mark.
    next: AtomicUsize,
}

/// Outcome of a search: whether the key was found, the address of the link
/// that points at `curr`, and `curr` itself (word form).
struct Window {
    found: bool,
    prev: *const AtomicUsize,
    curr: usize,
}

/// Michael's lock-free ordered set under any [`Smr`] scheme.
pub struct MichaelList<K, S: Smr> {
    head: AtomicUsize,
    smr: S,
    _pd: std::marker::PhantomData<K>,
}

unsafe impl<K: Send, S: Smr> Send for MichaelList<K, S> {}
unsafe impl<K: Send + Sync, S: Smr> Sync for MichaelList<K, S> {}

impl<K, S> MichaelList<K, S>
where
    K: Ord + Copy + Send + Sync + 'static,
    S: Smr,
{
    pub fn new(smr: S) -> Self {
        Self {
            head: AtomicUsize::new(0),
            smr,
            _pd: std::marker::PhantomData,
        }
    }

    pub fn smr(&self) -> &S {
        &self.smr
    }

    /// Michael's `find`: positions on the first node with `node.key >= key`,
    /// unlinking (and retiring) every marked node encountered. Leaves
    /// protections: slot 1 on `curr`, slot 2 on the node holding `prev`.
    fn search(&self, key: &K) -> Window {
        'retry: loop {
            let mut prev: *const AtomicUsize = &self.head;
            let mut curr = self.smr.protect(1, unsafe { &*prev });
            debug_assert!(!is_marked(curr));
            loop {
                if curr == 0 {
                    return Window {
                        found: false,
                        prev,
                        curr,
                    };
                }
                let node = curr as *const Node<K>;
                let next = self.smr.protect(0, unsafe { &(*node).next });
                // Validate that prev still links to curr, unmarked.
                if unsafe { &*prev }.load(Ordering::SeqCst) != curr {
                    continue 'retry;
                }
                if is_marked(next) {
                    // curr is logically deleted: unlink it here and now.
                    if unsafe { &*prev }
                        .compare_exchange(curr, unmark(next), Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    unsafe { self.smr.retire(curr as *mut Node<K>) };
                    curr = unmark(next);
                    // The new curr is protected by slot 0; move it up.
                    self.smr.publish(1, curr);
                } else {
                    let nkey = unsafe { &(*node).key };
                    if nkey >= key {
                        return Window {
                            found: nkey == key,
                            prev,
                            curr,
                        };
                    }
                    // Advance: rotate protections upward (0 -> 1 -> 2).
                    self.smr.publish(2, curr);
                    prev = unsafe { &(*node).next };
                    curr = next;
                    self.smr.publish(1, curr);
                }
            }
        }
    }

    pub fn add(&self, key: K) -> bool {
        let node = self.smr.alloc(Node {
            key,
            next: AtomicUsize::new(0),
        });
        self.smr.begin_op();
        let inserted = loop {
            let w = self.search(&key);
            if w.found {
                // Never shared: free immediately.
                unsafe { self.smr.dealloc_now(node) };
                break false;
            }
            unsafe { (*node).next.store(w.curr, Ordering::Relaxed) };
            if unsafe { &*w.prev }
                .compare_exchange(w.curr, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break true;
            }
        };
        self.smr.end_op();
        inserted
    }

    pub fn remove(&self, key: &K) -> bool {
        self.smr.begin_op();
        let removed = loop {
            let w = self.search(key);
            if !w.found {
                break false;
            }
            let node = w.curr as *const Node<K>;
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if is_marked(next) {
                continue; // concurrently deleted; settle who wins via search
            }
            // Logical deletion: mark the next pointer.
            if unsafe { &(*node).next }
                .compare_exchange(next, mark(next), Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            // Physical unlink; on failure a future search will do it.
            if unsafe { &*w.prev }
                .compare_exchange(w.curr, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                unsafe { self.smr.retire(w.curr as *mut Node<K>) };
            } else {
                let _ = self.search(key);
            }
            break true;
        };
        self.smr.end_op();
        removed
    }

    pub fn contains(&self, key: &K) -> bool {
        self.smr.begin_op();
        let found = self.search(key).found;
        self.smr.end_op();
        found
    }

    /// Number of (unmarked) nodes; quiescent callers only (tests/benches).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut p = self.head.load(Ordering::SeqCst);
        while p != 0 {
            let node = unmark(p) as *const Node<K>;
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if !is_marked(next) {
                n += 1;
            }
            p = unmark(next);
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, S: Smr> Drop for MichaelList<K, S> {
    fn drop(&mut self) {
        let mut p = unmark(*self.head.get_mut());
        while p != 0 {
            let node = p as *mut Node<K>;
            let next = unsafe { (*node).next.load(Ordering::Relaxed) };
            unsafe { self.smr.dealloc_now(node) };
            p = unmark(next);
        }
    }
}

impl<S: Smr> crate::traits::SmrSet<S> for MichaelList<u64, S> {
    fn with_smr(smr: S) -> Self {
        MichaelList::new(smr)
    }

    fn smr(&self) -> &S {
        MichaelList::smr(self)
    }
}

impl<K, S> ConcurrentSet<K> for MichaelList<K, S>
where
    K: Ord + Copy + Send + Sync + 'static,
    S: Smr,
{
    fn add(&self, key: K) -> bool {
        MichaelList::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        MichaelList::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        MichaelList::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "MichaelList"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use reclaim::SchemeKind;
    use std::sync::Arc;

    #[test]
    fn semantics_under_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::sequential_semantics(&MichaelList::new(kind.build()));
        }
    }

    #[test]
    fn randomized_model_check() {
        for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
            set_tests::randomized_against_model(
                &MichaelList::new(kind.build()),
                42 + i as u64,
                4_000,
            );
        }
    }

    #[test]
    fn disjoint_stress_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::disjoint_key_stress(Arc::new(MichaelList::new(kind.build())), 4);
        }
    }

    #[test]
    fn contended_stress_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::contended_key_stress(Arc::new(MichaelList::new(kind.build())), 4);
        }
    }

    #[test]
    fn reclamation_happens_during_run() {
        let list = MichaelList::new(SchemeKind::Hp.build_with_threshold(8));
        for k in 0..512u64 {
            assert!(list.add(k));
        }
        for k in 0..512u64 {
            assert!(list.remove(&k));
        }
        list.smr().flush();
        assert_eq!(
            list.smr().unreclaimed(),
            0,
            "quiescent flush must reclaim every removed node"
        );
        assert!(list.is_empty());
    }
}
