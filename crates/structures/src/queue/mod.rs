//! The four queues of the paper's Figures 1–2.
//!
//! * [`MsQueue`] / [`MsQueueOrc`] — Michael & Scott 1996; the manual
//!   variant is the classic hazard-pointer deployment, the Orc variant is
//!   the paper's Algorithm 1 verbatim.
//! * [`LcrqOrc`] — Morrison & Afek 2013: ring segments updated with DWCAS,
//!   segments reclaimed by OrcGC.
//! * [`KpQueueOrc`] — Kogan & Petrank 2011 wait-free queue. Its helping
//!   descriptors and interleaving-dependent unlinking make it incompatible
//!   with the manual schemes (paper §2, first obstacle) — OrcGC reclaims
//!   both nodes and descriptors automatically.
//! * [`TurnQueueOrc`] — the Correia–Ramalhete wait-free "turn" queue,
//!   reconstructed from its published description (see module docs).

mod kpqueue;
mod lcrq;
mod msqueue;
mod msqueue_orc;
mod turnqueue;

pub use kpqueue::KpQueueOrc;
pub use lcrq::LcrqOrc;
pub use msqueue::MsQueue;
pub use msqueue_orc::MsQueueOrc;
pub use turnqueue::TurnQueueOrc;
