//! LCRQ (Morrison & Afek, PPoPP 2013) with OrcGC segment reclamation.
//!
//! A linked list of *concurrent ring queues* (CRQs). Within a ring,
//! enqueue/dequeue are a fetch-and-add on the tail/head index plus a
//! double-word CAS on the indexed cell, which stores the pair
//! *(cell index, value)*; the `unsafe` bit in the index halve protects
//! against late enqueuers after a dequeuer has passed the cell. A ring
//! that fills (or starves) is *closed* and a fresh ring is appended
//! MS-queue style — and ring segments are exactly the allocation OrcGC
//! reclaims: `next` is an `OrcAtomic<Crq>`, head/tail ring pointers are
//! `OrcAtomic` roots, and no retire call exists anywhere.
//!
//! Values are `u64` with `u64::MAX` reserved as the EMPTY sentinel, as in
//! the original (which transfers pointers; the paper's benchmark transfers
//! `T*` tokens the same way).

use crate::ConcurrentQueue;
use orc_util::atomics::{AtomicU64, Ordering};
use orc_util::dwcas::{pack, unpack, AtomicU128};
use orc_util::CachePadded;
use orcgc::{make_orc, OrcAtomic};

/// Ring capacity (cells per segment). The original evaluates with 2¹⁷;
/// we default smaller so memory-bound tests stay reasonable.
pub const RING_SIZE: usize = 1024;

/// Reserved "no value" marker.
const EMPTY: u64 = u64::MAX;
/// Closed bit on the ring's tail counter.
const CLOSED: u64 = 1 << 63;
/// Unsafe bit on a cell's index half.
const UNSAFE: u64 = 1 << 63;

struct Crq {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    next: OrcAtomic<Crq>,
    cells: Box<[AtomicU128]>,
}

enum RingEnq {
    Ok,
    Closed,
}

impl Crq {
    /// A fresh ring, optionally pre-seeded with one value (the value that
    /// caused the previous ring to close).
    fn new(first: Option<u64>) -> Self {
        let cells: Box<[AtomicU128]> = (0..RING_SIZE)
            .map(|i| AtomicU128::new(pack(EMPTY, i as u64)))
            .collect();
        let tail = match first {
            Some(v) => {
                cells[0].store(pack(v, 0));
                1
            }
            None => 0,
        };
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(tail)),
            next: OrcAtomic::null(),
            cells,
        }
    }

    #[inline]
    fn cell(&self, i: u64) -> &AtomicU128 {
        &self.cells[(i % RING_SIZE as u64) as usize]
    }

    fn enqueue(&self, x: u64) -> RingEnq {
        debug_assert_ne!(x, EMPTY);
        let mut tries = 0u32;
        loop {
            let t_raw = self.tail.fetch_add(1, Ordering::SeqCst);
            if t_raw & CLOSED != 0 {
                return RingEnq::Closed;
            }
            let t = t_raw;
            let cell = self.cell(t);
            let cur = cell.load();
            let (val, idx) = unpack(cur);
            let is_safe = idx & UNSAFE == 0;
            let i = idx & !UNSAFE;
            if val == EMPTY
                && i <= t
                && (is_safe || self.head.load(Ordering::SeqCst) <= t)
                && cell.compare_exchange(cur, pack(x, t)).1
            {
                return RingEnq::Ok;
            }
            // Cell unusable: check fullness / starvation and maybe close.
            let h = self.head.load(Ordering::SeqCst);
            tries += 1;
            if t.wrapping_sub(h) >= RING_SIZE as u64 || tries > 4 * RING_SIZE as u32 {
                self.tail.fetch_or(CLOSED, Ordering::SeqCst);
                return RingEnq::Closed;
            }
        }
    }

    fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.fetch_add(1, Ordering::SeqCst);
            let cell = self.cell(h);
            loop {
                let cur = cell.load();
                let (val, idx) = unpack(cur);
                let safe_bit = idx & UNSAFE;
                let i = idx & !UNSAFE;
                if i > h {
                    break; // cell already recycled past our index
                }
                if val != EMPTY {
                    if i == h {
                        // Our value: consume and advance the cell a lap.
                        if cell
                            .compare_exchange(cur, pack(EMPTY, h + RING_SIZE as u64))
                            .1
                        {
                            return Some(val);
                        }
                    } else {
                        // A value from an old lap: mark unsafe so its
                        // (late) dequeuer doesn't consume a future value.
                        if cell.compare_exchange(cur, pack(val, i | UNSAFE)).1 {
                            break;
                        }
                    }
                } else {
                    // Empty: advance the cell a lap (keeping its safety).
                    if cell
                        .compare_exchange(cur, pack(EMPTY, safe_bit | (h + RING_SIZE as u64)))
                        .1
                    {
                        break;
                    }
                }
            }
            // Is the ring (transiently) empty?
            let t = self.tail.load(Ordering::SeqCst) & !CLOSED;
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// After an over-run (head passed tail), push tail up so subsequent
    /// enqueues see consistent indices.
    fn fix_state(&self) {
        loop {
            let t = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if self.tail.load(Ordering::SeqCst) != t {
                continue;
            }
            if h <= (t & !CLOSED) {
                return;
            }
            if self
                .tail
                .compare_exchange(t, (t & CLOSED) | h, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// LCRQ: MS-queue of CRQ ring segments, reclaimed by OrcGC.
pub struct LcrqOrc {
    head: OrcAtomic<Crq>,
    tail: OrcAtomic<Crq>,
}

impl LcrqOrc {
    pub fn new() -> Self {
        let first = make_orc(Crq::new(None));
        Self {
            head: OrcAtomic::new(&first),
            tail: OrcAtomic::new(&first),
        }
    }

    pub fn enqueue(&self, x: u64) {
        loop {
            let ltail = self.tail.load();
            let lnext = ltail.next.load();
            if !lnext.is_null() {
                self.tail.cas(&ltail, &lnext);
                continue;
            }
            if matches!(ltail.enqueue(x), RingEnq::Ok) {
                return;
            }
            // Ring closed: append a fresh ring seeded with x.
            let fresh = make_orc(Crq::new(Some(x)));
            let null = orcgc::OrcPtr::null();
            if ltail.next.cas(&null, &fresh) {
                self.tail.cas(&ltail, &fresh);
                return;
            }
        }
    }

    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let lhead = self.head.load();
            if let Some(v) = lhead.dequeue() {
                return Some(v);
            }
            let lnext = lhead.next.load();
            if lnext.is_null() {
                return None;
            }
            // Drain race: the ring may have received values between our
            // failed dequeue and the next-pointer read.
            if let Some(v) = lhead.dequeue() {
                return Some(v);
            }
            // Ring exhausted and closed: unlink it. OrcGC collects the
            // segment once the last reader's guard drops.
            self.head.cas(&lhead, &lnext);
        }
    }
}

impl Default for LcrqOrc {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue<u64> for LcrqOrc {
    fn enqueue(&self, item: u64) {
        LcrqOrc::enqueue(self, item)
    }

    fn dequeue(&self) -> Option<u64> {
        LcrqOrc::dequeue(self)
    }

    fn name(&self) -> &'static str {
        "LCRQ-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdU64;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_ring() {
        let q = LcrqOrc::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_across_ring_boundaries() {
        let q = LcrqOrc::new();
        let n = RING_SIZE as u64 * 3 + 17;
        for i in 0..n {
            q.enqueue(i);
        }
        for i in 0..n {
            assert_eq!(q.dequeue(), Some(i), "at index {i}");
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn alternating_never_grows_rings() {
        let q = LcrqOrc::new();
        for i in 0..(RING_SIZE as u64 * 8) {
            q.enqueue(i);
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_counts_and_sum() {
        let q = Arc::new(LcrqOrc::new());
        let producers = 2;
        let consumers = 2;
        let per = 20_000u64;
        let expected: u64 = (0..producers as u64 * per).sum();
        let sum = Arc::new(StdU64::new(0));
        let got = Arc::new(StdU64::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p as u64 * per + i);
                }
                orcgc::flush_thread();
            }));
        }
        for _ in 0..consumers {
            let q = q.clone();
            let sum = sum.clone();
            let got = got.clone();
            handles.push(std::thread::spawn(move || {
                let want = producers as u64 * per;
                while got.load(Ordering::SeqCst) < want {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                orcgc::flush_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn segment_count_stays_bounded() {
        // Run enq/deq pairs long enough to cycle rings; live segments must
        // be reclaimed (roughly: live objects don't grow with ops).
        let q = LcrqOrc::new();
        let before = orc_util::track::global().live_objects();
        for round in 0..4 {
            for i in 0..(RING_SIZE as u64 * 2) {
                q.enqueue(round * 1_000_000 + i);
            }
            while q.dequeue().is_some() {}
        }
        orcgc::flush_thread();
        let after = orc_util::track::global().live_objects();
        // Other tests run concurrently; allow slack, but 8 rings of growth
        // would exceed it if segments leaked.
        assert!(
            after - before < 2_000,
            "live objects grew by {} — ring segments are leaking",
            after - before
        );
    }
}
