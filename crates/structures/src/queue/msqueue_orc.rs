//! Michael–Scott queue with OrcGC — the paper's Algorithm 1, line for
//! line. No retire, no protect: the annotations (`make_orc`, `OrcAtomic`,
//! `OrcPtr`) are the entire integration.

use crate::ConcurrentQueue;
use orcgc::{make_orc, OrcAtomic, OrcPtr};
use std::cell::UnsafeCell;

struct Node<T> {
    item: UnsafeCell<Option<T>>,
    next: OrcAtomic<Node<T>>,
}

unsafe impl<T: Send> Sync for Node<T> {}
unsafe impl<T: Send> Send for Node<T> {}

impl<T: Send> Node<T> {
    fn new(item: Option<T>) -> Self {
        Self {
            item: UnsafeCell::new(item),
            next: OrcAtomic::null(),
        }
    }
}

/// Michael–Scott MPMC queue under OrcGC (paper Algorithm 1).
pub struct MsQueueOrc<T: Send + Sync> {
    head: OrcAtomic<Node<T>>,
    tail: OrcAtomic<Node<T>>,
}

impl<T: Send + Sync> MsQueueOrc<T> {
    pub fn new() -> Self {
        let sentinel = make_orc(Node::new(None));
        Self {
            head: OrcAtomic::new(&sentinel),
            tail: OrcAtomic::new(&sentinel),
        }
    }

    pub fn enqueue(&self, item: T) {
        let new_node = make_orc(Node::new(Some(item)));
        loop {
            let ltail = self.tail.load();
            let lnext = ltail.next.load();
            if lnext.is_null() {
                if ltail.next.cas(&lnext, &new_node) {
                    self.tail.cas(&ltail, &new_node);
                    return;
                }
            } else {
                self.tail.cas(&ltail, &lnext);
            }
        }
    }

    pub fn dequeue(&self) -> Option<T> {
        let mut node: OrcPtr<Node<T>> = self.head.load();
        while node != self.tail.load() {
            let lnext = node.next.load();
            if lnext.is_null() {
                // Tail is lagging behind a half-finished enqueue; retry.
                node = self.head.load();
                continue;
            }
            if self.head.cas(&node, &lnext) {
                // `lnext` is the new sentinel; its item is ours exclusively
                // (we won the head CAS) and it stays protected by the guard.
                return unsafe { (*lnext.item.get()).take() };
            }
            node = self.head.load();
        }
        None
    }
}

impl<T: Send + Sync> Default for MsQueueOrc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> ConcurrentQueue<T> for MsQueueOrc<T> {
    fn enqueue(&self, item: T) {
        MsQueueOrc::enqueue(self, item)
    }

    fn dequeue(&self) -> Option<T> {
        MsQueueOrc::dequeue(self)
    }

    fn name(&self) -> &'static str {
        "MSQueue-OrcGC"
    }
}

// No Drop impl: dropping `head`/`tail` un-counts the sentinel, which
// cascades down the remaining chain automatically — the whole point.

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = MsQueueOrc::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..1000 {
            q.enqueue(i);
        }
        for i in 0..1000 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_enq_deq() {
        let q = MsQueueOrc::new();
        for round in 0..50 {
            q.enqueue(round * 2);
            q.enqueue(round * 2 + 1);
            assert_eq!(q.dequeue(), Some(round * 2));
            assert_eq!(q.dequeue(), Some(round * 2 + 1));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_reclaims_residual_chain() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = MsQueueOrc::new();
            for _ in 0..100 {
                q.enqueue(Probe(drops.clone()));
            }
            for _ in 0..30 {
                let _ = q.dequeue();
            }
        }
        orcgc::flush_thread();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            100,
            "all items (dequeued + residual) must drop exactly once"
        );
    }

    #[test]
    fn mpmc_stress_no_loss_no_dup() {
        let q = Arc::new(MsQueueOrc::new());
        let producers = 2;
        let consumers = 2;
        let per = 10_000u64;
        let expected: u64 = (0..producers as u64 * per).sum();
        let sum = Arc::new(AtomicU64::new(0));
        let got = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p as u64 * per + i);
                }
                orcgc::flush_thread();
            }));
        }
        for _ in 0..consumers {
            let q = q.clone();
            let sum = sum.clone();
            let got = got.clone();
            handles.push(std::thread::spawn(move || {
                let want = producers as u64 * per;
                while got.load(Ordering::SeqCst) < want {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                orcgc::flush_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_thread_fifo_is_preserved() {
        // With a single producer, even many consumers must observe the
        // producer's order: each consumed value per producer is increasing.
        let q = Arc::new(MsQueueOrc::new());
        let n = 20_000u64;
        let q2 = q.clone();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                q2.enqueue(i);
            }
        });
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        match q.dequeue() {
                            Some(v) => seen.push(v),
                            None => {
                                if done.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        producer.join().unwrap();
        done.store(true, Ordering::SeqCst);
        for c in consumers {
            let seen = c.join().unwrap();
            assert!(
                seen.windows(2).all(|w| w[0] < w[1]),
                "single-producer order violated within a consumer"
            );
        }
    }
}
