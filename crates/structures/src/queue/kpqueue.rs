//! Kogan–Petrank wait-free MPMC queue (PPoPP 2011) under OrcGC.
//!
//! Every operation announces an `OpDesc` in a per-thread `state` array and
//! helps all operations with lower-or-equal phase numbers, making both
//! `enqueue` and `dequeue` wait-free. The queue is the paper's flagship
//! example of §2's *first obstacle*: descriptors and nodes acquire multiple
//! incoming references that are unlinked in interleaving-dependent order,
//! so no manual scheme can place a `retire` call — the original publication
//! ran without any reclamation. With OrcGC, both the nodes *and the helping
//! descriptors* are collected automatically: `state` entries are
//! `OrcAtomic<OpDesc>`, descriptors hold their node through an inner
//! `OrcAtomic`, and superseded descriptors vanish when their last hard link
//! is replaced.

use crate::ConcurrentQueue;
use orc_util::atomics::{AtomicI64, Ordering};
use orc_util::registry;
use orcgc::{make_orc, OrcAtomic};
use std::cell::UnsafeCell;

struct Node<T> {
    item: UnsafeCell<Option<T>>,
    next: OrcAtomic<Node<T>>,
    enq_tid: i64,
    deq_tid: AtomicI64,
}

unsafe impl<T: Send> Sync for Node<T> {}
unsafe impl<T: Send> Send for Node<T> {}

impl<T: Send> Node<T> {
    fn new(item: Option<T>, enq_tid: i64) -> Self {
        Self {
            item: UnsafeCell::new(item),
            next: OrcAtomic::null(),
            enq_tid,
            deq_tid: AtomicI64::new(-1),
        }
    }
}

struct OpDesc<T: Send + Sync> {
    phase: u64,
    pending: bool,
    enqueue: bool,
    node: OrcAtomic<Node<T>>,
}

/// Kogan–Petrank wait-free queue with OrcGC reclamation.
pub struct KpQueueOrc<T: Send + Sync> {
    head: OrcAtomic<Node<T>>,
    tail: OrcAtomic<Node<T>>,
    state: Box<[OrcAtomic<OpDesc<T>>]>,
}

impl<T: Send + Sync> KpQueueOrc<T> {
    pub fn new() -> Self {
        let sentinel = make_orc(Node::new(None, -1));
        let state = (0..registry::max_threads())
            .map(|_| {
                let desc = make_orc(OpDesc {
                    phase: 0,
                    pending: false,
                    enqueue: true,
                    node: OrcAtomic::null(),
                });
                OrcAtomic::new(&desc)
            })
            .collect();
        Self {
            head: OrcAtomic::new(&sentinel),
            tail: OrcAtomic::new(&sentinel),
            state,
        }
    }

    fn max_phase(&self) -> u64 {
        let mut max = 0;
        let wm = registry::registered_watermark();
        for s in self.state.iter().take(wm) {
            let d = s.load();
            if let Some(d) = d.as_ref() {
                max = max.max(d.phase);
            }
        }
        max
    }

    fn is_still_pending(&self, i: usize, phase: u64) -> bool {
        let d = self.state[i].load();
        d.as_ref().is_some_and(|d| d.pending && d.phase <= phase)
    }

    fn help(&self, phase: u64) {
        let wm = registry::registered_watermark();
        for i in 0..wm.min(self.state.len()) {
            let desc = self.state[i].load();
            let Some(d) = desc.as_ref() else { continue };
            if d.pending && d.phase <= phase {
                if d.enqueue {
                    self.help_enq(i, phase);
                } else {
                    self.help_deq(i, phase);
                }
            }
        }
    }

    pub fn enqueue(&self, item: T) {
        let tid = registry::tid();
        let phase = self.max_phase() + 1;
        let node = make_orc(Node::new(Some(item), tid as i64));
        let desc = make_orc(OpDesc {
            phase,
            pending: true,
            enqueue: true,
            node: OrcAtomic::new(&node),
        });
        self.state[tid].store(&desc);
        self.help(phase);
        self.help_finish_enq();
    }

    fn help_enq(&self, i: usize, phase: u64) {
        while self.is_still_pending(i, phase) {
            let last = self.tail.load();
            let next = last.next.load();
            if last.raw() != self.tail.load_raw() {
                continue;
            }
            if next.is_null() {
                if self.is_still_pending(i, phase) {
                    let desc = self.state[i].load();
                    let Some(d) = desc.as_ref() else { continue };
                    let node = d.node.load();
                    if node.is_null() {
                        continue;
                    }
                    if last.next.cas(&next, &node) {
                        self.help_finish_enq();
                        return;
                    }
                }
            } else {
                self.help_finish_enq();
            }
        }
    }

    fn help_finish_enq(&self) {
        let last = self.tail.load();
        let next = last.next.load();
        if next.is_null() {
            return;
        }
        let enq_tid = next.enq_tid;
        if enq_tid >= 0 {
            let enq_tid = enq_tid as usize;
            let cur = self.state[enq_tid].load();
            if last.raw() == self.tail.load_raw()
                && cur
                    .as_ref()
                    .is_some_and(|d| d.node.load_raw() == next.raw())
            {
                let d = cur.as_ref().unwrap();
                let new_desc = make_orc(OpDesc {
                    phase: d.phase,
                    pending: false,
                    enqueue: true,
                    node: OrcAtomic::new(&next),
                });
                // Clear pending BEFORE advancing the tail: helpers re-read
                // pending after reading the tail, so no node is linked
                // twice.
                self.state[enq_tid].cas(&cur, &new_desc);
                self.tail.cas(&last, &next);
            }
        } else {
            // Sentinel (enq_tid = -1) can only be `next` transiently via
            // re-insertion races that cannot occur here; still, advance.
            self.tail.cas(&last, &next);
        }
    }

    pub fn dequeue(&self) -> Option<T> {
        let tid = registry::tid();
        let phase = self.max_phase() + 1;
        let desc = make_orc(OpDesc {
            phase,
            pending: true,
            enqueue: false,
            node: OrcAtomic::null(),
        });
        self.state[tid].store(&desc);
        self.help(phase);
        self.help_finish_deq();
        // Extract the result from our (now completed) descriptor.
        let d = self.state[tid].load();
        let d = d.as_ref().expect("own descriptor vanished");
        let node = d.node.load();
        if node.is_null() {
            return None; // linearized on empty
        }
        // `node` is the old sentinel we dequeued; the value travels in its
        // successor (which became the new sentinel). Exclusive take: we are
        // the unique thread whose descriptor owns `node`.
        let next = node.next.load();
        let item = unsafe { (*next.item.get()).take() };
        debug_assert!(item.is_some(), "dequeued item taken twice");
        item
    }

    fn help_deq(&self, i: usize, phase: u64) {
        while self.is_still_pending(i, phase) {
            let first = self.head.load();
            let last = self.tail.load();
            let next = first.next.load();
            if first.raw() != self.head.load_raw() {
                continue;
            }
            if first.raw() == last.raw() {
                if next.is_null() {
                    // Empty queue: complete i with a null node.
                    let cur = self.state[i].load();
                    let Some(d) = cur.as_ref() else { continue };
                    if last.raw() == self.tail.load_raw() && self.is_still_pending(i, phase) {
                        let new_desc = make_orc(OpDesc {
                            phase: d.phase,
                            pending: false,
                            enqueue: false,
                            node: OrcAtomic::null(),
                        });
                        self.state[i].cas(&cur, &new_desc);
                    }
                } else {
                    // Tail lagging behind an in-flight enqueue: help it.
                    self.help_finish_enq();
                }
            } else {
                let cur = self.state[i].load();
                let Some(d) = cur.as_ref() else { continue };
                if !self.is_still_pending(i, phase) {
                    break;
                }
                if first.raw() == self.head.load_raw() && d.node.load_raw() != first.raw() {
                    let new_desc = make_orc(OpDesc {
                        phase: d.phase,
                        pending: true,
                        enqueue: false,
                        node: OrcAtomic::new(&first),
                    });
                    if !self.state[i].cas(&cur, &new_desc) {
                        continue;
                    }
                }
                let _ = first.deq_tid.compare_exchange(
                    -1,
                    i as i64,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                self.help_finish_deq();
            }
        }
    }

    fn help_finish_deq(&self) {
        let first = self.head.load();
        let next = first.next.load();
        let deq_tid = first.deq_tid.load(Ordering::SeqCst);
        if deq_tid < 0 {
            return;
        }
        let deq_tid = deq_tid as usize;
        let cur = self.state[deq_tid].load();
        if first.raw() == self.head.load_raw() && !next.is_null() {
            let Some(d) = cur.as_ref() else { return };
            let node = d.node.load();
            let new_desc = make_orc(OpDesc {
                phase: d.phase,
                pending: false,
                enqueue: false,
                node: if node.is_null() {
                    OrcAtomic::null()
                } else {
                    OrcAtomic::new(&node)
                },
            });
            // Complete the op BEFORE swinging the head (same discipline as
            // the enqueue side).
            self.state[deq_tid].cas(&cur, &new_desc);
            self.head.cas(&first, &next);
        }
    }
}

impl<T: Send + Sync> Default for KpQueueOrc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> ConcurrentQueue<T> for KpQueueOrc<T> {
    fn enqueue(&self, item: T) {
        KpQueueOrc::enqueue(self, item)
    }

    fn dequeue(&self) -> Option<T> {
        KpQueueOrc::dequeue(self)
    }

    fn name(&self) -> &'static str {
        "KPQueue-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = KpQueueOrc::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..500 {
            q.enqueue(i);
        }
        for i in 0..500 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_dequeues_between_phases() {
        let q = KpQueueOrc::new();
        for round in 0..20 {
            assert_eq!(q.dequeue(), None);
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round));
        }
    }

    #[test]
    fn mpmc_stress_no_loss_no_dup() {
        let q = Arc::new(KpQueueOrc::new());
        let producers = 2;
        let consumers = 2;
        let per = 3_000u64;
        let expected: u64 = (0..producers as u64 * per).sum();
        let sum = Arc::new(AtomicU64::new(0));
        let got = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p as u64 * per + i);
                }
                orcgc::flush_thread();
            }));
        }
        for _ in 0..consumers {
            let q = q.clone();
            let sum = sum.clone();
            let got = got.clone();
            handles.push(std::thread::spawn(move || {
                let want = producers as u64 * per;
                while got.load(Ordering::SeqCst) < want {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                orcgc::flush_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mixed_roles_stress() {
        // Every thread both enqueues and dequeues; totals must balance.
        let q = Arc::new(KpQueueOrc::new());
        let threads = 4;
        let per = 2_000u64;
        let deqd = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = q.clone();
                let deqd = deqd.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.enqueue(t as u64 * per + i);
                        if i % 2 == 0 && q.dequeue().is_some() {
                            deqd.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut rest = 0;
        while q.dequeue().is_some() {
            rest += 1;
        }
        assert_eq!(deqd.load(Ordering::SeqCst) + rest, threads as u64 * per);
    }
}
