//! TurnQueue — wait-free MPMC queue with turn-based helping, under OrcGC.
//!
//! A reconstruction of the Correia–Ramalhete wait-free queue
//! ("A Wait-Free Queue with Wait-Free Memory Reclamation", PPoPP '17
//! poster — reference [26] of the OrcGC paper). The full algorithm was
//! published only as a poster; this implementation rebuilds it from the
//! published description around its central idea — *turns*: helpers
//! deterministically pick the next announced request to serve in
//! round-robin order keyed to the node currently at the tail (head), so
//! every request is served within `maxThreads` queue transitions and both
//! operations are wait-free without Kogan–Petrank-style phase scans.
//!
//! Completion uses the proven complete-before-advance discipline:
//!
//! * **Enqueue** requests are published nodes in `enqueuers[tid]`; a
//!   request is cleared (CAS to null) *before* the tail advances past its
//!   node, and helpers re-read request slots *after* reading the tail —
//!   together this makes double-linking impossible.
//! * **Dequeue** requests are descriptors in `dequeuers[tid]`; a helper
//!   provisionally installs the observed sentinel into the descriptor
//!   (CAS), *then* stamps the sentinel with the request's tid, then
//!   completes the stamped winner before swinging the head — the
//!   Kogan–Petrank completion order, which closes the race between an
//!   "empty" verdict and a concurrent assignment.
//!
//! Like the KP queue, nodes and descriptors acquire references that are
//! unlinked in interleaving-dependent order — the reason the original
//! pairs this queue with wait-free reclamation and the OrcGC paper lists
//! it among the structures manual schemes cannot serve.

use crate::ConcurrentQueue;
use orc_util::atomics::{AtomicI64, Ordering};
use orc_util::registry;
use orcgc::{make_orc, OrcAtomic, OrcPtr};
use std::cell::UnsafeCell;

struct Node<T> {
    item: UnsafeCell<Option<T>>,
    next: OrcAtomic<Node<T>>,
    enq_tid: i64,
    /// tid of the dequeuer that wins this node once it is the sentinel
    /// being dequeued.
    deq_tid: AtomicI64,
}

unsafe impl<T: Send> Sync for Node<T> {}
unsafe impl<T: Send> Send for Node<T> {}

impl<T: Send> Node<T> {
    fn new(item: Option<T>, enq_tid: i64) -> Self {
        Self {
            item: UnsafeCell::new(item),
            next: OrcAtomic::null(),
            enq_tid,
            deq_tid: AtomicI64::new(-1),
        }
    }
}

/// A dequeue descriptor. `pending == false` completes the request:
/// with the dequeued old sentinel in `node`, or null for EMPTY.
struct DeqDesc<T: Send + Sync> {
    pending: bool,
    node: OrcAtomic<Node<T>>,
}

/// Wait-free "turn" queue (reconstruction of [26]) under OrcGC.
pub struct TurnQueueOrc<T: Send + Sync> {
    head: OrcAtomic<Node<T>>,
    tail: OrcAtomic<Node<T>>,
    enqueuers: Box<[OrcAtomic<Node<T>>]>,
    dequeuers: Box<[OrcAtomic<DeqDesc<T>>]>,
}

impl<T: Send + Sync> TurnQueueOrc<T> {
    pub fn new() -> Self {
        let sentinel = make_orc(Node::new(None, -1));
        let mt = registry::max_threads();
        Self {
            head: OrcAtomic::new(&sentinel),
            tail: OrcAtomic::new(&sentinel),
            enqueuers: (0..mt).map(|_| OrcAtomic::null()).collect(),
            dequeuers: (0..mt)
                .map(|_| {
                    let done = make_orc(DeqDesc {
                        pending: false,
                        node: OrcAtomic::null(),
                    });
                    OrcAtomic::new(&done)
                })
                .collect(),
        }
    }

    /// Clears the appended node's request and advances the tail —
    /// clear-before-advance, the linchpin of the no-double-link argument.
    fn finish_enq(&self, ltail: &OrcPtr<Node<T>>, lnext: &OrcPtr<Node<T>>) {
        let lnext_tid = lnext.enq_tid;
        if lnext_tid >= 0 {
            let _ = self.enqueuers[lnext_tid as usize].cas_null(lnext.raw());
        }
        self.tail.cas(ltail, lnext);
    }

    pub fn enqueue(&self, item: T) {
        let tid = registry::tid();
        let mt = registry::registered_watermark().max(tid + 1);
        let my_node = make_orc(Node::new(Some(item), tid as i64));
        self.enqueuers[tid].store(&my_node);
        loop {
            // Done once our request slot no longer holds our node.
            if self.enqueuers[tid].load_raw() != my_node.raw() {
                return;
            }
            let ltail = self.tail.load();
            let lnext = ltail.next.load();
            if !lnext.is_null() {
                self.finish_enq(&ltail, &lnext);
                continue;
            }
            // Whose turn? First pending request after the tail node's
            // enqueuer, round-robin — slots re-read AFTER the tail.
            let start = (ltail.enq_tid + 1).max(0) as usize;
            let mut chosen: Option<OrcPtr<Node<T>>> = None;
            for j in 0..mt {
                let cand = self.enqueuers[(start + j) % mt].load();
                if !cand.is_null() && cand.raw() != ltail.raw() {
                    chosen = Some(cand);
                    break;
                }
            }
            let Some(req) = chosen else { continue };
            if ltail.next.cas(&lnext, &req) {
                self.finish_enq(&ltail, &req);
            }
        }
    }

    pub fn dequeue(&self) -> Option<T> {
        let tid = registry::tid();
        let my_desc = make_orc(DeqDesc {
            pending: true,
            node: OrcAtomic::null(),
        });
        self.dequeuers[tid].store(&my_desc);
        loop {
            let cur = self.dequeuers[tid].load();
            if cur.as_ref().is_some_and(|d| !d.pending) {
                break;
            }
            self.help_deq_round();
        }
        // Make sure the head is swung past our node before we return (a
        // later operation of ours must observe the advanced head, or a
        // helper could mis-complete it against the stale sentinel).
        self.finish_deq();
        // Harvest.
        let done = self.dequeuers[tid].load();
        let d = done.as_ref().expect("own dequeue descriptor vanished");
        let node = d.node.load();
        if node.is_null() {
            return None;
        }
        // `node` is the old sentinel assigned to us; its successor carries
        // the value. Exclusive take: unique stamped winner.
        let next = node.next.load();
        let item = unsafe { (*next.item.get()).take() };
        debug_assert!(item.is_some(), "turn-queue item taken twice");
        item
    }

    /// One helping round for dequeues: serve the turn-chosen pending
    /// request, or help a lagging enqueue.
    fn help_deq_round(&self) {
        let mt = registry::registered_watermark().min(self.dequeuers.len());
        let lhead = self.head.load();
        let ltail = self.tail.load();
        let lnext = lhead.next.load();
        if lhead.raw() != self.head.load_raw() {
            return;
        }
        // Turn order: rotate by the sentinel's enqueuer stamp (agreed upon
        // by all helpers; fairness, not safety).
        let start = (lhead.enq_tid + 1).max(0) as usize;
        let chosen = (0..mt).map(|j| (start + j) % mt).find_map(|d| {
            let cand = self.dequeuers[d].load();
            if cand.as_ref().is_some_and(|c| c.pending) {
                Some((d, cand))
            } else {
                None
            }
        });
        let Some((d, cur)) = chosen else { return };
        if lhead.raw() == ltail.raw() {
            if lnext.is_null() {
                // Queue empty: complete d with the EMPTY verdict — the CAS
                // fails harmlessly if a provisional node was installed
                // meanwhile (KP ordering).
                if ltail.raw() == self.tail.load_raw() {
                    let done = make_orc(DeqDesc {
                        pending: false,
                        node: OrcAtomic::null(),
                    });
                    self.dequeuers[d].cas(&cur, &done);
                }
            } else {
                // Tail lags an in-flight enqueue: help it first.
                self.finish_enq(&ltail, &lnext);
            }
            return;
        }
        // Non-empty: install the sentinel provisionally, stamp, finish.
        let cur_node_raw = cur.as_ref().map_or(0, |c| c.node.load_raw());
        if cur_node_raw != lhead.raw() {
            if lhead.raw() != self.head.load_raw() {
                return;
            }
            let prov = make_orc(DeqDesc {
                pending: true,
                node: OrcAtomic::new(&lhead),
            });
            if !self.dequeuers[d].cas(&cur, &prov) {
                return;
            }
        }
        let _ = lhead
            .deq_tid
            .compare_exchange(-1, d as i64, Ordering::SeqCst, Ordering::SeqCst);
        self.finish_deq();
    }

    /// Completes the stamped winner of the current sentinel, then swings
    /// the head — complete-before-advance.
    fn finish_deq(&self) {
        let first = self.head.load();
        let next = first.next.load();
        let winner = first.deq_tid.load(Ordering::SeqCst);
        if winner < 0 {
            return;
        }
        let winner = winner as usize;
        let cur = self.dequeuers[winner].load();
        if first.raw() == self.head.load_raw() && !next.is_null() {
            let Some(c) = cur.as_ref() else { return };
            if !c.pending {
                // Already completed by another helper; just advance.
                self.head.cas(&first, &next);
                return;
            }
            let node = c.node.load();
            let done = make_orc(DeqDesc {
                pending: false,
                node: if node.is_null() {
                    OrcAtomic::null()
                } else {
                    OrcAtomic::new(&node)
                },
            });
            self.dequeuers[winner].cas(&cur, &done);
            self.head.cas(&first, &next);
        }
    }
}

impl<T: Send + Sync> Default for TurnQueueOrc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> ConcurrentQueue<T> for TurnQueueOrc<T> {
    fn enqueue(&self, item: T) {
        TurnQueueOrc::enqueue(self, item)
    }

    fn dequeue(&self) -> Option<T> {
        TurnQueueOrc::dequeue(self)
    }

    fn name(&self) -> &'static str {
        "TurnQueue-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = TurnQueueOrc::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..500 {
            q.enqueue(i);
        }
        for i in 0..500 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn alternating_ops() {
        let q = TurnQueueOrc::new();
        for round in 0..100 {
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round));
            assert_eq!(q.dequeue(), None);
        }
    }

    #[test]
    fn mpmc_stress_no_loss_no_dup() {
        let q = Arc::new(TurnQueueOrc::new());
        let producers = 2;
        let consumers = 2;
        let per = 3_000u64;
        let expected: u64 = (0..producers as u64 * per).sum();
        let sum = Arc::new(AtomicU64::new(0));
        let got = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p as u64 * per + i);
                }
                orcgc::flush_thread();
            }));
        }
        for _ in 0..consumers {
            let q = q.clone();
            let sum = sum.clone();
            let got = got.clone();
            handles.push(std::thread::spawn(move || {
                let want = producers as u64 * per;
                while got.load(Ordering::SeqCst) < want {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                orcgc::flush_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mixed_roles_stress() {
        let q = Arc::new(TurnQueueOrc::new());
        let threads = 4;
        let per = 1_500u64;
        let deqd = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = q.clone();
                let deqd = deqd.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.enqueue(t as u64 * per + i);
                        if i % 3 == 0 && q.dequeue().is_some() {
                            deqd.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut rest = 0;
        while q.dequeue().is_some() {
            rest += 1;
        }
        assert_eq!(deqd.load(Ordering::SeqCst) + rest, threads as u64 * per);
    }
}
