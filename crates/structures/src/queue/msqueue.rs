//! Michael–Scott queue under a manual reclamation scheme.
//!
//! The classic two-hazard-pointer deployment (Michael 2004, Figure 5): one
//! slot protects the head/tail snapshot, a second protects `next` during
//! dequeue. `retire` is called on the old sentinel after a successful head
//! swing — the one place the MS queue makes a node unreachable.

use crate::ConcurrentQueue;
use orc_util::atomics::{AtomicPtr, Ordering};
use reclaim::{as_word, Smr};
use std::cell::UnsafeCell;

struct Node<T> {
    item: UnsafeCell<Option<T>>,
    next: AtomicPtr<Node<T>>,
}

unsafe impl<T: Send> Sync for Node<T> {}
unsafe impl<T: Send> Send for Node<T> {}

impl<T> Node<T> {
    fn new(item: Option<T>) -> Self {
        Self {
            item: UnsafeCell::new(item),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// Michael–Scott MPMC queue, generic over the reclamation scheme.
pub struct MsQueue<T, S: Smr> {
    head: AtomicPtr<Node<T>>,
    tail: AtomicPtr<Node<T>>,
    smr: S,
}

unsafe impl<T: Send, S: Smr> Sync for MsQueue<T, S> {}
unsafe impl<T: Send, S: Smr> Send for MsQueue<T, S> {}

impl<T: Send, S: Smr> MsQueue<T, S> {
    pub fn new(smr: S) -> Self {
        let sentinel = smr.alloc(Node::new(None));
        Self {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            smr,
        }
    }

    /// The scheme instance (for flushing/metrics in benches).
    pub fn smr(&self) -> &S {
        &self.smr
    }

    pub fn enqueue(&self, item: T) {
        let node = self.smr.alloc(Node::new(Some(item)));
        self.smr.begin_op();
        loop {
            let ltail = self.smr.protect_ptr(0, &self.tail);
            let lnext = unsafe { (*ltail).next.load(Ordering::SeqCst) };
            if self.tail.load(Ordering::SeqCst) != ltail {
                continue;
            }
            if lnext.is_null() {
                if unsafe { &(*ltail).next }
                    .compare_exchange(
                        std::ptr::null_mut(),
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    let _ =
                        self.tail
                            .compare_exchange(ltail, node, Ordering::SeqCst, Ordering::SeqCst);
                    break;
                }
            } else {
                let _ =
                    self.tail
                        .compare_exchange(ltail, lnext, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
        self.smr.end_op();
    }

    pub fn dequeue(&self) -> Option<T> {
        self.smr.begin_op();
        let result = loop {
            let lhead = self.smr.protect_ptr(0, &self.head);
            let lnext = self.smr.protect(1, as_word(unsafe { &(*lhead).next })) as *mut Node<T>;
            if self.head.load(Ordering::SeqCst) != lhead {
                continue;
            }
            if lnext.is_null() {
                break None;
            }
            let ltail = self.tail.load(Ordering::SeqCst);
            if lhead == ltail {
                // Tail is lagging: help swing it before the head passes it.
                let _ =
                    self.tail
                        .compare_exchange(ltail, lnext, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            if self
                .head
                .compare_exchange(lhead, lnext, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // We won: lnext is the new sentinel and its item is ours
                // exclusively (still protected by slot 1).
                let item = unsafe { (*(*lnext).item.get()).take() };
                unsafe { self.smr.retire(lhead) };
                break item;
            }
        };
        self.smr.end_op();
        result
    }
}

impl<S: Smr> crate::traits::SmrQueue<S> for MsQueue<u64, S> {
    fn with_smr(smr: S) -> Self {
        MsQueue::new(smr)
    }

    fn smr(&self) -> &S {
        MsQueue::smr(self)
    }
}

impl<T: Send, S: Smr> ConcurrentQueue<T> for MsQueue<T, S> {
    fn enqueue(&self, item: T) {
        MsQueue::enqueue(self, item)
    }

    fn dequeue(&self) -> Option<T> {
        MsQueue::dequeue(self)
    }

    fn name(&self) -> &'static str {
        "MSQueue"
    }
}

impl<T, S: Smr> Drop for MsQueue<T, S> {
    fn drop(&mut self) {
        // Exclusive access: walk and free every node, sentinel included.
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            let next = unsafe { (*p).next.load(Ordering::Relaxed) };
            unsafe { self.smr.dealloc_now(p) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim::SchemeKind;
    use std::sync::Arc;

    fn fifo_smoke<S: Smr>(smr: S) {
        let q = MsQueue::new(smr);
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        q.smr().flush();
    }

    #[test]
    fn fifo_under_every_scheme() {
        for kind in SchemeKind::ALL {
            fifo_smoke(kind.build());
        }
    }

    #[test]
    fn drop_frees_residual_nodes() {
        struct Probe(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let q = MsQueue::new(SchemeKind::Hp.build());
            for _ in 0..10 {
                q.enqueue(Probe(drops.clone()));
            }
            let _ = q.dequeue();
        }
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    fn mpmc_stress<S: Smr + Clone>(smr: S, name: &str) {
        let q = Arc::new(MsQueue::new(smr));
        let producers = 2;
        let consumers = 2;
        let per = 10_000u64;
        let total: u64 = (0..producers as u64 * per).sum();
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p as u64 * per + i);
                }
            }));
        }
        for _ in 0..consumers {
            let q = q.clone();
            let sum = sum.clone();
            let got = got.clone();
            handles.push(std::thread::spawn(move || {
                let want = producers as u64 * per;
                while got.load(Ordering::SeqCst) < want {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        // Yield, not spin: consumers busy-spinning on an
                        // empty queue starve the producers on single-core
                        // hosts and the test hangs.
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(Ordering::SeqCst),
            total,
            "{name}: dequeued-sum mismatch (lost or duplicated items)"
        );
        assert_eq!(q.dequeue(), None);
        q.smr().flush();
    }

    #[test]
    fn mpmc_stress_every_scheme() {
        for kind in SchemeKind::ALL {
            mpmc_stress(kind.build(), kind.name());
        }
    }

    #[test]
    fn no_leaks_after_stress() {
        for kind in SchemeKind::ALL {
            if !kind.reclaims() {
                continue;
            }
            let smr = kind.build();
            mpmc_stress(smr.clone(), &format!("{kind}-leakcheck"));
            smr.flush();
            assert_eq!(smr.unreclaimed(), 0, "{kind}");
        }
    }
}
