//! The lock-free data structures evaluated in the OrcGC paper (§5).
//!
//! Eleven structures, in two flavors:
//!
//! * **Manual-scheme generic** (`<S: reclaim::Smr>`): written once against
//!   the [`reclaim::Smr`] trait, so the same code runs under HP, PTB, PTP,
//!   HE, EBR or the leaky baseline — the comparison of Figures 3–4.
//! * **OrcGC-annotated** (`*Orc`): the paper's methodology applied
//!   verbatim — nodes built with `make_orc`, links declared `OrcAtomic`,
//!   locals held in `OrcPtr` — and *no* explicit protect/retire calls.
//!
//! | Structure | Paper source | Manual | OrcGC |
//! |---|---|---|---|
//! | Michael–Scott queue | [20] | [`queue::MsQueue`] | [`queue::MsQueueOrc`] |
//! | LCRQ | [21] | — | [`queue::LcrqOrc`] |
//! | Kogan–Petrank wait-free queue | [17] | — | [`queue::KpQueueOrc`] |
//! | TurnQueue | [26] | — | [`queue::TurnQueueOrc`] |
//! | Michael–Harris list | [18] | [`list::MichaelList`] | [`list::MichaelListOrc`] |
//! | Harris original list | [12] | — | [`list::HarrisListOrc`] |
//! | Herlihy–Shavit list (wait-free lookups) | [15] | — | [`list::HsListOrc`] |
//! | TBKP wait-free list | [27] | — | [`list::TbkpListOrc`] |
//! | Natarajan–Mittal BST | [22] | [`tree::NmTree`] | [`tree::NmTreeOrc`] |
//! | Herlihy–Shavit skip list | [15] | — | [`skiplist::HsSkipListOrc`] |
//! | CRF-skip (this paper) | §5 | — | [`skiplist::CrfSkipListOrc`] |
//!
//! The structures marked "—" depend on reclamation properties only OrcGC
//! (or FreeAccess) provides — multiple incoming links unlinked in
//! interleaving-dependent order (KP), retired-node traversal (Harris/HS),
//! and re-insertion of unlinked nodes (skip lists) — which is the paper's
//! §2 "limitations of existing schemes" argument.

pub mod list;
pub mod queue;
pub mod registry;
pub mod skiplist;
pub mod traits;
pub mod tree;

pub use traits::{ConcurrentQueue, ConcurrentSet, SmrQueue, SmrSet};
