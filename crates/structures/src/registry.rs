//! The (structure × scheme) matrix as *data*.
//!
//! Every sweepable structure in the workspace is listed here exactly once:
//! manual-scheme-generic structures as factories over [`AnySmr`]
//! ([`SETS`]/[`QUEUES`]), OrcGC-annotated variants as plain constructors
//! ([`ORC_SETS`]/[`ORC_QUEUES`]). Harnesses — the torture bin and its test
//! batteries, the root equivalence/teardown tests, `orcstat` — iterate
//! these tables instead of hand-enumerating constructors, so scheme #7 or
//! structure #12 is a one-line entry here that every consumer picks up
//! automatically.
//!
//! # Slicing the matrix
//!
//! [`MatrixFilter::from_env`] reads two environment variables:
//!
//! * `ORC_SCHEMES` — comma-separated scheme names (`hp,ptb,ptp,he,ebr,
//!   leaky|none,orc|orcgc`). `orc` selects the OrcGC-annotated rows.
//! * `ORC_STRUCTS` — comma-separated structure names (case-insensitive
//!   prefixes of the entry names, e.g. `michaellist,nmtree`).
//!
//! Unknown names fail fast with the valid list — a typo'd CI slice must
//! not silently become a no-op run.

use crate::{ConcurrentQueue, ConcurrentSet, SmrQueue, SmrSet};
use reclaim::{AnySmr, SchemeKind};

/// A boxed integer-keyed set (the uniform currency of the sweep path).
pub type DynSet = Box<dyn ConcurrentSet<u64>>;
/// A boxed u64 queue.
pub type DynQueue = Box<dyn ConcurrentQueue<u64>>;

/// One point on the scheme axis: a manual scheme, or the OrcGC domain.
///
/// OrcGC is not a [`SchemeKind`] — its reclamation is process-global and
/// automatic, with no `Smr` handle — but the paper's tables put it in the
/// same column set, so the sweep axis carries both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeAxis {
    /// One of the six manual schemes.
    Manual(SchemeKind),
    /// The paper's automatic scheme (`*Orc` structure variants).
    Orc,
}

impl SchemeAxis {
    /// Every scheme, manual and automatic — the full Table-1 column set.
    pub const ALL: [SchemeAxis; 7] = [
        SchemeAxis::Manual(SchemeKind::Hp),
        SchemeAxis::Manual(SchemeKind::Ptb),
        SchemeAxis::Manual(SchemeKind::Ptp),
        SchemeAxis::Manual(SchemeKind::He),
        SchemeAxis::Manual(SchemeKind::Ebr),
        SchemeAxis::Manual(SchemeKind::Leaky),
        SchemeAxis::Orc,
    ];

    /// Display name (figure legends).
    pub fn name(self) -> &'static str {
        match self {
            SchemeAxis::Manual(k) => k.name(),
            SchemeAxis::Orc => "OrcGC",
        }
    }

    /// Parses a scheme-axis name: any [`SchemeKind`] name, or
    /// `orc`/`orcgc` for the automatic scheme.
    #[allow(clippy::should_implement_trait)] // fallible-by-Option, mirrors SchemeKind::from_str
    pub fn from_str(name: &str) -> Option<SchemeAxis> {
        match name.trim().to_ascii_lowercase().as_str() {
            "orc" | "orcgc" => Some(SchemeAxis::Orc),
            other => SchemeKind::from_str(other).map(SchemeAxis::Manual),
        }
    }

    /// The manual scheme kind, if this axis point is one.
    pub fn manual(self) -> Option<SchemeKind> {
        match self {
            SchemeAxis::Manual(k) => Some(k),
            SchemeAxis::Orc => None,
        }
    }
}

impl std::fmt::Display for SchemeAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A manual-scheme-generic set: one factory covers all six schemes.
pub struct SetEntry {
    /// The structure's display name (matches `ConcurrentSet::name`).
    pub name: &'static str,
    /// Builds the structure over the given scheme handle.
    pub make: fn(AnySmr) -> DynSet,
}

/// A manual-scheme-generic queue; see [`SetEntry`].
pub struct QueueEntry {
    /// The structure's display name (matches `ConcurrentQueue::name`).
    pub name: &'static str,
    /// Builds the structure over the given scheme handle.
    pub make: fn(AnySmr) -> DynQueue,
}

/// An OrcGC-annotated set (reclamation driven by the process-global
/// domain; no scheme handle).
pub struct OrcSetEntry {
    /// The structure's display name.
    pub name: &'static str,
    /// Builds the structure.
    pub make: fn() -> DynSet,
}

/// An OrcGC-annotated queue; see [`OrcSetEntry`].
pub struct OrcQueueEntry {
    /// The structure's display name.
    pub name: &'static str,
    /// Builds the structure.
    pub make: fn() -> DynQueue,
}

fn set_of<T: SmrSet<AnySmr>>(smr: AnySmr) -> DynSet {
    Box::new(T::with_smr(smr))
}

fn queue_of<T: SmrQueue<AnySmr>>(smr: AnySmr) -> DynQueue {
    Box::new(T::with_smr(smr))
}

/// Every manual-scheme-sweepable set. Adding a structure = implementing
/// [`SmrSet`] and adding one line here (the completeness test in
/// `tests/registry_completeness.rs` fails if the line is missing).
pub const SETS: &[SetEntry] = &[
    SetEntry {
        name: "MichaelList",
        make: set_of::<crate::list::MichaelList<u64, AnySmr>>,
    },
    SetEntry {
        name: "NMTree",
        make: set_of::<crate::tree::NmTree<u64, AnySmr>>,
    },
];

/// Every manual-scheme-sweepable queue.
pub const QUEUES: &[QueueEntry] = &[QueueEntry {
    name: "MSQueue",
    make: queue_of::<crate::queue::MsQueue<u64, AnySmr>>,
}];

/// Every OrcGC-annotated set variant.
pub const ORC_SETS: &[OrcSetEntry] = &[
    OrcSetEntry {
        name: "MichaelList-OrcGC",
        make: || Box::new(crate::list::MichaelListOrc::new()),
    },
    OrcSetEntry {
        name: "HarrisList-OrcGC",
        make: || Box::new(crate::list::HarrisListOrc::new()),
    },
    OrcSetEntry {
        name: "HSList-OrcGC",
        make: || Box::new(crate::list::HsListOrc::new()),
    },
    OrcSetEntry {
        name: "TBKPList-OrcGC",
        make: || Box::new(crate::list::TbkpListOrc::new()),
    },
    OrcSetEntry {
        name: "NMTree-OrcGC",
        make: || Box::new(crate::tree::NmTreeOrc::new()),
    },
    OrcSetEntry {
        name: "HS-skip-OrcGC",
        make: || Box::new(crate::skiplist::HsSkipListOrc::new()),
    },
    OrcSetEntry {
        name: "CRF-skip-OrcGC",
        make: || Box::new(crate::skiplist::CrfSkipListOrc::new()),
    },
];

/// Every OrcGC-annotated queue variant.
pub const ORC_QUEUES: &[OrcQueueEntry] = &[
    OrcQueueEntry {
        name: "MSQueue-OrcGC",
        make: || Box::new(crate::queue::MsQueueOrc::new()),
    },
    OrcQueueEntry {
        name: "LCRQ-OrcGC",
        make: || Box::new(crate::queue::LcrqOrc::new()),
    },
    OrcQueueEntry {
        name: "KPQueue-OrcGC",
        make: || Box::new(crate::queue::KpQueueOrc::new()),
    },
    OrcQueueEntry {
        name: "TurnQueue-OrcGC",
        make: || Box::new(crate::queue::TurnQueueOrc::new()),
    },
];

/// Every structure name in the registry, for filter validation and
/// completeness checks.
pub fn all_structure_names() -> Vec<&'static str> {
    SETS.iter()
        .map(|e| e.name)
        .chain(QUEUES.iter().map(|e| e.name))
        .chain(ORC_SETS.iter().map(|e| e.name))
        .chain(ORC_QUEUES.iter().map(|e| e.name))
        .collect()
}

/// How one set is built in a sweep cell: from a manual scheme handle, or
/// as an OrcGC variant.
pub enum MakeSet {
    /// Build over the cell's manual scheme.
    Manual(fn(AnySmr) -> DynSet),
    /// OrcGC-annotated constructor.
    Orc(fn() -> DynSet),
}

/// How one queue is built in a sweep cell; see [`MakeSet`].
pub enum MakeQueue {
    /// Build over the cell's manual scheme.
    Manual(fn(AnySmr) -> DynQueue),
    /// OrcGC-annotated constructor.
    Orc(fn() -> DynQueue),
}

/// One (scheme × set) cell of the sweep matrix.
pub struct SetCell {
    /// The scheme axis point.
    pub scheme: SchemeAxis,
    /// The structure's display name.
    pub structure: &'static str,
    /// The factory, dispatched on the scheme flavor.
    pub make: MakeSet,
}

impl SetCell {
    /// `"HP/MichaelList"`-style label for reports and assertions.
    pub fn label(&self) -> String {
        format!("{}/{}", self.scheme.name(), self.structure)
    }

    /// Builds the cell's structure, constructing a fresh scheme instance
    /// for manual cells (the structure owns the only handle). Callers
    /// needing the scheme handle afterwards — to `flush()` or read stats —
    /// should match on [`Self::make`] instead and keep a clone.
    pub fn build(&self) -> DynSet {
        match self.make {
            MakeSet::Manual(make) => make(self.scheme.manual().expect("manual cell").build()),
            MakeSet::Orc(make) => make(),
        }
    }
}

/// One (scheme × queue) cell of the sweep matrix.
pub struct QueueCell {
    /// The scheme axis point.
    pub scheme: SchemeAxis,
    /// The structure's display name.
    pub structure: &'static str,
    /// The factory, dispatched on the scheme flavor.
    pub make: MakeQueue,
}

impl QueueCell {
    /// `"HP/MSQueue"`-style label for reports and assertions.
    pub fn label(&self) -> String {
        format!("{}/{}", self.scheme.name(), self.structure)
    }

    /// Builds the cell's queue; see [`SetCell::build`].
    pub fn build(&self) -> DynQueue {
        match self.make {
            MakeQueue::Manual(make) => make(self.scheme.manual().expect("manual cell").build()),
            MakeQueue::Orc(make) => make(),
        }
    }
}

/// A slice of the (structure × scheme) matrix: which schemes and which
/// structures to sweep. Build the full matrix with [`MatrixFilter::full`]
/// or an environment-driven slice with [`MatrixFilter::from_env`].
#[derive(Debug, Clone)]
pub struct MatrixFilter {
    schemes: Vec<SchemeAxis>,
    /// Lowercased structure-name filter; `None` = every structure.
    structs: Option<Vec<String>>,
}

impl MatrixFilter {
    /// The whole matrix: every scheme (manual + OrcGC) × every structure.
    pub fn full() -> Self {
        Self {
            schemes: SchemeAxis::ALL.to_vec(),
            structs: None,
        }
    }

    /// Reads `ORC_SCHEMES` and `ORC_STRUCTS`; unset or empty variables
    /// select everything. Unknown names fail fast with the valid list.
    pub fn from_env() -> Result<Self, String> {
        let mut f = Self::full();
        if let Ok(spec) = std::env::var("ORC_SCHEMES") {
            let mut schemes = Vec::new();
            for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let axis = SchemeAxis::from_str(tok).ok_or_else(|| {
                    format!(
                        "ORC_SCHEMES: unknown scheme {tok:?}; valid schemes: {}",
                        SchemeAxis::ALL
                            .map(|a| a.name().to_ascii_lowercase())
                            .join(", ")
                    )
                })?;
                if !schemes.contains(&axis) {
                    schemes.push(axis);
                }
            }
            if !schemes.is_empty() {
                f.schemes = schemes;
            }
        }
        if let Ok(spec) = std::env::var("ORC_STRUCTS") {
            let valid: Vec<String> = all_structure_names()
                .iter()
                .map(|n| n.to_ascii_lowercase())
                .collect();
            let mut structs = Vec::new();
            for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let tok = tok.to_ascii_lowercase();
                if !valid.iter().any(|v| v.starts_with(&tok)) {
                    return Err(format!(
                        "ORC_STRUCTS: unknown structure {tok:?}; valid structures: {}",
                        valid.join(", ")
                    ));
                }
                if !structs.contains(&tok) {
                    structs.push(tok);
                }
            }
            if !structs.is_empty() {
                f.structs = Some(structs);
            }
        }
        Ok(f)
    }

    /// The selected scheme-axis points, in Table-1 order.
    pub fn schemes(&self) -> &[SchemeAxis] {
        &self.schemes
    }

    /// The selected manual scheme kinds (the OrcGC axis point filtered
    /// out), for scheme-only batteries like the stall tests.
    pub fn manual_schemes(&self) -> Vec<SchemeKind> {
        self.schemes.iter().filter_map(|a| a.manual()).collect()
    }

    /// Whether the OrcGC axis point is selected.
    pub fn includes_orc(&self) -> bool {
        self.schemes.contains(&SchemeAxis::Orc)
    }

    fn wants(&self, structure: &str) -> bool {
        match &self.structs {
            None => true,
            Some(list) => {
                let lower = structure.to_ascii_lowercase();
                list.iter().any(|tok| lower.starts_with(tok))
            }
        }
    }

    /// The selected (scheme × set) cells, schemes outermost.
    pub fn set_cells(&self) -> Vec<SetCell> {
        let mut cells = Vec::new();
        for &scheme in &self.schemes {
            match scheme {
                SchemeAxis::Manual(_) => {
                    for e in SETS.iter().filter(|e| self.wants(e.name)) {
                        cells.push(SetCell {
                            scheme,
                            structure: e.name,
                            make: MakeSet::Manual(e.make),
                        });
                    }
                }
                SchemeAxis::Orc => {
                    for e in ORC_SETS.iter().filter(|e| self.wants(e.name)) {
                        cells.push(SetCell {
                            scheme,
                            structure: e.name,
                            make: MakeSet::Orc(e.make),
                        });
                    }
                }
            }
        }
        cells
    }

    /// The selected (scheme × queue) cells, schemes outermost.
    pub fn queue_cells(&self) -> Vec<QueueCell> {
        let mut cells = Vec::new();
        for &scheme in &self.schemes {
            match scheme {
                SchemeAxis::Manual(_) => {
                    for e in QUEUES.iter().filter(|e| self.wants(e.name)) {
                        cells.push(QueueCell {
                            scheme,
                            structure: e.name,
                            make: MakeQueue::Manual(e.make),
                        });
                    }
                }
                SchemeAxis::Orc => {
                    for e in ORC_QUEUES.iter().filter(|e| self.wants(e.name)) {
                        cells.push(QueueCell {
                            scheme,
                            structure: e.name,
                            make: MakeQueue::Orc(e.make),
                        });
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim::Smr;

    #[test]
    fn entry_names_match_structure_names() {
        let smr = SchemeKind::Hp.build();
        for e in SETS {
            assert_eq!((e.make)(smr.clone()).name(), e.name);
        }
        for e in QUEUES {
            assert_eq!((e.make)(smr.clone()).name(), e.name);
        }
        for e in ORC_SETS {
            assert_eq!((e.make)().name(), e.name);
        }
        for e in ORC_QUEUES {
            assert_eq!((e.make)().name(), e.name);
        }
        orcgc::flush_thread();
    }

    #[test]
    fn full_matrix_covers_schemes_times_structures() {
        let f = MatrixFilter::full();
        assert_eq!(
            f.set_cells().len(),
            SchemeKind::ALL.len() * SETS.len() + ORC_SETS.len()
        );
        assert_eq!(
            f.queue_cells().len(),
            SchemeKind::ALL.len() * QUEUES.len() + ORC_QUEUES.len()
        );
        assert_eq!(f.manual_schemes(), SchemeKind::ALL.to_vec());
        assert!(f.includes_orc());
    }

    #[test]
    fn axis_names_roundtrip() {
        for axis in SchemeAxis::ALL {
            assert_eq!(SchemeAxis::from_str(axis.name()), Some(axis));
        }
        assert_eq!(SchemeAxis::from_str("orcgc"), Some(SchemeAxis::Orc));
        assert_eq!(SchemeAxis::from_str("bogus"), None);
    }

    #[test]
    fn manual_cells_build_under_their_scheme() {
        let f = MatrixFilter::full();
        for cell in f.set_cells() {
            match cell.make {
                MakeSet::Manual(make) => {
                    let kind = cell.scheme.manual().expect("manual cell");
                    let smr = kind.build();
                    let set = make(smr.clone());
                    assert!(set.add(1));
                    assert!(set.contains(&1));
                    assert!(set.remove(&1));
                    drop(set);
                    assert_eq!(smr.name(), kind.name());
                }
                MakeSet::Orc(make) => {
                    let set = make();
                    assert!(set.add(1));
                    assert!(set.remove(&1));
                }
            }
        }
        orcgc::flush_thread();
    }
}
