//! Natarajan–Mittal external BST under the manual reclamation schemes.
//!
//! Same structure as [`NmTreeOrc`](super::NmTreeOrc), but deploying a
//! pointer-based manual scheme soundly requires a stricter traversal
//! discipline. A hazard protection is only trustworthy when obtained from
//! an edge that was **clean** (unflagged, untagged) at validation time:
//! every outgoing edge of a node unlinked by a deletion swing is flagged
//! or tagged, so descending only through clean edges guarantees each
//! protected node was still reachable when protected. When the seek meets
//! a dirty edge it stops *without dereferencing the target*, helps the
//! pending deletion (cleanup only dereferences the already-protected
//! parent and ancestor), and restarts from the root.
//!
//! A pleasant consequence: seeks never descend past a pending deletion, so
//! `successor == parent` always holds and every cleanup retires exactly
//! its `{parent, victim}` pair — no chain-compression leaks. The cost is
//! extra restarts under deletion contention, part of the manual-scheme
//! overhead the paper's Figures 7–8 measure. Hazard slots: 0 = descending
//! child, 1 = leaf, 2 = parent, 3 = successor, 4 = ancestor; blind copies
//! only ever go to higher slot indices (the pass-the-pointer scan order).

use super::SKey;
use crate::ConcurrentSet;
use orc_util::atomics::{AtomicUsize, Ordering};
use orc_util::marked::{is_marked as is_flagged, mark as flag, tag, tag_bits, unmark};
use reclaim::Smr;

const HP_CHILD: usize = 0;
const HP_LEAF: usize = 1;
const HP_PARENT: usize = 2;
const HP_SUCC: usize = 3;
const HP_ANC: usize = 4;

struct Node<K: Ord + Copy> {
    key: SKey<K>,
    left: AtomicUsize,
    right: AtomicUsize,
}

impl<K: Ord + Copy> Node<K> {
    fn leaf(key: SKey<K>) -> Self {
        Self {
            key,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
        }
    }

    fn child_link(&self, key: &SKey<K>) -> &AtomicUsize {
        if key < &self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

/// Successful seek: all four nodes protected, reached via clean edges.
struct SeekRec {
    ancestor: usize,
    successor: usize,
    parent: usize,
    leaf: usize,
}

/// Seek outcome: either a trustworthy window, or "a deletion is pending on
/// the edge out of `parent`" (the dirty edge's target must not be
/// dereferenced).
enum Seek {
    Clean(SeekRec),
    Help(SeekRec),
}

/// Natarajan–Mittal lock-free external BST, generic over the scheme.
pub struct NmTree<K: Ord + Copy, S: Smr> {
    root: usize,
    smr: S,
    _pd: std::marker::PhantomData<K>,
}

unsafe impl<K: Ord + Copy + Send, S: Smr> Send for NmTree<K, S> {}
unsafe impl<K: Ord + Copy + Send + Sync, S: Smr> Sync for NmTree<K, S> {}

impl<K, S> NmTree<K, S>
where
    K: Ord + Copy + Send + Sync + 'static,
    S: Smr,
{
    pub fn new(smr: S) -> Self {
        let l0 = smr.alloc(Node::<K>::leaf(SKey::Inf0)) as usize;
        let l1 = smr.alloc(Node::<K>::leaf(SKey::Inf1)) as usize;
        let l2 = smr.alloc(Node::<K>::leaf(SKey::Inf2)) as usize;
        let s_node = smr.alloc(Node::<K> {
            key: SKey::Inf1,
            left: AtomicUsize::new(l0),
            right: AtomicUsize::new(l1),
        }) as usize;
        let r_node = smr.alloc(Node::<K> {
            key: SKey::Inf2,
            left: AtomicUsize::new(s_node),
            right: AtomicUsize::new(l2),
        }) as usize;
        Self {
            root: r_node,
            smr,
            _pd: std::marker::PhantomData,
        }
    }

    pub fn smr(&self) -> &S {
        &self.smr
    }

    #[inline]
    fn node(word: usize) -> *const Node<K> {
        unmark(word) as *const Node<K>
    }

    /// Descend through clean edges only. On a dirty edge, return
    /// `Seek::Help` with the protected (ancestor, successor, parent) and
    /// the dirty edge's raw target in `leaf` (NOT dereferenceable).
    fn seek(&self, key: &SKey<K>) -> Seek {
        // R and S are immortal sentinels.
        let r = self.root;
        self.smr.publish(HP_ANC, r);
        let s_node = unmark(unsafe { (*Self::node(r)).left.load(Ordering::SeqCst) });
        self.smr.publish(HP_SUCC, s_node);
        self.smr.publish(HP_PARENT, s_node);
        let mut ancestor = r;
        let mut successor = s_node;
        let mut parent = s_node;
        // First edge: S.left (fresh protect validates it).
        let edge = self
            .smr
            .protect(HP_LEAF, unsafe { &(*Self::node(parent)).left });
        if tag_bits(edge) != 0 {
            return Seek::Help(SeekRec {
                ancestor,
                successor,
                parent,
                leaf: unmark(edge),
            });
        }
        let mut leaf = unmark(edge);
        loop {
            // `leaf` was protected through a clean edge: safe to read.
            let link = unsafe { (*Self::node(leaf)).child_link(key) };
            let child_edge = self.smr.protect(HP_CHILD, link);
            if unmark(child_edge) == 0 {
                return Seek::Clean(SeekRec {
                    ancestor,
                    successor,
                    parent,
                    leaf,
                });
            }
            // Internal node: descend. Shuffle roles upward (all copies to
            // strictly higher slot indices).
            ancestor = parent;
            successor = leaf;
            self.smr.publish(HP_ANC, parent); // 2 -> 4
            self.smr.publish(HP_SUCC, leaf); // 1 -> 3
            parent = leaf;
            self.smr.publish(HP_PARENT, leaf); // 1 -> 2
            if tag_bits(child_edge) != 0 {
                return Seek::Help(SeekRec {
                    ancestor,
                    successor,
                    parent,
                    leaf: unmark(child_edge),
                });
            }
            leaf = unmark(child_edge);
            self.smr.publish(HP_LEAF, leaf); // 0 -> 1
        }
    }

    /// Completes the pending deletion below `s.parent`. Only dereferences
    /// `s.ancestor` and `s.parent` (both protected-from-reachable).
    /// Returns true if this call's swing performed the unlink.
    fn cleanup(&self, key: &SKey<K>, s: &SeekRec) -> bool {
        let ancestor = Self::node(s.ancestor);
        let parent = Self::node(s.parent);
        let (child_link, sibling_link) = unsafe {
            if key < &(*parent).key {
                (&(*parent).left, &(*parent).right)
            } else {
                (&(*parent).right, &(*parent).left)
            }
        };
        // The victim hangs off the flagged edge; the swing keeps the other
        // side.
        let key_side_flagged = is_flagged(child_link.load(Ordering::SeqCst));
        let (victim_link, sibling_link) = if key_side_flagged {
            (child_link, sibling_link)
        } else {
            (sibling_link, child_link)
        };
        if !is_flagged(victim_link.load(Ordering::SeqCst)) {
            // No pending deletion (stale record): nothing to help.
            return false;
        }
        let victim = unmark(victim_link.load(Ordering::SeqCst));
        // Tag the sibling edge so it cannot change under the swing.
        loop {
            let w = sibling_link.load(Ordering::SeqCst);
            if tag_bits(w) & orc_util::marked::TAG != 0 {
                break;
            }
            if sibling_link
                .compare_exchange(w, tag(w), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        let sib_word = sibling_link.load(Ordering::SeqCst);
        // Drop the tag but carry a flag (pending deletion of the sibling)
        // across the swing.
        let sibling = if is_flagged(sib_word) {
            flag(unmark(sib_word))
        } else {
            unmark(sib_word)
        };
        let anc_link = unsafe { (*ancestor).child_link(key) };
        if anc_link
            .compare_exchange(s.successor, sibling, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // Exactly one swing succeeds per parent (the expected value
            // can never reappear while helpers protect it): safe single
            // retire of the unlinked pair.
            unsafe {
                self.smr.retire(s.parent as *mut Node<K>);
                self.smr.retire(victim as *mut Node<K>);
            }
            true
        } else {
            false
        }
    }

    pub fn add(&self, key: K) -> bool {
        let skey = SKey::Fin(key);
        self.smr.begin_op();
        let mut new_leaf: *mut Node<K> = std::ptr::null_mut();
        let mut internal: *mut Node<K> = std::ptr::null_mut();
        let added = loop {
            let s = match self.seek(&skey) {
                Seek::Help(rec) => {
                    self.cleanup(&skey, &rec);
                    continue;
                }
                Seek::Clean(rec) => rec,
            };
            let leaf_key = unsafe { (*Self::node(s.leaf)).key };
            if leaf_key == skey {
                break false;
            }
            let parent = Self::node(s.parent);
            let child_link = unsafe { (*parent).child_link(&skey) };
            if new_leaf.is_null() {
                new_leaf = self.smr.alloc(Node::leaf(skey));
            }
            if internal.is_null() {
                internal = self.smr.alloc(Node::<K> {
                    key: SKey::Inf0, // overwritten below
                    left: AtomicUsize::new(0),
                    right: AtomicUsize::new(0),
                });
            }
            unsafe {
                let i = &mut *internal;
                if skey < leaf_key {
                    i.key = leaf_key;
                    i.left.store(new_leaf as usize, Ordering::Relaxed);
                    i.right.store(s.leaf, Ordering::Relaxed);
                } else {
                    i.key = skey;
                    i.left.store(s.leaf, Ordering::Relaxed);
                    i.right.store(new_leaf as usize, Ordering::Relaxed);
                }
            }
            if child_link
                .compare_exchange(
                    s.leaf,
                    internal as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break true;
            }
        };
        if !added {
            unsafe {
                if !new_leaf.is_null() {
                    self.smr.dealloc_now(new_leaf);
                }
                if !internal.is_null() {
                    self.smr.dealloc_now(internal);
                }
            }
        }
        self.smr.end_op();
        added
    }

    pub fn remove(&self, key: &K) -> bool {
        let skey = SKey::Fin(*key);
        self.smr.begin_op();
        let mut injecting = true;
        let mut victim = 0usize;
        let removed = loop {
            let (s, dirty) = match self.seek(&skey) {
                Seek::Help(rec) => (rec, true),
                Seek::Clean(rec) => (rec, false),
            };
            if injecting {
                if dirty {
                    self.cleanup(&skey, &s);
                    continue;
                }
                let leaf_key = unsafe { (*Self::node(s.leaf)).key };
                if leaf_key != skey {
                    break false;
                }
                let parent = Self::node(s.parent);
                let child_link = unsafe { (*parent).child_link(&skey) };
                if child_link
                    .compare_exchange(s.leaf, flag(s.leaf), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    injecting = false;
                    victim = s.leaf;
                    if self.cleanup(&skey, &s) {
                        break true;
                    }
                }
            } else if dirty {
                // A pending deletion on our path: if it is ours, finishing
                // it finishes us; either way, help and re-check.
                let ours = s.leaf == victim;
                if self.cleanup(&skey, &s) && ours {
                    break true;
                }
            } else {
                // Clean seek: our flagged victim is no longer reachable —
                // someone completed the deletion.
                break true;
            }
        };
        self.smr.end_op();
        removed
    }

    pub fn contains(&self, key: &K) -> bool {
        let skey = SKey::Fin(*key);
        self.smr.begin_op();
        let found = loop {
            match self.seek(&skey) {
                Seek::Help(rec) => {
                    self.cleanup(&skey, &rec);
                }
                Seek::Clean(rec) => {
                    break unsafe { (*Self::node(rec.leaf)).key } == skey;
                }
            }
        };
        self.smr.end_op();
        found
    }

    /// Finite-key count; quiescent callers only.
    pub fn len(&self) -> usize {
        fn count<K: Ord + Copy>(word: usize) -> usize {
            if unmark(word) == 0 {
                return 0;
            }
            let n = unmark(word) as *const Node<K>;
            unsafe {
                let l = (*n).left.load(Ordering::Relaxed);
                if unmark(l) == 0 {
                    usize::from((*n).key.fin().is_some())
                } else {
                    count::<K>(l) + count::<K>((*n).right.load(Ordering::Relaxed))
                }
            }
        }
        count::<K>(self.root)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy, S: Smr> Drop for NmTree<K, S> {
    fn drop(&mut self) {
        fn free<K: Ord + Copy, S: Smr>(smr: &S, word: usize) {
            if unmark(word) == 0 {
                return;
            }
            let n = unmark(word) as *mut Node<K>;
            unsafe {
                free::<K, S>(smr, (*n).left.load(Ordering::Relaxed));
                free::<K, S>(smr, (*n).right.load(Ordering::Relaxed));
                smr.dealloc_now(n);
            }
        }
        free::<K, S>(&self.smr, self.root);
    }
}

impl<S: Smr> crate::traits::SmrSet<S> for NmTree<u64, S> {
    fn with_smr(smr: S) -> Self {
        NmTree::new(smr)
    }

    fn smr(&self) -> &S {
        NmTree::smr(self)
    }
}

impl<K, S> ConcurrentSet<K> for NmTree<K, S>
where
    K: Ord + Copy + Send + Sync + 'static,
    S: Smr,
{
    fn add(&self, key: K) -> bool {
        NmTree::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        NmTree::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        NmTree::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "NMTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use reclaim::SchemeKind;
    use std::sync::Arc;

    #[test]
    fn semantics_under_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::sequential_semantics(&NmTree::new(kind.build()));
        }
    }

    #[test]
    fn randomized_model_check() {
        for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
            set_tests::randomized_against_model(&NmTree::new(kind.build()), 31 + i as u64, 6_000);
        }
    }

    #[test]
    fn disjoint_stress_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::disjoint_key_stress(Arc::new(NmTree::new(kind.build())), 4);
        }
    }

    #[test]
    fn contended_stress_every_scheme() {
        for kind in SchemeKind::ALL {
            set_tests::contended_key_stress(Arc::new(NmTree::new(kind.build())), 4);
        }
    }

    #[test]
    fn exact_reclamation_when_quiescent() {
        let t = NmTree::new(SchemeKind::Hp.build_with_threshold(8));
        for k in 0..256u64 {
            assert!(t.add(k));
        }
        for k in 0..256u64 {
            assert!(t.remove(&k));
        }
        t.smr().flush();
        assert_eq!(
            t.smr().unreclaimed(),
            0,
            "every unlinked pair must be retired and reclaimed"
        );
        assert!(t.is_empty());
    }
}
