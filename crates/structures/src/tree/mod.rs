//! The Natarajan–Mittal lock-free external BST (PPoPP 2014) — the "NM-tree"
//! of the paper's Figures 7–8 — in a manual-scheme generic variant
//! ([`NmTree`]) and an OrcGC-annotated variant ([`NmTreeOrc`]).
//!
//! External BST: keys live at the leaves, internal nodes route. Deletion
//! *flags* the edge to the victim leaf and *tags* the sibling edge, then
//! swings the grandparent ("ancestor") edge over both — helping threads
//! complete half-done deletions they trip over.

mod nmtree;
mod nmtree_orc;

pub use nmtree::NmTree;
pub use nmtree_orc::NmTreeOrc;

/// Key wrapper adding the three infinity sentinels of the NM-tree
/// construction (`inf0 < inf1 < inf2`, all greater than any finite key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum SKey<K: Ord + Copy> {
    Fin(K),
    Inf0,
    Inf1,
    Inf2,
}

impl<K: Ord + Copy> SKey<K> {
    #[inline]
    pub(crate) fn fin(&self) -> Option<&K> {
        match self {
            SKey::Fin(k) => Some(k),
            _ => None,
        }
    }
}

#[cfg(test)]
mod skey_tests {
    use super::SKey;

    #[test]
    fn infinities_dominate_all_finite_keys() {
        assert!(SKey::Fin(u64::MAX) < SKey::Inf0);
        assert!(SKey::<u64>::Inf0 < SKey::Inf1);
        assert!(SKey::<u64>::Inf1 < SKey::Inf2);
        assert!(SKey::Fin(0u64) < SKey::Fin(1u64));
    }
}
