//! Natarajan–Mittal external BST with OrcGC annotations.
//!
//! Deletion is edge-based: the deleter *flags* (low tag bit) the edge from
//! the parent to the victim leaf, *tags* (second tag bit) the edge to the
//! sibling, and finally swings the ancestor's edge from the successor
//! straight to the sibling — unlinking parent and leaf (and, when helping
//! compressed several pending deletions, a short chain of them) in one
//! CAS. With OrcGC, that CAS is the entire reclamation story: the swing
//! drops the successor subtree's hard link and the unreachable chain
//! collapses by cascade.

use super::SKey;
use crate::ConcurrentSet;
use orc_util::marked::{is_marked as is_flagged, is_tagged, mark as flag, tag, tag_bits, unmark};
use orcgc::{make_orc, OrcAtomic, OrcPtr};

pub(crate) struct Node<K: Ord + Copy + Send + Sync> {
    key: SKey<K>,
    left: OrcAtomic<Node<K>>,
    right: OrcAtomic<Node<K>>,
}

impl<K: Ord + Copy + Send + Sync + 'static> Node<K> {
    fn leaf(key: SKey<K>) -> Self {
        Self {
            key,
            left: OrcAtomic::null(),
            right: OrcAtomic::null(),
        }
    }
}

struct SeekRec<K: Ord + Copy + Send + Sync> {
    /// Deepest node whose edge toward the key is untagged.
    ancestor: OrcPtr<Node<K>>,
    /// The child of `ancestor` on the search path.
    successor: OrcPtr<Node<K>>,
    parent: OrcPtr<Node<K>>,
    leaf: OrcPtr<Node<K>>,
}

/// Natarajan–Mittal lock-free external BST under OrcGC.
pub struct NmTreeOrc<K: Ord + Copy + Send + Sync> {
    /// The R sentinel (key `inf2`); never replaced.
    root: OrcAtomic<Node<K>>,
}

impl<K> NmTreeOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        let l0 = make_orc(Node::leaf(SKey::Inf0));
        let l1 = make_orc(Node::leaf(SKey::Inf1));
        let l2 = make_orc(Node::leaf(SKey::Inf2));
        let s = make_orc(Node {
            key: SKey::Inf1,
            left: OrcAtomic::new(&l0),
            right: OrcAtomic::new(&l1),
        });
        let r = make_orc(Node {
            key: SKey::Inf2,
            left: OrcAtomic::new(&s),
            right: OrcAtomic::new(&l2),
        });
        Self {
            root: OrcAtomic::new(&r),
        }
    }

    fn child_link<'a>(node: &'a Node<K>, key: &SKey<K>) -> &'a OrcAtomic<Node<K>> {
        if key < &node.key {
            &node.left
        } else {
            &node.right
        }
    }

    fn seek(&self, key: &SKey<K>) -> SeekRec<K> {
        let r = self.root.load();
        let s_edge = r.left.load();
        let mut ancestor = r;
        let mut successor = s_edge.clone();
        let mut parent = s_edge;
        // parent_field: the link word of the edge parent -> leaf.
        let mut parent_field = parent.left.load();
        let mut leaf = parent_field.clone();
        loop {
            let Some(leaf_node) = leaf.as_ref() else {
                // Defensive: an external tree never routes to null, but a
                // torn view during helping restarts cleanly.
                return self.seek(key);
            };
            let current_field = Self::child_link(leaf_node, key).load();
            if current_field.is_null() {
                // `leaf` really is a leaf.
                return SeekRec {
                    ancestor,
                    successor,
                    parent,
                    leaf,
                };
            }
            if !is_tagged(parent_field.raw()) {
                ancestor = parent.clone();
                successor = leaf.clone();
            }
            parent = leaf;
            parent_field = current_field.clone();
            leaf = current_field;
        }
    }

    /// Completes a (possibly foreign) pending deletion around `key`.
    /// Returns true if this call's CAS performed the unlink.
    fn cleanup(&self, key: &SKey<K>, s: &SeekRec<K>) -> bool {
        let Some(ancestor) = s.ancestor.as_ref() else {
            return false;
        };
        let Some(parent) = s.parent.as_ref() else {
            return false;
        };
        let (child_link, mut sibling_link) = if key < &parent.key {
            (&parent.left, &parent.right)
        } else {
            (&parent.right, &parent.left)
        };
        if !is_flagged(child_link.load_raw()) {
            // The flag is on the other edge: the victim is the sibling.
            sibling_link = child_link;
        }
        // Tag the sibling edge so it cannot change under the swing.
        loop {
            let w = sibling_link.load_raw();
            if is_tagged(w) {
                break;
            }
            if sibling_link.cas_tag_only(w, tag(w)) {
                break;
            }
        }
        let sibling = sibling_link.load();
        // Swing the ancestor's edge from the (clean) successor to the
        // sibling. The tag is dropped, but a *flag* on the sibling edge
        // (a pending deletion of the sibling itself) must be carried
        // over, or that deletion would lose its injection.
        let carried = if is_flagged(sibling.raw()) {
            orc_util::marked::MARK
        } else {
            0
        };
        let anc_link = Self::child_link(ancestor, key);
        anc_link.cas_tagged(unmark(s.successor.raw()), &sibling, carried)
    }

    pub fn add(&self, key: K) -> bool {
        let skey = SKey::Fin(key);
        let new_leaf = make_orc(Node::leaf(skey));
        loop {
            let s = self.seek(&skey);
            let leaf_node = s.leaf.as_ref().expect("seek returned null leaf");
            if leaf_node.key == skey {
                return false;
            }
            let parent_node = s.parent.as_ref().unwrap();
            let child_link = Self::child_link(parent_node, &skey);
            // Internal node: key = max of the two, left = smaller side.
            let internal = if skey < leaf_node.key {
                make_orc(Node {
                    key: leaf_node.key,
                    left: OrcAtomic::new(&new_leaf),
                    right: OrcAtomic::new(&s.leaf),
                })
            } else {
                make_orc(Node {
                    key: skey,
                    left: OrcAtomic::new(&s.leaf),
                    right: OrcAtomic::new(&new_leaf),
                })
            };
            if child_link.cas_tagged(unmark(s.leaf.raw()), &internal, 0) {
                return true;
            }
            // Edge busy: help a pending deletion of this very leaf.
            let cur = child_link.load_raw();
            if unmark(cur) == unmark(s.leaf.raw()) && tag_bits(cur) != 0 {
                self.cleanup(&skey, &s);
            }
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        let skey = SKey::Fin(*key);
        let mut injecting = true;
        // Guard on the victim leaf: keeps it alive through cleanup mode so
        // the identity comparison below cannot be fooled by address reuse.
        let mut victim: Option<OrcPtr<Node<K>>> = None;
        loop {
            let s = self.seek(&skey);
            let leaf_node = s.leaf.as_ref().expect("seek returned null leaf");
            if injecting {
                if leaf_node.key != skey {
                    return false;
                }
                let parent_node = s.parent.as_ref().unwrap();
                let child_link = Self::child_link(parent_node, &skey);
                let clean = unmark(s.leaf.raw());
                // Injection: flag the edge to the victim leaf.
                if child_link.cas_tag_only(clean, flag(clean)) {
                    injecting = false;
                    victim = Some(s.leaf.clone());
                    if self.cleanup(&skey, &s) {
                        return true;
                    }
                } else {
                    let cur = child_link.load_raw();
                    if unmark(cur) == clean && tag_bits(cur) != 0 {
                        self.cleanup(&skey, &s);
                    }
                }
            } else {
                // Cleanup mode: someone may have finished our deletion.
                let vw = victim.as_ref().map_or(0, |v| unmark(v.raw()));
                if unmark(s.leaf.raw()) != vw {
                    return true;
                }
                if self.cleanup(&skey, &s) {
                    return true;
                }
            }
        }
    }

    pub fn contains(&self, key: &K) -> bool {
        let skey = SKey::Fin(*key);
        let s = self.seek(&skey);
        s.leaf.as_ref().is_some_and(|l| l.key == skey)
    }

    /// Number of finite keys; quiescent callers only (unguarded walk, so
    /// arbitrarily deep trees don't exhaust hazard slots).
    pub fn len(&self) -> usize {
        fn count<K: Ord + Copy + Send + Sync + 'static>(n: Option<&Node<K>>) -> usize {
            let Some(node) = n else { return 0 };
            let l = unsafe { node.left.load_quiescent() };
            if l.is_none() {
                return usize::from(node.key.fin().is_some());
            }
            count(l) + count(unsafe { node.right.load_quiescent() })
        }
        count(unsafe { self.root.load_quiescent() })
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for NmTreeOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for NmTreeOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        NmTreeOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        NmTreeOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        NmTreeOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "NMTree-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&NmTreeOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&NmTreeOrc::new(), 23, 6_000);
    }

    #[test]
    fn ordered_and_reverse_insertions() {
        let t = NmTreeOrc::new();
        for k in 0..200u64 {
            assert!(t.add(k));
        }
        assert_eq!(t.len(), 200);
        for k in (0..200u64).rev() {
            assert!(t.remove(&k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(NmTreeOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(NmTreeOrc::new()), 4);
    }

    #[test]
    fn no_leak_after_churn() {
        let live_before = orc_util::track::global().live_objects();
        {
            let t = NmTreeOrc::new();
            for round in 0..3 {
                for k in 0..400u64 {
                    t.add(k);
                }
                for k in 0..400u64 {
                    t.remove(&k);
                }
                let _ = round;
            }
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        assert!(
            live_after - live_before < 64,
            "NM-tree leaked nodes: {live_before} -> {live_after}"
        );
    }
}
