//! Uniform interfaces over all structures, so the benchmark harness can
//! sweep (structure × scheme × workload) combinations generically.

/// A concurrent multi-producer multi-consumer FIFO queue.
pub trait ConcurrentQueue<T>: Send + Sync {
    /// Appends `item` at the tail.
    fn enqueue(&self, item: T);
    /// Removes and returns the head item, or `None` when empty.
    fn dequeue(&self) -> Option<T>;
    /// The structure's display name (figure legends).
    fn name(&self) -> &'static str;
}

/// A concurrent set of ordered keys (the paper's list/tree/skip-list
/// benchmarks all use integer-keyed sets).
pub trait ConcurrentSet<K>: Send + Sync {
    /// Inserts `key`; `false` if already present.
    fn add(&self, key: K) -> bool;
    /// Removes `key`; `false` if absent.
    fn remove(&self, key: &K) -> bool;
    /// Membership test.
    fn contains(&self, key: &K) -> bool;
    /// The structure's display name (figure legends).
    fn name(&self) -> &'static str;
}

// Boxed structures are still structures: the registry hands out
// `Box<dyn ConcurrentSet<u64>>` and harness code drives it through the
// same trait bounds as a concrete type.
impl<T: ConcurrentQueue<V> + ?Sized, V> ConcurrentQueue<V> for Box<T> {
    fn enqueue(&self, item: V) {
        (**self).enqueue(item)
    }

    fn dequeue(&self) -> Option<V> {
        (**self).dequeue()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: ConcurrentSet<K> + ?Sized, K> ConcurrentSet<K> for Box<T> {
    fn add(&self, key: K) -> bool {
        (**self).add(key)
    }

    fn remove(&self, key: &K) -> bool {
        (**self).remove(key)
    }

    fn contains(&self, key: &K) -> bool {
        (**self).contains(key)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Generic construction of a manual-scheme set from a scheme instance, so
/// harnesses (torture, benches) can sweep the full (structure × scheme)
/// matrix without naming concrete types. Keys are fixed to `u64` — the
/// paper's set benchmarks are all integer-keyed.
pub trait SmrSet<S: reclaim::Smr>: ConcurrentSet<u64> + Sized + 'static {
    /// Builds the structure over the given scheme instance.
    fn with_smr(smr: S) -> Self;
    /// The scheme driving this instance (for `flush`/`unreclaimed`).
    fn smr(&self) -> &S;
}

/// Generic construction of a manual-scheme queue; see [`SmrSet`].
pub trait SmrQueue<S: reclaim::Smr>: ConcurrentQueue<u64> + Sized + 'static {
    /// Builds the structure over the given scheme instance.
    fn with_smr(smr: S) -> Self;
    /// The scheme driving this instance (for `flush`/`unreclaimed`).
    fn smr(&self) -> &S;
}
