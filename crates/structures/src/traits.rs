//! Uniform interfaces over all structures, so the benchmark harness can
//! sweep (structure × scheme × workload) combinations generically.

/// A concurrent multi-producer multi-consumer FIFO queue.
pub trait ConcurrentQueue<T>: Send + Sync {
    /// Appends `item` at the tail.
    fn enqueue(&self, item: T);
    /// Removes and returns the head item, or `None` when empty.
    fn dequeue(&self) -> Option<T>;
    /// The structure's display name (figure legends).
    fn name(&self) -> &'static str;
}

/// A concurrent set of ordered keys (the paper's list/tree/skip-list
/// benchmarks all use integer-keyed sets).
pub trait ConcurrentSet<K>: Send + Sync {
    /// Inserts `key`; `false` if already present.
    fn add(&self, key: K) -> bool;
    /// Removes `key`; `false` if absent.
    fn remove(&self, key: &K) -> bool;
    /// Membership test.
    fn contains(&self, key: &K) -> bool;
    /// The structure's display name (figure legends).
    fn name(&self) -> &'static str;
}
