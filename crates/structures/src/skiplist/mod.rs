//! The skip lists of the paper's Figures 7–8 and the §5 memory-footprint
//! experiment.
//!
//! * [`HsSkipListOrc`] — the Herlihy–Shavit lock-free skip list (the
//!   paper ported the book's Java version to C++ and annotated it).
//!   `contains` descends from the top level without ever restarting; it
//!   tolerates — and therefore *retains* — marked nodes, which keeps
//!   removed nodes linked to the structure and gives the large memory
//!   footprint the paper measured (~19 GB at 10⁶ keys).
//! * [`CrfSkipListOrc`] — the paper's new skip list: the thread that
//!   physically unlinks a node at a level immediately *poisons* that
//!   level's outgoing link, so removed nodes are fully isolated and
//!   unreachable chains cannot form. Any traversal that steps onto a
//!   poisoned link restarts (making lookups lock-free instead of
//!   wait-free) — and the footprint drops by more than an order of
//!   magnitude.

mod crf_orc;
mod hs_orc;

pub use crf_orc::CrfSkipListOrc;
pub use hs_orc::HsSkipListOrc;

/// Maximum number of levels (p = 1/2 geometric tower heights).
pub const MAX_LEVEL: usize = 16;
