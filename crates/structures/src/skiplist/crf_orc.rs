//! CRF-skip — the paper's new lock-free skip list (§5).
//!
//! Identical to the Herlihy–Shavit skip list except for one rule: the
//! thread whose CAS physically unlinks a node at some level immediately
//! **poisons** that level's outgoing link of the removed node. A poisoned
//! node "can no longer reach the data structure": removed nodes are fully
//! isolated, so unreachable nodes never anchor chains to live nodes and
//! OrcGC's linear bound applies strictly. Every traversal — including
//! `contains` — restarts when it steps onto a poisoned link, which demotes
//! lookups from wait-free to lock-free; in exchange the memory footprint
//! collapses (the paper measured 19 GB → <1 GB; `mem_usage_skiplists`
//! reproduces the shape).

use super::MAX_LEVEL;
use crate::ConcurrentSet;
use orc_util::marked::{mark, unmark};
use orc_util::registry;
use orc_util::rng::XorShift64;
use orcgc::{make_orc, OrcAtomic, OrcPtr};
use std::cell::RefCell;

pub(crate) struct Node<K: Send + Sync> {
    key: Option<K>,
    top: usize,
    next: Vec<OrcAtomic<Node<K>>>,
}

impl<K: Send + Sync> Node<K> {
    fn new(key: Option<K>, top: usize) -> Self {
        Self {
            key,
            top,
            next: (0..=top).map(|_| OrcAtomic::null()).collect(),
        }
    }

    #[inline]
    fn link(&self, level: usize) -> &OrcAtomic<Node<K>> {
        &self.next[level]
    }
}

/// The paper's CRF skip list (poisoned isolation) under OrcGC.
pub struct CrfSkipListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
}

/// A pinned position held by [`CrfSkipListOrc::stalled_reader_at_front`].
pub struct StalledReader<K: Send + Sync> {
    _guard: OrcPtr<Node<K>>,
}

thread_local! {
    static LEVEL_RNG: RefCell<Option<XorShift64>> = const { RefCell::new(None) };
}

fn random_level() -> usize {
    LEVEL_RNG.with(|r| {
        let mut r = r.borrow_mut();
        let rng = r.get_or_insert_with(|| XorShift64::for_thread(registry::tid(), 0x0DDB411));
        rng.level_p50(MAX_LEVEL)
    })
}

impl<K> CrfSkipListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        let head = make_orc(Node::new(None, MAX_LEVEL - 1));
        Self {
            head: OrcAtomic::new(&head),
        }
    }

    #[inline]
    fn before(a: &Option<K>, key: &K) -> bool {
        match a {
            None => true,
            Some(k) => k < key,
        }
    }

    fn find(
        &self,
        key: &K,
        preds: &mut Vec<OrcPtr<Node<K>>>,
        succs: &mut Vec<OrcPtr<Node<K>>>,
    ) -> bool {
        // Restarts are the price of poisoning (§5: lookups become
        // lock-free). Under heavy churn, back off between restarts or the
        // traversal can starve behind a steady stream of fresh poisons —
        // on oversubscribed machines a pure yield storm can starve it
        // indefinitely, so escalate to short sleeps.
        let backoff = orc_util::Backoff::new();
        let mut restarts = 0u64;
        'retry: loop {
            if !backoff.is_completed() {
                backoff.snooze();
            } else {
                restarts += 1;
                std::thread::sleep(std::time::Duration::from_micros(50 * restarts.min(20)));
            }
            preds.clear();
            succs.clear();
            preds.resize_with(MAX_LEVEL, OrcPtr::null);
            succs.resize_with(MAX_LEVEL, OrcPtr::null);
            let mut pred = self.head.load();
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = pred.link(level).load();
                loop {
                    if curr.is_poison() {
                        // We wandered onto an isolated node: restart.
                        continue 'retry;
                    }
                    let Some(cnode) = curr.as_ref() else { break };
                    let succ = cnode.link(level).load();
                    if succ.is_poison() {
                        continue 'retry;
                    }
                    if succ.is_marked() {
                        // Snip curr at this level — and, on success,
                        // poison the removed level (CRF isolation).
                        if !pred.link(level).cas_tagged(unmark(curr.raw()), &succ, 0) {
                            continue 'retry;
                        }
                        cnode.link(level).store_poison();
                        curr = pred.link(level).load();
                        continue;
                    }
                    if Self::before(&cnode.key, key) {
                        pred = curr;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[level] = pred.clone();
                succs[level] = curr;
            }
            return succs[0].as_ref().is_some_and(|n| n.key == Some(*key));
        }
    }

    pub fn add(&self, key: K) -> bool {
        let mut preds = Vec::new();
        let mut succs = Vec::new();
        loop {
            if self.find(&key, &mut preds, &mut succs) {
                return false;
            }
            let top = random_level();
            let node = make_orc(Node::new(Some(key), top));
            for (l, link) in node.next.iter().enumerate() {
                link.store_tagged(&succs[l], 0);
            }
            if !preds[0]
                .link(0)
                .cas_tagged(unmark(succs[0].raw()), &node, 0)
            {
                continue;
            }
            for l in 1..=top {
                loop {
                    // `node.link(l)` must agree with the `succs[l]` we are
                    // about to splice in front of BEFORE the pred CAS: the
                    // re-finds below (and at lower levels) refresh `succs`
                    // while the node still carries the successor from an
                    // older find. Publishing with that stale forward
                    // pointer can expose an unmarked edge onto an
                    // already-poisoned node — traversals restart on poison
                    // before the snip-heal branch can run, so the edge is
                    // never repaired and every traversal livelocks. With
                    // the fix-up first, the pred CAS and any snip of
                    // `succs[l]` linearize on the same word, so a stale
                    // successor can never become reachable.
                    let cur = node.link(l).load();
                    if cur.is_marked() || cur.is_poison() {
                        return true; // being removed; stop linking
                    }
                    if !cur.same_object(&succs[l])
                        && !node.link(l).cas_tagged(unmark(cur.raw()), &succs[l], 0)
                    {
                        return true;
                    }
                    if preds[l]
                        .link(l)
                        .cas_tagged(unmark(succs[l].raw()), &node, 0)
                    {
                        break;
                    }
                    self.find(&key, &mut preds, &mut succs);
                }
            }
            return true;
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        let mut preds = Vec::new();
        let mut succs = Vec::new();
        if !self.find(key, &mut preds, &mut succs) {
            return false;
        }
        let victim = succs[0].clone();
        let vnode = victim.as_ref().unwrap();
        for l in (1..=vnode.top).rev() {
            loop {
                let w = vnode.link(l).load_raw();
                if orc_util::marked::is_marked(w) || orcgc::is_poison(w) {
                    break;
                }
                if vnode.link(l).cas_tag_only(w, mark(w)) {
                    break;
                }
            }
        }
        loop {
            let w = vnode.link(0).load_raw();
            if orc_util::marked::is_marked(w) || orcgc::is_poison(w) {
                return false;
            }
            if vnode.link(0).cas_tag_only(w, mark(w)) {
                let _ = self.find(key, &mut preds, &mut succs);
                return true;
            }
        }
    }

    /// Lock-free lookup: restarts whenever it steps onto a poisoned node
    /// (the paper's trade-off for the linear memory bound).
    pub fn contains(&self, key: &K) -> bool {
        let backoff = orc_util::Backoff::new();
        let mut restarts = 0u64;
        'retry: loop {
            if !backoff.is_completed() {
                backoff.snooze();
            } else {
                // See `find`: sleep escalation so a starved lookup lets
                // the poison storm drain instead of feeding it.
                restarts += 1;
                std::thread::sleep(std::time::Duration::from_micros(50 * restarts.min(20)));
            }
            let mut pred = self.head.load();
            let mut found = false;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = pred.link(level).load();
                loop {
                    if curr.is_poison() {
                        continue 'retry;
                    }
                    let Some(cnode) = curr.as_ref() else { break };
                    let succ = cnode.link(level).load();
                    if succ.is_poison() {
                        continue 'retry;
                    }
                    if succ.is_marked() {
                        curr = succ;
                        continue;
                    }
                    if Self::before(&cnode.key, key) {
                        pred = curr;
                        curr = succ;
                    } else {
                        if level == 0 {
                            found = cnode.key == Some(*key);
                        }
                        break;
                    }
                }
            }
            return found;
        }
    }

    /// Bench/test support: a *stalled reader* probe — the guard a
    /// preempted lookup would hold on the first node of the bottom level.
    /// While alive it pins that node, and (through the node's frozen hard
    /// links) whatever chain of removed successors hangs behind it — the
    /// §5 memory-footprint mechanism. Dropping it releases everything.
    pub fn stalled_reader_at_front(&self) -> StalledReader<K> {
        let head = self.head.load();
        let first = head.link(0).load();
        StalledReader { _guard: first }
    }

    /// Unmarked-key count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let head = unsafe { self.head.load_quiescent() }.expect("head");
        let mut cur = unsafe { head.link(0).load_quiescent() };
        while let Some(node) = cur {
            if !orc_util::marked::is_marked(node.link(0).load_raw()) {
                n += 1;
            }
            cur = unsafe { node.link(0).load_quiescent() };
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for CrfSkipListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for CrfSkipListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        CrfSkipListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        CrfSkipListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        CrfSkipListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "CRF-skip-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&CrfSkipListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&CrfSkipListOrc::new(), 43, 6_000);
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(CrfSkipListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(CrfSkipListOrc::new()), 4);
    }

    #[test]
    fn removed_nodes_are_isolated_promptly() {
        // Footprint check: after removing everything and flushing, live
        // objects must return near baseline — the CRF property.
        let live_before = orc_util::track::global().live_objects();
        {
            let s = CrfSkipListOrc::new();
            for k in 0..2_000u64 {
                s.add(k);
            }
            for k in 0..2_000u64 {
                assert!(s.remove(&k));
            }
            assert!(s.is_empty());
        }
        orcgc::flush_thread();
        let live_after = orc_util::track::global().live_objects();
        assert!(
            live_after - live_before < 128,
            "CRF-skip leaked: {live_before} -> {live_after}"
        );
    }
}
