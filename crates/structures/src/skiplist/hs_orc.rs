//! Herlihy–Shavit lock-free skip list under OrcGC.
//!
//! Towers are linked bottom-up; a node is *in the set* iff its bottom
//! level is reachable and unmarked. Removal marks the tower top-down and
//! lets `find` snip marked nodes level by level. `contains` is the book's
//! wait-free descent: it walks straight through marked nodes without ever
//! restarting — which is why the paper could not deploy any manual scheme
//! on this structure (a lookup keeps following links of removed, retired
//! nodes), and why removed-node chains linger (the §5 memory experiment).

use super::MAX_LEVEL;
use crate::ConcurrentSet;
use orc_util::marked::{mark, unmark};
use orc_util::registry;
use orc_util::rng::XorShift64;
use orcgc::{make_orc, OrcAtomic, OrcPtr};
use std::cell::RefCell;

pub(crate) struct Node<K: Send + Sync> {
    /// `None` is the head sentinel (compares below every key).
    key: Option<K>,
    top: usize,
    next: Vec<OrcAtomic<Node<K>>>,
}

impl<K: Send + Sync> Node<K> {
    fn new(key: Option<K>, top: usize) -> Self {
        Self {
            key,
            top,
            next: (0..=top).map(|_| OrcAtomic::null()).collect(),
        }
    }

    #[inline]
    fn link(&self, level: usize) -> &OrcAtomic<Node<K>> {
        &self.next[level]
    }
}

/// Herlihy–Shavit lock-free skip list with OrcGC annotations.
pub struct HsSkipListOrc<K: Send + Sync> {
    head: OrcAtomic<Node<K>>,
}

/// A pinned position held by [`HsSkipListOrc::stalled_reader_at_front`].
pub struct StalledReader<K: Send + Sync> {
    _guard: OrcPtr<Node<K>>,
}

thread_local! {
    static LEVEL_RNG: RefCell<Option<XorShift64>> = const { RefCell::new(None) };
}

fn random_level() -> usize {
    LEVEL_RNG.with(|r| {
        let mut r = r.borrow_mut();
        let rng = r.get_or_insert_with(|| XorShift64::for_thread(registry::tid(), 0xC0FFEE));
        rng.level_p50(MAX_LEVEL)
    })
}

impl<K> HsSkipListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    pub fn new() -> Self {
        let head = make_orc(Node::new(None, MAX_LEVEL - 1));
        Self {
            head: OrcAtomic::new(&head),
        }
    }

    #[inline]
    fn before(a: &Option<K>, key: &K) -> bool {
        match a {
            None => true, // head sentinel
            Some(k) => k < key,
        }
    }

    /// Positions `preds`/`succs` around `key` at every level, snipping
    /// marked nodes on the way. Returns true if an unmarked `key` node
    /// sits at the bottom level.
    fn find(
        &self,
        key: &K,
        preds: &mut Vec<OrcPtr<Node<K>>>,
        succs: &mut Vec<OrcPtr<Node<K>>>,
    ) -> bool {
        'retry: loop {
            preds.clear();
            succs.clear();
            preds.resize_with(MAX_LEVEL, OrcPtr::null);
            succs.resize_with(MAX_LEVEL, OrcPtr::null);
            let mut pred = self.head.load();
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = pred.link(level).load();
                #[allow(clippy::while_let_loop)] // curr is reassigned while borrowed
                loop {
                    let Some(cnode) = curr.as_ref() else { break };
                    let succ = cnode.link(level).load();
                    if succ.is_marked() {
                        // curr is logically deleted at this level: snip.
                        if !pred.link(level).cas_tagged(unmark(curr.raw()), &succ, 0) {
                            continue 'retry;
                        }
                        curr = pred.link(level).load();
                        continue;
                    }
                    if Self::before(&cnode.key, key) {
                        pred = curr;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[level] = pred.clone();
                succs[level] = curr;
            }
            return succs[0].as_ref().is_some_and(|n| n.key == Some(*key));
        }
    }

    pub fn add(&self, key: K) -> bool {
        let mut preds = Vec::new();
        let mut succs = Vec::new();
        loop {
            if self.find(&key, &mut preds, &mut succs) {
                return false;
            }
            let top = random_level();
            let node = make_orc(Node::new(Some(key), top));
            for (l, link) in node.next.iter().enumerate() {
                link.store_tagged(&succs[l], 0);
            }
            // Bottom level first: this is the linearization point.
            if !preds[0]
                .link(0)
                .cas_tagged(unmark(succs[0].raw()), &node, 0)
            {
                continue; // key raced in/out; full retry
            }
            // Link the upper levels, refreshing the window as needed.
            for l in 1..=top {
                loop {
                    if preds[l]
                        .link(l)
                        .cas_tagged(unmark(succs[l].raw()), &node, 0)
                    {
                        break;
                    }
                    // Window moved: refresh and re-point our tower level.
                    self.find(&key, &mut preds, &mut succs);
                    let cur = node.link(l).load();
                    if cur.is_marked() {
                        return true; // concurrently removed; stop linking
                    }
                    if !cur.same_object(&succs[l])
                        && !node.link(l).cas_tagged(unmark(cur.raw()), &succs[l], 0)
                    {
                        return true; // marked under us
                    }
                }
            }
            return true;
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        let mut preds = Vec::new();
        let mut succs = Vec::new();
        if !self.find(key, &mut preds, &mut succs) {
            return false;
        }
        let victim = succs[0].clone();
        let vnode = victim.as_ref().unwrap();
        // Mark the tower top-down (upper levels unconditionally).
        for l in (1..=vnode.top).rev() {
            loop {
                let w = vnode.link(l).load_raw();
                if orc_util::marked::is_marked(w) {
                    break;
                }
                if vnode.link(l).cas_tag_only(w, mark(w)) {
                    break;
                }
            }
        }
        // Bottom level decides who wins the removal.
        loop {
            let w = vnode.link(0).load_raw();
            if orc_util::marked::is_marked(w) {
                return false; // someone else removed it
            }
            if vnode.link(0).cas_tag_only(w, mark(w)) {
                // Physical snip.
                let _ = self.find(key, &mut preds, &mut succs);
                return true;
            }
        }
    }

    /// Wait-free lookup: single descent, never restarts, walks through
    /// marked (possibly unlinked) nodes.
    pub fn contains(&self, key: &K) -> bool {
        let mut pred = self.head.load();
        let mut found = false;
        for level in (0..MAX_LEVEL).rev() {
            let mut curr = pred.link(level).load();
            #[allow(clippy::while_let_loop)] // curr is reassigned while borrowed
            loop {
                let Some(cnode) = curr.as_ref() else { break };
                let succ = cnode.link(level).load();
                if succ.is_marked() {
                    // Skip the deleted node without helping.
                    curr = succ;
                    continue;
                }
                if Self::before(&cnode.key, key) {
                    pred = curr;
                    curr = succ;
                } else {
                    if level == 0 {
                        found = cnode.key == Some(*key);
                    }
                    break;
                }
            }
        }
        found
    }

    /// Bench/test support: a *stalled reader* probe — the guard a
    /// preempted lookup would hold on the first node of the bottom level.
    /// While alive it pins that node, and (through the node's frozen hard
    /// links) whatever chain of removed successors hangs behind it — the
    /// §5 memory-footprint mechanism. Dropping it releases everything.
    pub fn stalled_reader_at_front(&self) -> StalledReader<K> {
        let head = self.head.load();
        let first = head.link(0).load();
        StalledReader { _guard: first }
    }

    /// Unmarked-key count; quiescent callers only.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let head = unsafe { self.head.load_quiescent() }.expect("head");
        let mut cur = unsafe { head.link(0).load_quiescent() };
        while let Some(node) = cur {
            if !orc_util::marked::is_marked(node.link(0).load_raw()) {
                n += 1;
            }
            cur = unsafe { node.link(0).load_quiescent() };
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Copy + Send + Sync + 'static> Default for HsSkipListOrc<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ConcurrentSet<K> for HsSkipListOrc<K>
where
    K: Ord + Copy + Send + Sync + 'static,
{
    fn add(&self, key: K) -> bool {
        HsSkipListOrc::add(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        HsSkipListOrc::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        HsSkipListOrc::contains(self, key)
    }

    fn name(&self) -> &'static str {
        "HS-skip-OrcGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::set_tests;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        set_tests::sequential_semantics(&HsSkipListOrc::new());
    }

    #[test]
    fn randomized_model_check() {
        set_tests::randomized_against_model(&HsSkipListOrc::new(), 41, 6_000);
    }

    #[test]
    fn towers_span_levels() {
        let s = HsSkipListOrc::new();
        for k in 0..2_000u64 {
            assert!(s.add(k));
        }
        assert_eq!(s.len(), 2_000);
        for k in 0..2_000u64 {
            assert!(s.contains(&k));
        }
        for k in (0..2_000u64).step_by(2) {
            assert!(s.remove(&k));
        }
        assert_eq!(s.len(), 1_000);
        for k in 0..2_000u64 {
            assert_eq!(s.contains(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn disjoint_stress() {
        set_tests::disjoint_key_stress(Arc::new(HsSkipListOrc::new()), 4);
    }

    #[test]
    fn contended_stress() {
        set_tests::contended_key_stress(Arc::new(HsSkipListOrc::new()), 4);
    }
}
