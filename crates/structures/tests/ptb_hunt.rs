//! Release-mode hunt for scheme races under the Michael list — born as a
//! targeted PTB/HE hunt, now swept over every manual scheme via
//! [`SchemeKind::ALL`] (the targeted pair gets no special casing; a new
//! scheme is hunted by joining the enum).
use reclaim::{SchemeKind, Smr};
use std::sync::Arc;
use structures::list::MichaelList;

#[test]
fn hunt_every_manual_scheme() {
    for kind in SchemeKind::ALL {
        for _ in 0..3 {
            let set = Arc::new(MichaelList::new(kind.build()));
            hammer_one(set);
        }
    }
}

fn hammer_one<S: Smr>(set: Arc<MichaelList<u64, S>>) {
    for k in 0..250u64 {
        set.add(k * 2);
    }
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                let mut rng = orc_util::rng::XorShift64::for_thread(t, 7);
                for _ in 0..30_000 {
                    let k = rng.next_bounded(500);
                    match rng.next_bounded(10) {
                        0..=4 => {
                            set.add(k);
                        }
                        5..=8 => {
                            set.remove(&k);
                        }
                        _ => {
                            set.contains(&k);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
