//! Aggressive hunt for NM-tree races under the manual schemes: repeated
//! disjoint-range rounds at adjacent boundaries (shared parents).
use reclaim::{HazardPointers, PassThePointer, Smr};
use std::sync::Arc;
use structures::tree::NmTree;

fn run_iter<S: Smr>(set: &Arc<NmTree<u64, S>>, it: usize) {
    let threads = 4;
    let per = 64u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                let base = t as u64 * per;
                for round in 0..8 {
                    for k in base..base + per {
                        assert!(set.add(k), "it{it} round{round}: add({k}) failed");
                    }
                    for k in base..base + per {
                        assert!(set.contains(&k), "it{it} round{round}: contains({k})");
                    }
                    for k in base..base + per {
                        assert!(set.remove(&k), "it{it} round{round}: remove({k})");
                    }
                    for k in base..base + per {
                        assert!(!set.contains(&k), "it{it} round{round}: gone({k})");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn hunt_hp() {
    for it in 0..30 {
        let set = Arc::new(NmTree::new(HazardPointers::new()));
        run_iter(&set, it);
    }
}

#[test]
fn hunt_ptp() {
    for it in 0..30 {
        let set = Arc::new(NmTree::new(PassThePointer::new()));
        run_iter(&set, it);
    }
}

#[test]
fn hunt_orc() {
    use structures::tree::NmTreeOrc;
    for it in 0..30 {
        let set = Arc::new(NmTreeOrc::new());
        let threads = 4;
        let per = 64u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = set.clone();
                std::thread::spawn(move || {
                    let base = t as u64 * per;
                    for round in 0..8 {
                        for k in base..base + per {
                            assert!(set.add(k), "it{it} round{round}: add({k}) failed");
                        }
                        for k in base..base + per {
                            assert!(set.contains(&k), "it{it} round{round}: contains({k})");
                        }
                        for k in base..base + per {
                            assert!(set.remove(&k), "it{it} round{round}: remove({k})");
                        }
                        for k in base..base + per {
                            assert!(!set.contains(&k), "it{it} round{round}: gone({k})");
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[test]
fn hunt_leaky() {
    use reclaim::Leaky;
    for it in 0..30 {
        let set = Arc::new(NmTree::new(Leaky::new()));
        run_iter(&set, it);
    }
}

#[test]
fn hunt_ebr() {
    use reclaim::Ebr;
    for it in 0..30 {
        let set = Arc::new(NmTree::new(Ebr::new()));
        run_iter(&set, it);
    }
}
