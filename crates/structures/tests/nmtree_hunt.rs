//! Aggressive hunt for NM-tree races: repeated disjoint-range rounds at
//! adjacent boundaries (shared parents), swept over every manual scheme
//! via [`SchemeKind::ALL`] — the paper's NM-tree × scheme matrix — plus
//! the OrcGC-annotated variant.
use reclaim::{SchemeKind, Smr};
use std::sync::Arc;
use structures::tree::NmTree;

fn run_iter<S: Smr>(set: &Arc<NmTree<u64, S>>, label: &str, it: usize) {
    let threads = 4;
    let per = 64u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let set = set.clone();
            let label = label.to_string();
            std::thread::spawn(move || {
                let base = t as u64 * per;
                for round in 0..8 {
                    for k in base..base + per {
                        assert!(set.add(k), "{label} it{it} round{round}: add({k}) failed");
                    }
                    for k in base..base + per {
                        assert!(
                            set.contains(&k),
                            "{label} it{it} round{round}: contains({k})"
                        );
                    }
                    for k in base..base + per {
                        assert!(set.remove(&k), "{label} it{it} round{round}: remove({k})");
                    }
                    for k in base..base + per {
                        assert!(!set.contains(&k), "{label} it{it} round{round}: gone({k})");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn hunt_every_manual_scheme() {
    for kind in SchemeKind::ALL {
        for it in 0..12 {
            let set = Arc::new(NmTree::new(kind.build()));
            run_iter(&set, kind.name(), it);
        }
    }
}

#[test]
fn hunt_orc() {
    use structures::tree::NmTreeOrc;
    for it in 0..30 {
        let set = Arc::new(NmTreeOrc::new());
        let threads = 4;
        let per = 64u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = set.clone();
                std::thread::spawn(move || {
                    let base = t as u64 * per;
                    for round in 0..8 {
                        for k in base..base + per {
                            assert!(set.add(k), "it{it} round{round}: add({k}) failed");
                        }
                        for k in base..base + per {
                            assert!(set.contains(&k), "it{it} round{round}: contains({k})");
                        }
                        for k in base..base + per {
                            assert!(set.remove(&k), "it{it} round{round}: remove({k})");
                        }
                        for k in base..base + per {
                            assert!(!set.contains(&k), "it{it} round{round}: gone({k})");
                        }
                    }
                    orcgc::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
