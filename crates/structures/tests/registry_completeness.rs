//! Registry completeness: the guard against silent drift back to
//! hand-enumerated (structure × scheme) lists.
//!
//! Three properties:
//!
//! 1. every [`SchemeKind`] in `ALL` builds, and the built instance's
//!    `Smr::name()` agrees with the kind's;
//! 2. every registry entry's name is unique across all four tables (a
//!    duplicate would make `ORC_STRUCTS` filters and report labels
//!    ambiguous);
//! 3. every structure implementing [`SmrSet`]/[`SmrQueue`] appears in the
//!    registry — enforced by constructing each implementor *through the
//!    trait* and requiring its display name among the registry entries, so
//!    adding an impl without a registry line fails here by name.

use reclaim::{AnySmr, SchemeKind, Smr};
use structures::registry::{self, MatrixFilter, SchemeAxis};
use structures::{ConcurrentQueue, ConcurrentSet, SmrQueue, SmrSet};

#[test]
fn every_scheme_kind_builds() {
    for kind in SchemeKind::ALL {
        let smr = kind.build();
        assert_eq!(smr.name(), kind.name());
        assert_eq!(smr.kind(), kind);
        let smr = kind.build_with_threshold(32);
        assert_eq!(smr.kind(), kind);
    }
}

#[test]
fn registry_names_are_unique() {
    let names = registry::all_structure_names();
    let mut seen = std::collections::HashSet::new();
    for n in &names {
        assert!(seen.insert(n.to_ascii_lowercase()), "duplicate entry {n}");
    }
    assert_eq!(seen.len(), names.len());
}

/// The set of `SmrSet<AnySmr>` implementors, enumerated through the trait:
/// this function is the single place a new implementor must be added, and
/// forgetting *that* shows up as a missing-coverage failure the moment the
/// implementor is used anywhere else with the registry. Each name yielded
/// here must be a registry `SETS` entry.
fn smr_set_impl_names() -> Vec<&'static str> {
    fn name_of<T: SmrSet<AnySmr>>() -> &'static str {
        T::with_smr(SchemeKind::Leaky.build()).name()
    }
    vec![
        name_of::<structures::list::MichaelList<u64, AnySmr>>(),
        name_of::<structures::tree::NmTree<u64, AnySmr>>(),
    ]
}

/// Same for `SmrQueue<AnySmr>` implementors.
fn smr_queue_impl_names() -> Vec<&'static str> {
    fn name_of<T: SmrQueue<AnySmr>>() -> &'static str {
        T::with_smr(SchemeKind::Leaky.build()).name()
    }
    vec![name_of::<structures::queue::MsQueue<u64, AnySmr>>()]
}

#[test]
fn every_smr_structure_is_registered() {
    let set_entries: Vec<_> = registry::SETS.iter().map(|e| e.name).collect();
    for impl_name in smr_set_impl_names() {
        assert!(
            set_entries.contains(&impl_name),
            "{impl_name} implements SmrSet but has no registry::SETS entry"
        );
    }
    assert_eq!(
        set_entries.len(),
        smr_set_impl_names().len(),
        "registry::SETS has an entry with no known SmrSet implementor"
    );

    let queue_entries: Vec<_> = registry::QUEUES.iter().map(|e| e.name).collect();
    for impl_name in smr_queue_impl_names() {
        assert!(
            queue_entries.contains(&impl_name),
            "{impl_name} implements SmrQueue but has no registry::QUEUES entry"
        );
    }
    assert_eq!(queue_entries.len(), smr_queue_impl_names().len());
}

#[test]
fn every_cell_of_the_full_matrix_constructs_and_operates() {
    let f = MatrixFilter::full();
    for cell in f.set_cells() {
        let label = cell.label();
        let (set, smr): (registry::DynSet, Option<AnySmr>) = match cell.make {
            registry::MakeSet::Manual(make) => {
                let smr = cell.scheme.manual().unwrap().build();
                (make(smr.clone()), Some(smr))
            }
            registry::MakeSet::Orc(make) => (make(), None),
        };
        assert!(set.add(7), "{label}");
        assert!(set.contains(&7), "{label}");
        assert!(set.remove(&7), "{label}");
        drop(set);
        if let Some(smr) = smr {
            smr.flush();
        }
    }
    for cell in f.queue_cells() {
        let label = cell.label();
        let (q, smr): (registry::DynQueue, Option<AnySmr>) = match cell.make {
            registry::MakeQueue::Manual(make) => {
                let smr = cell.scheme.manual().unwrap().build();
                (make(smr.clone()), Some(smr))
            }
            registry::MakeQueue::Orc(make) => (make(), None),
        };
        q.enqueue(7);
        assert_eq!(q.dequeue(), Some(7), "{label}");
        assert_eq!(q.dequeue(), None, "{label}");
        drop(q);
        if let Some(smr) = smr {
            smr.flush();
        }
    }
    orcgc::flush_thread();
}

#[test]
fn scheme_axis_covers_manual_plus_orc() {
    assert_eq!(SchemeAxis::ALL.len(), SchemeKind::ALL.len() + 1);
    let manual: Vec<_> = SchemeAxis::ALL.iter().filter_map(|a| a.manual()).collect();
    assert_eq!(manual, SchemeKind::ALL.to_vec());
}
