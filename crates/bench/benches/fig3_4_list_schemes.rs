//! Figures 3 & 4: the Michael–Harris list under every reclamation scheme.
//!
//! Paper workload: 10³ keys, three mixes (50i/50r, 5i/5r/90l, 100l),
//! thread sweep. Series: HP, PTB, PTP, HE, EBR, None (manual-generic
//! list) and OrcGC (annotated list).
//!
//! Expected shape (paper §5): the manual pointer-based schemes (HP, PTB,
//! PTP) cluster together; HE/EBR lead on read-heavy mixes (fewer fences);
//! OrcGC tracks the pack on Intel and pays up to ~50% on write-heavy
//! mixes on AMD (architecture-dependent `xchg` cost).

use reclaim::{SchemeKind, Smr};
use std::sync::Arc;
use structures::list::{MichaelList, MichaelListOrc};
use workloads::throughput::{prefill_set, set_mix, Mix};
use workloads::{print_header, print_row, BenchConfig, Measurement};

fn run_manual<S: Smr>(
    all: &mut Vec<Measurement>,
    cfg: &BenchConfig,
    smr: S,
    series: &str,
    threads: usize,
    mix: Mix,
) {
    let list = Arc::new(MichaelList::new(smr));
    prefill_set(&*list, cfg.keys_small);
    let m = set_mix(
        "fig3-4",
        series,
        list,
        threads,
        cfg.keys_small,
        mix,
        cfg.seconds_per_point,
    );
    print_row(&m);
    all.push(m);
}

fn main() {
    let cfg = BenchConfig::from_env();
    print_header("Figures 3-4: Michael-Harris list x reclamation schemes, 10^3 keys");
    let mut all = Vec::new();
    for &mix in &[Mix::WRITE_HEAVY, Mix::MIXED, Mix::READ_ONLY] {
        for &threads in &cfg.threads {
            for kind in SchemeKind::ALL {
                run_manual(&mut all, &cfg, kind.build(), kind.name(), threads, mix);
            }
            let list = Arc::new(MichaelListOrc::new());
            prefill_set(&*list, cfg.keys_small);
            let m = set_mix(
                "fig3-4",
                "OrcGC",
                list,
                threads,
                cfg.keys_small,
                mix,
                cfg.seconds_per_point,
            );
            print_row(&m);
            all.push(m);
        }
    }
    workloads::record::maybe_dump_json(&all);
}
