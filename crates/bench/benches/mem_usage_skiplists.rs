//! §5 memory-footprint experiment: HS-skip vs CRF-skip.
//!
//! The paper reports ~19 GB for HS-skip against <1 GB for CRF-skip at 10⁶
//! keys. Mechanism: HS-skip's non-restarting lookups walk *through*
//! marked nodes, so removed nodes keep their links — a reader standing on
//! a node pins, through the node's frozen hard links, the whole chain of
//! successors removed behind it. CRF-skip poisons a node's links at the
//! moment of unlinking, so a pinned node pins only itself.
//!
//! At paper scale the pinning comes from real multicore contention (long
//! traversals over 10⁶ keys at 64 threads). On this machine we model it
//! explicitly with the structures' `stalled_reader_at_front` probe (the
//! guard a preempted lookup holds) while a writer removes and re-inserts
//! whole key generations. Reported: peak *tracked live bytes* over the
//! prefilled baseline — exact and allocator-independent.

use std::sync::Arc;
use std::time::Instant;
use structures::skiplist::{CrfSkipListOrc, HsSkipListOrc};
use structures::ConcurrentSet;
use workloads::throughput::prefill_set;
use workloads::{print_header, print_row, BenchConfig, Measurement};

fn run_waves<S: ConcurrentSet<u64>>(set: &S, keys: u64, waves: usize) -> (u64, i64) {
    let baseline = workloads::memprobe::snapshot().live_bytes;
    let mut peak = 0i64;
    let mut ops = 0u64;
    for _ in 0..waves {
        let mut k = 0;
        while k < keys {
            set.remove(&k);
            ops += 1;
            k += 2;
        }
        let mut k = 0;
        while k < keys {
            set.add(k);
            ops += 1;
            k += 2;
            if k % 4096 == 0 {
                peak = peak.max(workloads::memprobe::snapshot().live_bytes - baseline);
            }
        }
        peak = peak.max(workloads::memprobe::snapshot().live_bytes - baseline);
    }
    (ops, peak)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let keys = cfg.keys_large;
    let waves = 3;
    print_header("Memory footprint: HS-skip vs CRF-skip (stalled reader + generation churn)");

    let hs = {
        let set = Arc::new(HsSkipListOrc::new());
        prefill_set(&*set, keys);
        let _pin = set.stalled_reader_at_front();
        let start = Instant::now();
        let (ops, peak) = run_waves(&*set, keys, waves);
        let m = Measurement::new(
            "mem-skip",
            "HS-skip",
            "pinned-churn",
            1,
            ops,
            start.elapsed(),
        )
        .with_mem(peak);
        drop(_pin);
        drop(set);
        orcgc::flush_thread();
        m
    };
    print_row(&hs);

    let crf = {
        let set = Arc::new(CrfSkipListOrc::new());
        prefill_set(&*set, keys);
        let _pin = set.stalled_reader_at_front();
        let start = Instant::now();
        let (ops, peak) = run_waves(&*set, keys, waves);
        let m = Measurement::new(
            "mem-skip",
            "CRF-skip",
            "pinned-churn",
            1,
            ops,
            start.elapsed(),
        )
        .with_mem(peak);
        drop(_pin);
        drop(set);
        orcgc::flush_thread();
        m
    };
    print_row(&crf);

    let (h, c) = (
        hs.mem_bytes.unwrap_or(0).max(1),
        crf.mem_bytes.unwrap_or(0).max(1),
    );
    println!(
        "\n  peak live-byte growth over prefilled baseline: HS-skip {:.2} MB vs CRF-skip {:.2} MB ({:.1}x)",
        h as f64 / 1e6,
        c as f64 / 1e6,
        h as f64 / c as f64
    );
    println!("  (paper, 10^6 keys / 64 HW threads / 20 s runs: ~19 GB vs <1 GB)");
    workloads::record::maybe_dump_json(&[hs, crf]);
}
