//! Criterion microbenchmarks of the reclamation primitives — the ablation
//! behind the paper's §5 discussion of where OrcGC's cost comes from
//! (every published hazard pointer is an `xchg`; `orc_atomic` mutations
//! additionally touch the `_orc` counter word).
//!
//! Series: protect+clear per scheme, retire of an unprotected object per
//! scheme, and OrcAtomic load / store / CAS.

use criterion::{criterion_group, criterion_main, Criterion};
use orcgc::{make_orc, OrcAtomic};
use reclaim::{SchemeKind, Smr};
use std::hint::black_box;
use std::sync::atomic::AtomicPtr;

fn bench_protect<S: Smr>(c: &mut Criterion, smr: &S) {
    let p = smr.alloc(42u64);
    let addr = AtomicPtr::new(p);
    c.bench_function(&format!("protect+clear/{}", smr.name()), |b| {
        b.iter(|| {
            let got = smr.protect_ptr(0, black_box(&addr));
            black_box(got);
            smr.clear(0);
        })
    });
    unsafe { smr.retire(p) };
    smr.flush();
}

fn bench_retire<S: Smr>(c: &mut Criterion, smr: &S) {
    c.bench_function(&format!("alloc+retire/{}", smr.name()), |b| {
        b.iter(|| {
            let p = smr.alloc(black_box(7u64));
            unsafe { smr.retire(p) };
        })
    });
    smr.flush();
}

fn protect_costs(c: &mut Criterion) {
    for kind in SchemeKind::ALL {
        if !kind.reclaims() {
            continue; // the leaky baseline has no protection machinery to measure
        }
        bench_protect(c, &kind.build());
    }
}

fn retire_costs(c: &mut Criterion) {
    for kind in SchemeKind::ALL {
        if !kind.reclaims() {
            continue;
        }
        bench_retire(c, &kind.build());
    }
}

fn orc_primitives(c: &mut Criterion) {
    let a = make_orc(1u64);
    let link = OrcAtomic::new(&a);
    c.bench_function("orc/load", |b| {
        b.iter(|| {
            let g = black_box(&link).load();
            black_box(&g);
        })
    });
    let fresh = make_orc(2u64);
    c.bench_function("orc/store", |b| {
        b.iter(|| {
            black_box(&link).store(black_box(&fresh));
        })
    });
    c.bench_function("orc/cas-fail", |b| {
        b.iter(|| {
            // Expected mismatch: measures the pure CAS path.
            black_box(&link).cas(black_box(&a), black_box(&a));
        })
    });
    c.bench_function("orc/make+drop", |b| {
        b.iter(|| {
            let g = make_orc(black_box(3u64));
            black_box(&g);
        })
    });
    drop(link);
    orcgc::flush_thread();
}

/// The paper's §5 ablation: hazard-pointer publication via `exchange`
/// (what this implementation and the paper's use) versus a plain store
/// followed by a full fence (`mov` + `mfence`). The paper found the
/// relative cost architecture-dependent — the root of OrcGC's Intel/AMD
/// throughput difference.
fn publication_ablation(c: &mut Criterion) {
    use std::sync::atomic::{fence, AtomicUsize, Ordering};
    let slot = AtomicUsize::new(0);
    let val = black_box(0x1000usize);
    c.bench_function("publish/xchg(seqcst-swap)", |b| {
        b.iter(|| {
            slot.swap(black_box(val), Ordering::SeqCst);
            black_box(slot.load(Ordering::Relaxed));
        })
    });
    c.bench_function("publish/mov+mfence", |b| {
        b.iter(|| {
            slot.store(black_box(val), Ordering::Release);
            fence(Ordering::SeqCst);
            black_box(slot.load(Ordering::Relaxed));
        })
    });
    c.bench_function("publish/mov-release-only (copies)", |b| {
        b.iter(|| {
            slot.store(black_box(val), Ordering::Release);
            black_box(slot.load(Ordering::Relaxed));
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = protect_costs, retire_costs, orc_primitives, publication_ablation
}
criterion_main!(benches);
