//! Figures 7 & 8: tree and skip lists, large key range.
//!
//! Paper workload: 10⁶ keys (env `ORC_BENCH_KEYS_LARGE`; default scaled
//! to 10⁵), three mixes, thread sweep. Series: NM-tree under manual
//! schemes (HP, PTP) and OrcGC — "with automatic or manual memory
//! reclamation, whenever the data structure algorithm allows it" — plus
//! HS-skip and CRF-skip, which only OrcGC can serve.
//!
//! Expected shape (paper §5): the NM-tree echoes the list results (OrcGC
//! within ~2x of manual, worst on write-heavy mixes); CRF-skip typically
//! outperforms HS-skip while using far less memory (see
//! `mem_usage_skiplists`).

use reclaim::SchemeKind;
use std::sync::Arc;
use structures::skiplist::{CrfSkipListOrc, HsSkipListOrc};
use structures::tree::{NmTree, NmTreeOrc};
use workloads::throughput::{prefill_set, set_mix, Mix};
use workloads::{print_header, print_row, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    print_header("Figures 7-8: NM-tree and skip lists, large key range");
    let mut all = Vec::new();
    for &mix in &[Mix::WRITE_HEAVY, Mix::MIXED, Mix::READ_ONLY] {
        for &threads in &cfg.threads {
            macro_rules! run {
                ($ctor:expr, $name:expr) => {{
                    let set = Arc::new($ctor);
                    prefill_set(&*set, cfg.keys_large);
                    let m = set_mix(
                        "fig7-8",
                        $name,
                        set,
                        threads,
                        cfg.keys_large,
                        mix,
                        cfg.seconds_per_point,
                    );
                    print_row(&m);
                    all.push(m);
                }};
            }
            // The paper plots HP and PTP as the manual NM-tree series.
            for kind in [SchemeKind::Hp, SchemeKind::Ptp] {
                run!(
                    NmTree::new(kind.build()),
                    &format!("NM-tree+{}", kind.name())
                );
            }
            run!(NmTreeOrc::new(), "NM-tree+OrcGC");
            run!(HsSkipListOrc::new(), "HS-skip+OrcGC");
            run!(CrfSkipListOrc::new(), "CRF-skip+OrcGC");
        }
    }
    workloads::record::maybe_dump_json(&all);
}
