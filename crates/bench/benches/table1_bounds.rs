//! Table 1, measured: maximum retired-but-unreclaimed objects per scheme
//! under the stalled-reader adversary.
//!
//! Readers grab protections (hazard slots / era reservations / epoch pins
//! / OrcPtr guards) and stall; a writer swaps and retires as fast as it
//! can. The observed backlog ceiling reflects each scheme's bound:
//!
//! | Scheme | Claimed bound | Expected observation |
//! |---|---|---|
//! | EBR | ∞ (blocking) | grows linearly with writer ops |
//! | HP / PTB | O(H·t²) | plateaus at the scan threshold (~2Ht+8 per thread) |
//! | HE | O(#L·H·t²) | plateaus highest among the bounded schemes |
//! | PTP / OrcGC | O(H·t) | smallest plateau, independent of writer ops |

use reclaim::{Ebr, HazardEras, HazardPointers, PassTheBuck, PassThePointer, Smr};
use std::time::Duration;
use workloads::bound::{stalled_reader_bound, stalled_reader_bound_orc};
use workloads::{print_header, print_row, Measurement};

fn run<S: Smr + Clone>(smr: &S, readers: usize, ops: u64) -> Measurement {
    let start = std::time::Instant::now();
    let r = stalled_reader_bound(smr, readers, reclaim::MAX_HPS, ops);
    Measurement::new(
        "table1",
        smr.name(),
        "stalled-reader",
        readers + 1,
        r.writer_ops,
        start.elapsed(),
    )
    .with_unreclaimed(r.max_unreclaimed as i64)
}

fn main() {
    let readers = 3;
    let ops: u64 = std::env::var("ORC_BENCH_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    print_header("Table 1 (measured): max unreclaimed objects, stalled readers");
    let mut all = vec![
        run(&Ebr::new(), readers, ops),
        run(&HazardPointers::new(), readers, ops),
        run(&PassTheBuck::new(), readers, ops),
        run(&HazardEras::new(), readers, ops),
        run(&PassThePointer::new(), readers, ops),
    ];
    {
        let start = std::time::Instant::now();
        let r = stalled_reader_bound_orc(readers, reclaim::MAX_HPS, ops);
        all.push(
            Measurement::new(
                "table1",
                "OrcGC",
                "stalled-reader",
                readers + 1,
                r.writer_ops,
                start.elapsed().max(Duration::from_nanos(1)),
            )
            .with_unreclaimed(r.max_unreclaimed as i64),
        );
    }
    for m in &all {
        print_row(m);
    }
    println!(
        "\n  PTP/OrcGC should plateau lowest (O(Ht)); EBR should scale with writer ops (unbounded)."
    );
    workloads::record::maybe_dump_json(&all);
}
