//! Table 1, measured: maximum retired-but-unreclaimed objects per scheme
//! under the stalled-reader adversary.
//!
//! Readers grab protections (hazard slots / era reservations / epoch pins
//! / OrcPtr guards) and stall; a writer swaps and retires as fast as it
//! can. The observed backlog ceiling reflects each scheme's bound:
//!
//! | Scheme | Claimed bound | Expected observation |
//! |---|---|---|
//! | EBR | ∞ (blocking) | grows linearly with writer ops |
//! | HP / PTB | O(H·t²) | plateaus at the scan threshold (~2Ht+8 per thread) |
//! | HE | O(#L·H·t²) | plateaus highest among the bounded schemes |
//! | PTP / OrcGC | O(H·t) | smallest plateau, independent of writer ops |

use std::time::Duration;
use structures::registry::SchemeAxis;
use workloads::bound::stalled_reader_bound_axis;
use workloads::{print_header, print_row, Measurement};

fn run(axis: SchemeAxis, readers: usize, ops: u64) -> Measurement {
    let start = std::time::Instant::now();
    let r = stalled_reader_bound_axis(axis, readers, reclaim::MAX_HPS, ops);
    Measurement::new(
        "table1",
        axis.name(),
        "stalled-reader",
        readers + 1,
        r.writer_ops,
        start.elapsed().max(Duration::from_nanos(1)),
    )
    .with_unreclaimed(r.max_unreclaimed as i64)
}

fn main() {
    let readers = 3;
    let ops: u64 = std::env::var("ORC_BENCH_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    print_header("Table 1 (measured): max unreclaimed objects, stalled readers");
    let all: Vec<Measurement> = SchemeAxis::ALL
        .into_iter()
        // The leaky baseline never reclaims: its "bound" is the op count.
        .filter(|axis| axis.manual().is_none_or(|kind| kind.reclaims()))
        .map(|axis| run(axis, readers, ops))
        .collect();
    for m in &all {
        print_row(m);
    }
    println!(
        "\n  PTP/OrcGC should plateau lowest (O(Ht)); EBR should scale with writer ops (unbounded)."
    );
    workloads::record::maybe_dump_json(&all);
}
