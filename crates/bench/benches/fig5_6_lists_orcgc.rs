//! Figures 5 & 6: four linked lists under OrcGC, 10³ keys.
//!
//! The point of this figure in the paper: apart from Michael's list,
//! these algorithms previously had *no* usable lock-free reclamation —
//! OrcGC makes them comparable on equal terms with nothing but type
//! annotations. Series: Harris (original), Michael, HS (wait-free
//! lookups), TBKP (wait-free list, reconstruction).
//!
//! Expected shape (paper §5): all four cluster; HS leads on lookup-heavy
//! mixes (no restarts), TBKP pays its descriptor overhead.

use std::sync::Arc;
use structures::list::{HarrisListOrc, HsListOrc, MichaelListOrc, TbkpListOrc};
use workloads::throughput::{prefill_set, set_mix, Mix};
use workloads::{print_header, print_row, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    print_header("Figures 5-6: linked lists with OrcGC, 10^3 keys");
    let mut all = Vec::new();
    for &mix in &[Mix::WRITE_HEAVY, Mix::MIXED, Mix::READ_ONLY] {
        for &threads in &cfg.threads {
            macro_rules! run {
                ($ctor:expr, $name:expr) => {{
                    let list = Arc::new($ctor);
                    prefill_set(&*list, cfg.keys_small);
                    let m = set_mix(
                        "fig5-6",
                        $name,
                        list,
                        threads,
                        cfg.keys_small,
                        mix,
                        cfg.seconds_per_point,
                    );
                    print_row(&m);
                    all.push(m);
                }};
            }
            run!(HarrisListOrc::new(), "Harris");
            run!(MichaelListOrc::new(), "Michael");
            run!(HsListOrc::new(), "HS");
            run!(TbkpListOrc::new(), "TBKP");
        }
    }
    workloads::record::maybe_dump_json(&all);
}
