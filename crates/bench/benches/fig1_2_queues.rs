//! Figures 1 & 2: lock-free and wait-free queues, enqueue/dequeue pairs.
//!
//! Paper workload: 10⁷ pairs per run (env `ORC_BENCH_OPS`, default scaled
//! down), thread sweep, throughput normalized against the leaky
//! Michael–Scott baseline. Series: MS queue without reclamation (None),
//! MS/LCRQ/KP/Turn queues under OrcGC.
//!
//! Expected shape (paper §5): OrcGC costs the most at 1 thread (extra
//! counter code), can *help* at low contention on MS (natural back-off),
//! and converges as contention dominates; LCRQ stays fastest overall.

use reclaim::SchemeKind;
use std::sync::Arc;
use structures::queue::{KpQueueOrc, LcrqOrc, MsQueue, MsQueueOrc, TurnQueueOrc};
use workloads::throughput::queue_pairs;
use workloads::{print_header, print_row, BenchConfig, Measurement};

fn main() {
    let cfg = BenchConfig::from_env();
    print_header("Figures 1-2: queues, enqueue/dequeue pairs");
    let mut all: Vec<Measurement> = Vec::new();
    for &threads in &cfg.threads {
        let pairs = cfg.queue_pairs;
        let baseline = {
            let q = Arc::new(MsQueue::new(SchemeKind::Leaky.build()));
            let m = queue_pairs("fig1-2", "MSQueue+None", q, threads, pairs);
            print_row(&m);
            let mops = m.mops;
            all.push(m);
            mops
        };
        let m = queue_pairs(
            "fig1-2",
            "MSQueue+OrcGC",
            Arc::new(MsQueueOrc::new()),
            threads,
            pairs,
        );
        print_row(&m);
        all.push(m);
        let m = queue_pairs(
            "fig1-2",
            "LCRQ+OrcGC",
            Arc::new(LcrqOrc::new()),
            threads,
            pairs,
        );
        print_row(&m);
        all.push(m);
        let m = queue_pairs(
            "fig1-2",
            "KPQueue+OrcGC",
            Arc::new(KpQueueOrc::new()),
            threads,
            pairs,
        );
        print_row(&m);
        all.push(m);
        let m = queue_pairs(
            "fig1-2",
            "TurnQueue+OrcGC",
            Arc::new(TurnQueueOrc::new()),
            threads,
            pairs,
        );
        print_row(&m);
        all.push(m);
        // Normalized view (the paper's y-axis).
        println!("  normalized vs MSQueue+None @ {threads} threads:");
        for m in all.iter().rev().take(4).collect::<Vec<_>>().iter().rev() {
            println!("    {:<20} {:.2}x", m.series, m.mops / baseline);
        }
    }
    workloads::record::maybe_dump_json(&all);
}
