// bench crate has no library code
