//! Teardown discipline, per scheme: after a churn, `flush()` must drive
//! `unreclaimed()` to exactly 0 (the leaky baseline: only at drop), and
//! dropping the structure + the last scheme handle must return every
//! allocation — verified against the global allocation ledger.
//!
//! One test per scheme so a regression names its culprit directly.

use orc_util::track::Ledger;
use reclaim::{Ebr, HazardEras, HazardPointers, Leaky, PassTheBuck, PassThePointer, Smr};
use structures::list::MichaelList;

/// Churn that forces real retire traffic: insert, delete, re-insert.
fn churn<S: Smr + Clone>(smr: S) {
    let ledger = Ledger::open();
    let name = smr.name();
    {
        let list = MichaelList::new(smr.clone());
        for round in 0..3u64 {
            for k in 0..256u64 {
                assert!(list.add(k), "{name}: add({k}) failed in round {round}");
            }
            for k in 0..256u64 {
                assert!(
                    list.remove(&k),
                    "{name}: remove({k}) failed in round {round}"
                );
            }
        }
        list.smr().flush();
        if name != "None" {
            assert_eq!(
                list.smr().unreclaimed(),
                0,
                "{name}: quiescent flush must reclaim every retired node"
            );
        } else {
            // The leaky baseline holds everything until teardown.
            assert_eq!(list.smr().unreclaimed(), 3 * 256);
        }
    }
    drop(smr);
    ledger.assert_balanced(name);
}

#[test]
fn hp_teardown_is_clean() {
    churn(HazardPointers::new());
}

#[test]
fn ptb_teardown_is_clean() {
    churn(PassTheBuck::new());
}

#[test]
fn ptp_teardown_is_clean() {
    churn(PassThePointer::new());
}

#[test]
fn he_teardown_is_clean() {
    churn(HazardEras::new());
}

#[test]
fn ebr_teardown_is_clean() {
    churn(Ebr::new());
}

#[test]
fn leaky_teardown_is_clean() {
    churn(Leaky::new());
}
