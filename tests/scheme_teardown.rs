//! Teardown discipline, per (scheme × structure) cell: after a churn,
//! `flush()` must drive `unreclaimed()` to exactly 0 (the leaky
//! baseline: only at drop), and dropping the structure + the last scheme
//! handle must return every allocation — verified against the global
//! allocation ledger.
//!
//! Sweeps every manual scheme over every registered generic set, so a
//! new scheme or structure is teardown-tested by registration alone; the
//! failure message names the cell directly.

use orc_util::track::Ledger;
use orcgc_suite::prelude::*;
use structures::registry::SETS;

/// Churn that forces real retire traffic: insert, delete, re-insert.
fn churn(kind: SchemeKind, entry: &structures::registry::SetEntry) {
    let label = format!("{kind}/{}", entry.name);
    let ledger = Ledger::open();
    let smr = kind.build();
    {
        let set = (entry.make)(smr.clone());
        for round in 0..3u64 {
            for k in 0..256u64 {
                assert!(set.add(k), "{label}: add({k}) failed in round {round}");
            }
            for k in 0..256u64 {
                assert!(
                    set.remove(&k),
                    "{label}: remove({k}) failed in round {round}"
                );
            }
        }
        smr.flush();
        if kind.reclaims() {
            assert_eq!(
                smr.unreclaimed(),
                0,
                "{label}: quiescent flush must reclaim every retired node"
            );
        } else {
            // The leaky baseline holds everything until teardown. At
            // least one retired node per removal — tree-shaped structures
            // retire internal routing nodes on top.
            assert!(smr.unreclaimed() >= 3 * 256, "{label}");
        }
    }
    drop(smr);
    ledger.assert_balanced(&label);
}

#[test]
fn teardown_is_clean_for_every_cell() {
    for kind in SchemeKind::ALL {
        for entry in SETS {
            churn(kind, entry);
        }
    }
}
