//! End-to-end reclamation properties across crates: exact leak-freedom,
//! destructor-exactly-once, the linear bound under adversarial stalls,
//! and the paper's §2 "obstacle" behaviors that only OrcGC supports.

use orcgc::{make_orc, OrcAtomic};
use orcgc_suite::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use structures::list::HsListOrc;
use structures::skiplist::CrfSkipListOrc;

struct Probe(Arc<AtomicUsize>);
impl Drop for Probe {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn destructors_run_exactly_once_under_concurrency() {
    let drops = Arc::new(AtomicUsize::new(0));
    let made = Arc::new(AtomicUsize::new(0));
    struct Node {
        _p: Probe,
        next: OrcAtomic<Node>,
    }
    let root: Arc<OrcAtomic<Node>> = Arc::new(OrcAtomic::null());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let root = root.clone();
            let drops = drops.clone();
            let made = made.clone();
            std::thread::spawn(move || {
                for _ in 0..2_500 {
                    // Push a node whose `next` adopts the current chain
                    // head, then occasionally chop the chain.
                    let n = make_orc(Node {
                        _p: Probe(drops.clone()),
                        next: OrcAtomic::null(),
                    });
                    made.fetch_add(1, Ordering::SeqCst);
                    loop {
                        let cur = root.load();
                        n.next.store_tagged(&cur, 0);
                        if root.cas(&cur, &n) {
                            break;
                        }
                    }
                    if made.load(Ordering::Relaxed).is_multiple_of(64) {
                        root.store_null(); // cascade-free the whole chain
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    root.store_null();
    orcgc::flush_thread();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        made.load(Ordering::SeqCst),
        "every node must be dropped exactly once"
    );
}

#[test]
fn paper_obstacle_2_traversal_of_retired_nodes() {
    // HS list lookups keep walking links of removed nodes. Hammer removal
    // under active lookups; absence of crashes/UB plus correct answers is
    // the property.
    let list = Arc::new(HsListOrc::new());
    for k in 0..300u64 {
        list.add(k);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let list = list.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..300u64 {
                        let _ = list.contains(&k);
                    }
                    checks += 1;
                }
                orcgc::flush_thread();
                checks
            })
        })
        .collect();
    for _ in 0..40 {
        for k in 0..300u64 {
            list.remove(&k);
        }
        for k in 0..300u64 {
            list.add(k);
        }
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    orcgc::flush_thread();
}

#[test]
fn paper_obstacle_3_reinsertion_of_unlinked_objects() {
    // An object can leave the structure and come back while guarded —
    // OrcGC must neither free it early nor leak it.
    let drops = Arc::new(AtomicUsize::new(0));
    struct Cell {
        _p: Probe,
    }
    let slot_a: OrcAtomic<Cell> = OrcAtomic::null();
    let slot_b: OrcAtomic<Cell> = OrcAtomic::null();
    let obj = make_orc(Cell {
        _p: Probe(drops.clone()),
    });
    slot_a.store(&obj);
    drop(obj);
    for _ in 0..100 {
        // Move the object back and forth: unlink from A (count 0,
        // retired) while a guard revives it into B, and vice versa.
        let g = slot_a.load();
        slot_a.store_null();
        slot_b.store(&g);
        drop(g);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        let g = slot_b.load();
        slot_b.store_null();
        slot_a.store(&g);
        drop(g);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }
    slot_a.store_null();
    orcgc::flush_thread();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn linear_bound_survives_structure_level_stress() {
    // Run a write-heavy CRF-skip workload and check the OrcGC backlog
    // stays small relative to operations performed.
    let set = Arc::new(CrfSkipListOrc::new());
    for k in 0..512u64 {
        set.add(k);
    }
    orcgc::domain().reset_max_unreclaimed();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let set = set.clone();
            std::thread::spawn(move || {
                let mut rng = orc_util::rng::XorShift64::for_thread(t, 77);
                for _ in 0..10_000 {
                    let k = rng.next_bounded(512);
                    if rng.next_bounded(2) == 0 {
                        set.add(k);
                    } else {
                        set.remove(&k);
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let max = orcgc::domain().max_unreclaimed();
    assert!(
        max < 5_000,
        "backlog {max} is far beyond the linear regime for 40k ops"
    );
}

#[test]
fn manual_schemes_reclaim_exactly_when_quiescent() {
    for kind in SchemeKind::ALL {
        if !kind.reclaims() {
            continue;
        }
        for entry in structures::registry::SETS {
            let smr = kind.build();
            let set = (entry.make)(smr.clone());
            for round in 0..3 {
                for k in 0..200u64 {
                    assert!(set.add(k + round * 1000));
                }
                for k in 0..200u64 {
                    assert!(set.remove(&(k + round * 1000)));
                }
            }
            drop(set);
            smr.flush();
            assert_eq!(smr.unreclaimed(), 0, "{kind}/{}", entry.name);
        }
    }
}
