//! Cross-crate integration: every (structure × scheme) combination must
//! implement the same abstract set/queue, byte for byte.

use orcgc_suite::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use structures::list::{HarrisListOrc, HsListOrc, MichaelList, MichaelListOrc, TbkpListOrc};
use structures::queue::{KpQueueOrc, LcrqOrc, MsQueue, MsQueueOrc, TurnQueueOrc};
use structures::skiplist::{CrfSkipListOrc, HsSkipListOrc};
use structures::tree::{NmTree, NmTreeOrc};

/// Applies an identical randomized op sequence to every set and to a
/// BTreeSet model; all answers must match at every step.
fn lockstep(sets: Vec<Box<dyn ConcurrentSet<u64>>>, seed: u64, ops: usize) {
    let mut model = BTreeSet::new();
    let mut rng = orc_util::rng::XorShift64::new(seed);
    for step in 0..ops {
        let key = rng.next_bounded(128);
        let op = rng.next_bounded(3);
        let expected = match op {
            0 => model.insert(key),
            1 => model.remove(&key),
            _ => model.contains(&key),
        };
        for set in &sets {
            let got = match op {
                0 => set.add(key),
                1 => set.remove(&key),
                _ => set.contains(&key),
            };
            assert_eq!(
                got,
                expected,
                "{} diverged at step {step} (op {op}, key {key})",
                set.name()
            );
        }
    }
}

#[test]
fn all_eleven_set_variants_agree() {
    let sets: Vec<Box<dyn ConcurrentSet<u64>>> = vec![
        Box::new(MichaelList::new(HazardPointers::new())),
        Box::new(MichaelList::new(PassTheBuck::new())),
        Box::new(MichaelList::new(PassThePointer::new())),
        Box::new(MichaelList::new(HazardEras::new())),
        Box::new(MichaelList::new(Ebr::new())),
        Box::new(MichaelList::new(Leaky::new())),
        Box::new(MichaelListOrc::new()),
        Box::new(HarrisListOrc::new()),
        Box::new(HsListOrc::new()),
        Box::new(TbkpListOrc::new()),
        Box::new(NmTree::new(HazardPointers::new())),
        Box::new(NmTree::new(PassThePointer::new())),
        Box::new(NmTreeOrc::new()),
        Box::new(HsSkipListOrc::new()),
        Box::new(CrfSkipListOrc::new()),
    ];
    lockstep(sets, 0xFEED, 6_000);
    orcgc::flush_thread();
}

#[test]
fn all_queue_variants_agree() {
    let queues: Vec<Box<dyn ConcurrentQueue<u64>>> = vec![
        Box::new(MsQueue::new(HazardPointers::new())),
        Box::new(MsQueue::new(PassThePointer::new())),
        Box::new(MsQueueOrc::new()),
        Box::new(LcrqOrc::new()),
        Box::new(KpQueueOrc::new()),
        Box::new(TurnQueueOrc::new()),
    ];
    let mut model = std::collections::VecDeque::new();
    let mut rng = orc_util::rng::XorShift64::new(0xCAFE);
    for _ in 0..5_000 {
        if rng.next_bounded(2) == 0 {
            let v = rng.next_bounded(1 << 40);
            model.push_back(v);
            for q in &queues {
                q.enqueue(v);
            }
        } else {
            let expected = model.pop_front();
            for q in &queues {
                assert_eq!(q.dequeue(), expected, "{} diverged", q.name());
            }
        }
    }
    orcgc::flush_thread();
}

#[test]
fn mixed_structures_share_the_global_domain() {
    // Different OrcGC structures coexisting: operations interleave in one
    // domain without stepping on each other's hazard slots.
    let list = Arc::new(MichaelListOrc::new());
    let tree = Arc::new(NmTreeOrc::new());
    let queue = Arc::new(MsQueueOrc::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let list = list.clone();
            let tree = tree.clone();
            let queue = queue.clone();
            std::thread::spawn(move || {
                let mut rng = orc_util::rng::XorShift64::for_thread(t, 5);
                for i in 0..4_000u64 {
                    let k = rng.next_bounded(256);
                    match i % 6 {
                        0 => {
                            list.add(k);
                        }
                        1 => {
                            tree.add(k);
                        }
                        2 => {
                            queue.enqueue(k);
                        }
                        3 => {
                            list.remove(&k);
                        }
                        4 => {
                            tree.remove(&k);
                        }
                        _ => {
                            queue.dequeue();
                        }
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
