//! Cross-crate integration: every cell of the (structure × scheme)
//! registry matrix must implement the same abstract set/queue, byte for
//! byte. The cell list comes from [`MatrixFilter::full`], so a structure
//! or scheme added to the registry joins the lockstep the moment it is
//! registered — every manual scheme on every generic structure, plus all
//! the OrcGC-annotated variants.

use orcgc_suite::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use structures::list::MichaelListOrc;
use structures::queue::MsQueueOrc;
use structures::registry::{DynQueue, DynSet};
use structures::tree::NmTreeOrc;

/// Applies an identical randomized op sequence to every set and to a
/// BTreeSet model; all answers must match at every step.
fn lockstep(cells: Vec<(String, DynSet)>, seed: u64, ops: usize) {
    let mut model = BTreeSet::new();
    let mut rng = orc_util::rng::XorShift64::new(seed);
    for step in 0..ops {
        let key = rng.next_bounded(128);
        let op = rng.next_bounded(3);
        let expected = match op {
            0 => model.insert(key),
            1 => model.remove(&key),
            _ => model.contains(&key),
        };
        for (label, set) in &cells {
            let got = match op {
                0 => set.add(key),
                1 => set.remove(&key),
                _ => set.contains(&key),
            };
            assert_eq!(
                got, expected,
                "{label} diverged at step {step} (op {op}, key {key})"
            );
        }
    }
}

#[test]
fn every_set_cell_agrees() {
    let cells: Vec<(String, DynSet)> = MatrixFilter::full()
        .set_cells()
        .iter()
        .map(|c| (c.label(), c.build()))
        .collect();
    assert!(
        cells.len() > SchemeKind::ALL.len(),
        "registry matrix suspiciously small"
    );
    lockstep(cells, 0xFEED, 6_000);
    orcgc::flush_thread();
}

#[test]
fn every_queue_cell_agrees() {
    let queues: Vec<(String, DynQueue)> = MatrixFilter::full()
        .queue_cells()
        .iter()
        .map(|c| (c.label(), c.build()))
        .collect();
    let mut model = std::collections::VecDeque::new();
    let mut rng = orc_util::rng::XorShift64::new(0xCAFE);
    for _ in 0..5_000 {
        if rng.next_bounded(2) == 0 {
            let v = rng.next_bounded(1 << 40);
            model.push_back(v);
            for (_, q) in &queues {
                q.enqueue(v);
            }
        } else {
            let expected = model.pop_front();
            for (label, q) in &queues {
                assert_eq!(q.dequeue(), expected, "{label} diverged");
            }
        }
    }
    orcgc::flush_thread();
}

#[test]
fn mixed_structures_share_the_global_domain() {
    // Different OrcGC structures coexisting: operations interleave in one
    // domain without stepping on each other's hazard slots.
    let list = Arc::new(MichaelListOrc::new());
    let tree = Arc::new(NmTreeOrc::new());
    let queue = Arc::new(MsQueueOrc::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let list = list.clone();
            let tree = tree.clone();
            let queue = queue.clone();
            std::thread::spawn(move || {
                let mut rng = orc_util::rng::XorShift64::for_thread(t, 5);
                for i in 0..4_000u64 {
                    let k = rng.next_bounded(256);
                    match i % 6 {
                        0 => {
                            list.add(k);
                        }
                        1 => {
                            tree.add(k);
                        }
                        2 => {
                            queue.enqueue(k);
                        }
                        3 => {
                            list.remove(&k);
                        }
                        4 => {
                            tree.remove(&k);
                        }
                        _ => {
                            queue.dequeue();
                        }
                    }
                }
                orcgc::flush_thread();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
