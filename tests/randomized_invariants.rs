//! Randomized property tests over the core invariants: the `_orc` word
//! encoding, marked-pointer algebra, DWCAS packing, and sequential
//! equivalence of sets/queues against model collections under arbitrary
//! operation sequences.
//!
//! Driven by the in-tree [`orc_util::rng::XorShift64`] generator instead
//! of `proptest`, so the workspace builds and tests with zero external
//! dependencies (see README "Building offline & CI"). Seeds are fixed,
//! so every run exercises the same deterministic case set.

use orc_util::rng::XorShift64;
use orcgc::word;
use orcgc_suite::prelude::*;
use structures::list::{HarrisListOrc, MichaelListOrc};
use structures::queue::{LcrqOrc, MsQueueOrc};
use structures::skiplist::CrfSkipListOrc;
use structures::tree::NmTreeOrc;

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum SetOp {
    Add(u64),
    Remove(u64),
    Contains(u64),
}

fn set_ops(rng: &mut XorShift64, max_key: u64) -> Vec<SetOp> {
    let len = rng.next_bounded(200) as usize;
    (0..len)
        .map(|_| {
            let k = rng.next_bounded(max_key);
            match rng.next_bounded(3) {
                0 => SetOp::Add(k),
                1 => SetOp::Remove(k),
                _ => SetOp::Contains(k),
            }
        })
        .collect()
}

fn check_set<S: ConcurrentSet<u64>>(set: &S, ops: &[SetOp]) {
    let mut model = std::collections::BTreeSet::new();
    for op in ops {
        match op {
            SetOp::Add(k) => assert_eq!(set.add(*k), model.insert(*k), "add({k})"),
            SetOp::Remove(k) => assert_eq!(set.remove(k), model.remove(k), "remove({k})"),
            SetOp::Contains(k) => assert_eq!(set.contains(k), model.contains(k), "contains({k})"),
        }
    }
}

// ---- the _orc word encoding --------------------------------------

#[test]
fn orc_counter_roundtrips() {
    let mut rng = XorShift64::new(0x0AC1);
    for _ in 0..CASES {
        let incs = rng.next_bounded(2000) as u32;
        let decs = rng.next_bounded(2000) as u32;
        let mut w = word::ORC_INIT;
        for _ in 0..incs {
            w = w.wrapping_add(word::SEQ + 1);
        }
        for _ in 0..decs {
            w = w.wrapping_add(word::SEQ - 1);
        }
        assert_eq!(word::link_count(w), incs as i64 - decs as i64);
        assert_eq!(word::seq(w), (incs + decs) as u64);
        assert_eq!(word::is_zero_unclaimed(w), incs == decs);
    }
}

#[test]
fn orc_retired_bit_is_orthogonal() {
    let mut rng = XorShift64::new(0x0AC2);
    for _ in 0..CASES {
        let incs = rng.next_bounded(1000) as u32;
        let mut w = word::ORC_INIT;
        for _ in 0..incs {
            w = w.wrapping_add(word::SEQ + 1);
        }
        let claimed = w + word::BRETIRED;
        assert_eq!(word::link_count(claimed), word::link_count(w));
        assert_eq!(word::seq(claimed), word::seq(w));
        assert!(!word::is_zero_unclaimed(claimed));
    }
}

// ---- marked pointers ---------------------------------------------

#[test]
fn marks_never_change_the_target() {
    use orc_util::marked::*;
    let mut rng = XorShift64::new(0x0AC3);
    for _ in 0..CASES {
        let addr = (rng.next_u64() as usize % (usize::MAX / 8)) << 3;
        assert_eq!(unmark(mark(addr)), addr);
        assert_eq!(unmark(tag(addr)), addr);
        assert_eq!(unmark(tag(mark(addr))), addr);
        assert!(is_marked(mark(addr)));
        assert!(is_tagged(tag(addr)));
        assert!(!is_marked(tag(addr)) || addr & 1 != 0);
    }
}

#[test]
fn with_tag_is_idempotent() {
    use orc_util::marked::*;
    let mut rng = XorShift64::new(0x0AC4);
    for _ in 0..CASES {
        let addr = (rng.next_u64() as usize % (usize::MAX / 8)) << 3;
        let bits = rng.next_bounded(4) as usize;
        let w = with_tag(addr, bits);
        assert_eq!(with_tag(w, bits), w);
        assert_eq!(tag_bits(w), bits);
        assert_eq!(unmark(w), addr);
    }
}

// ---- DWCAS packing -------------------------------------------------

#[test]
fn dwcas_pack_unpack() {
    let mut rng = XorShift64::new(0x0AC5);
    for _ in 0..CASES {
        let (lo, hi) = (rng.next_u64(), rng.next_u64());
        let v = orc_util::dwcas::pack(lo, hi);
        assert_eq!(orc_util::dwcas::unpack(v), (lo, hi));
    }
}

#[test]
fn dwcas_cell_semantics() {
    use orc_util::dwcas::{pack, AtomicU128};
    let mut rng = XorShift64::new(0x0AC6);
    for _ in 0..CASES {
        let init = pack(rng.next_u64(), rng.next_u64());
        let new = pack(rng.next_u64(), rng.next_u64());
        let cell = AtomicU128::new(init);
        assert_eq!(cell.load(), init);
        let (prev, ok) = cell.compare_exchange(init, new);
        assert!(ok);
        assert_eq!(prev, init);
        let (prev2, ok2) = cell.compare_exchange(init, new);
        assert_eq!(ok2, init == new);
        assert_eq!(prev2, new);
    }
}

// ---- sequential equivalence of every set -------------------------

#[test]
fn michael_list_orc_matches_model() {
    let mut rng = XorShift64::new(0x0AC7);
    for _ in 0..CASES {
        let ops = set_ops(&mut rng, 64);
        check_set(&MichaelListOrc::new(), &ops);
        orcgc::flush_thread();
    }
}

#[test]
fn harris_list_orc_matches_model() {
    let mut rng = XorShift64::new(0x0AC8);
    for _ in 0..CASES {
        let ops = set_ops(&mut rng, 64);
        check_set(&HarrisListOrc::new(), &ops);
        orcgc::flush_thread();
    }
}

#[test]
fn nm_tree_orc_matches_model() {
    let mut rng = XorShift64::new(0x0AC9);
    for _ in 0..CASES {
        let ops = set_ops(&mut rng, 64);
        check_set(&NmTreeOrc::new(), &ops);
        orcgc::flush_thread();
    }
}

#[test]
fn crf_skip_matches_model() {
    let mut rng = XorShift64::new(0x0ACA);
    for _ in 0..CASES {
        let ops = set_ops(&mut rng, 64);
        check_set(&CrfSkipListOrc::new(), &ops);
        orcgc::flush_thread();
    }
}

#[test]
fn every_manual_set_cell_matches_model() {
    let mut rng = XorShift64::new(0x0ACB);
    // Fewer cases per cell than the single-structure tests above: the
    // registry sweep multiplies by (schemes × structures).
    for kind in SchemeKind::ALL {
        for entry in structures::registry::SETS {
            for _ in 0..CASES / 4 {
                let ops = set_ops(&mut rng, 64);
                check_set(&(entry.make)(kind.build()), &ops);
            }
        }
    }
}

// ---- queues against VecDeque --------------------------------------

fn check_queue<Q: ConcurrentQueue<u64>>(q: &Q, rng: &mut XorShift64) {
    let mut model = std::collections::VecDeque::new();
    let len = rng.next_bounded(200);
    for _ in 0..len {
        if rng.next_bounded(2) == 0 {
            let v = rng.next_bounded(1000);
            q.enqueue(v);
            model.push_back(v);
        } else {
            assert_eq!(q.dequeue(), model.pop_front());
        }
    }
}

#[test]
fn ms_queue_orc_matches_model() {
    let mut rng = XorShift64::new(0x0ACD);
    for _ in 0..CASES {
        check_queue(&MsQueueOrc::new(), &mut rng);
        orcgc::flush_thread();
    }
}

#[test]
fn lcrq_matches_model() {
    let mut rng = XorShift64::new(0x0ACE);
    for _ in 0..CASES {
        check_queue(&LcrqOrc::new(), &mut rng);
        orcgc::flush_thread();
    }
}
