//! Property-based tests (proptest) over the core invariants:
//! the `_orc` word encoding, marked-pointer algebra, DWCAS packing, and
//! sequential equivalence of sets/queues against model collections under
//! arbitrary operation sequences.

use orcgc::word;
use orcgc_suite::prelude::*;
use proptest::prelude::*;
use structures::list::{HarrisListOrc, MichaelList, MichaelListOrc};
use structures::queue::{LcrqOrc, MsQueueOrc};
use structures::skiplist::CrfSkipListOrc;
use structures::tree::NmTreeOrc;

#[derive(Debug, Clone)]
enum SetOp {
    Add(u64),
    Remove(u64),
    Contains(u64),
}

fn set_ops(max_key: u64) -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        (0u64..max_key, 0u8..3).prop_map(|(k, op)| match op {
            0 => SetOp::Add(k),
            1 => SetOp::Remove(k),
            _ => SetOp::Contains(k),
        }),
        0..200,
    )
}

fn check_set<S: ConcurrentSet<u64>>(set: &S, ops: &[SetOp]) {
    let mut model = std::collections::BTreeSet::new();
    for op in ops {
        match op {
            SetOp::Add(k) => assert_eq!(set.add(*k), model.insert(*k), "add({k})"),
            SetOp::Remove(k) => assert_eq!(set.remove(k), model.remove(k), "remove({k})"),
            SetOp::Contains(k) => assert_eq!(set.contains(k), model.contains(k), "contains({k})"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- the _orc word encoding --------------------------------------

    #[test]
    fn orc_counter_roundtrips(incs in 0u32..2000, decs in 0u32..2000) {
        let mut w = word::ORC_INIT;
        for _ in 0..incs { w = w.wrapping_add(word::SEQ + 1); }
        for _ in 0..decs { w = w.wrapping_add(word::SEQ - 1); }
        prop_assert_eq!(word::link_count(w), incs as i64 - decs as i64);
        prop_assert_eq!(word::seq(w), (incs + decs) as u64);
        prop_assert_eq!(word::is_zero_unclaimed(w), incs == decs);
    }

    #[test]
    fn orc_retired_bit_is_orthogonal(incs in 0u32..1000) {
        let mut w = word::ORC_INIT;
        for _ in 0..incs { w = w.wrapping_add(word::SEQ + 1); }
        let claimed = w + word::BRETIRED;
        prop_assert_eq!(word::link_count(claimed), word::link_count(w));
        prop_assert_eq!(word::seq(claimed), word::seq(w));
        prop_assert!(!word::is_zero_unclaimed(claimed));
    }

    // ---- marked pointers ---------------------------------------------

    #[test]
    fn marks_never_change_the_target(addr in (0usize..usize::MAX / 8).prop_map(|a| a << 3)) {
        use orc_util::marked::*;
        prop_assert_eq!(unmark(mark(addr)), addr);
        prop_assert_eq!(unmark(tag(addr)), addr);
        prop_assert_eq!(unmark(tag(mark(addr))), addr);
        prop_assert!(is_marked(mark(addr)));
        prop_assert!(is_tagged(tag(addr)));
        prop_assert!(!is_marked(tag(addr)) || addr & 1 != 0);
    }

    #[test]
    fn with_tag_is_idempotent(addr in (0usize..usize::MAX / 8).prop_map(|a| a << 3), bits in 0usize..4) {
        use orc_util::marked::*;
        let w = with_tag(addr, bits);
        prop_assert_eq!(with_tag(w, bits), w);
        prop_assert_eq!(tag_bits(w), bits);
        prop_assert_eq!(unmark(w), addr);
    }

    // ---- DWCAS packing -------------------------------------------------

    #[test]
    fn dwcas_pack_unpack(lo: u64, hi: u64) {
        let v = orc_util::dwcas::pack(lo, hi);
        prop_assert_eq!(orc_util::dwcas::unpack(v), (lo, hi));
    }

    #[test]
    fn dwcas_cell_semantics(init_lo: u64, init_hi: u64, new_lo: u64, new_hi: u64) {
        use orc_util::dwcas::{pack, AtomicU128};
        let init = pack(init_lo, init_hi);
        let new = pack(new_lo, new_hi);
        let cell = AtomicU128::new(init);
        prop_assert_eq!(cell.load(), init);
        let (prev, ok) = cell.compare_exchange(init, new);
        prop_assert!(ok);
        prop_assert_eq!(prev, init);
        let (prev2, ok2) = cell.compare_exchange(init, new);
        prop_assert_eq!(ok2, init == new);
        prop_assert_eq!(prev2, new);
    }

    // ---- sequential equivalence of every set -------------------------

    #[test]
    fn michael_list_orc_matches_model(ops in set_ops(64)) {
        check_set(&MichaelListOrc::new(), &ops);
        orcgc::flush_thread();
    }

    #[test]
    fn harris_list_orc_matches_model(ops in set_ops(64)) {
        check_set(&HarrisListOrc::new(), &ops);
        orcgc::flush_thread();
    }

    #[test]
    fn nm_tree_orc_matches_model(ops in set_ops(64)) {
        check_set(&NmTreeOrc::new(), &ops);
        orcgc::flush_thread();
    }

    #[test]
    fn crf_skip_matches_model(ops in set_ops(64)) {
        check_set(&CrfSkipListOrc::new(), &ops);
        orcgc::flush_thread();
    }

    #[test]
    fn michael_list_hp_matches_model(ops in set_ops(64)) {
        check_set(&MichaelList::new(HazardPointers::new()), &ops);
    }

    #[test]
    fn michael_list_ptp_matches_model(ops in set_ops(64)) {
        check_set(&MichaelList::new(PassThePointer::new()), &ops);
    }

    // ---- queues against VecDeque --------------------------------------

    #[test]
    fn ms_queue_orc_matches_model(ops in prop::collection::vec(prop::option::of(0u64..1000), 0..200)) {
        let q = MsQueueOrc::new();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => { q.enqueue(v); model.push_back(v); }
                None => assert_eq!(q.dequeue(), model.pop_front()),
            }
        }
        orcgc::flush_thread();
    }

    #[test]
    fn lcrq_matches_model(ops in prop::collection::vec(prop::option::of(0u64..1000), 0..200)) {
        let q = LcrqOrc::new();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => { q.enqueue(v); model.push_back(v); }
                None => assert_eq!(q.dequeue(), model.pop_front()),
            }
        }
        orcgc::flush_thread();
    }
}
